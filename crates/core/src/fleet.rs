//! Parallel fleet analyzer: run many applications through the JS-CERES
//! pipeline concurrently, one isolated pipeline per worker thread — and
//! survive the apps that misbehave.
//!
//! The pipeline itself is deliberately single-threaded (the engine hangs
//! off the interpreter as `Rc<RefCell<_>>`, mirroring a browser page), so
//! fleet parallelism is *thread-per-app*: each worker pulls a job off a
//! shared queue, builds its own `WebServer → instrument → Interp → Engine`
//! stack inside the closure, and reduces the non-`Send` [`AppRun`] down to
//! a plain-data [`AppReport`] before anything crosses the thread boundary.
//!
//! Fault isolation (the paper's case study only works because JS-CERES
//! survives 12 messy real-world apps):
//!
//! * every attempt runs under `catch_unwind` on its own runner thread, so
//!   a panicking app is recorded as [`AppStatus::Panicked`] and the rest
//!   of the fleet keeps going;
//! * the work queue is poison-proof — a mutex poisoned by a crashing
//!   worker is recovered, never propagated;
//! * a per-app watchdog cancels runaways: deterministically via the
//!   interpreter tick budget ([`FleetPolicy::tick_budget`], surfaced as
//!   [`JobError::Timeout`]) and as a wall-clock backstop at the fleet
//!   layer ([`FleetPolicy::wall_budget`], which abandons the runner
//!   thread);
//! * transient failures ([`JobError::Transient`]) are retried with
//!   exponential backoff up to [`FleetPolicy::max_retries`] times.
//!
//! The merged [`FleetOutcome`] carries a per-app [`AppStatus`] instead of
//! being all-or-nothing: one crashing app no longer discards eleven good
//! reports.
//!
//! Determinism: the virtual clock is seeded, so analysis results do not
//! depend on scheduling. The collector slots results by job index, which
//! makes the merged [`FleetOutcome`] independent of completion order; the
//! only nondeterministic fields are `wall_ms`/`worker` and the wall-clock
//! half of the observability record (excluded from the table renderings
//! and zeroed by [`FleetOutcome::canonical`]).

#![deny(missing_docs)]

use crate::classify::NestClassification;
use crate::pipeline::AppRun;
use crate::stack::render;
use ceres_instrument::Mode;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How one attempt at a job failed. Distinguishing these drives the
/// supervisor's response: fatal errors are recorded, transient errors are
/// retried, timeouts mark the app as cancelled by the watchdog.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// Permanent failure — retrying would reproduce it.
    Fatal(String),
    /// Transient failure — worth retrying with backoff.
    Transient(String),
    /// The execution watchdog cancelled the attempt (tick budget or
    /// in-interpreter wall cap).
    Timeout(String),
}

impl JobError {
    /// Classify a pipeline error: watchdog cancellations become
    /// [`JobError::Timeout`], everything else is fatal.
    pub fn from_control(c: &ceres_interp::Control) -> JobError {
        if c.is_watchdog() {
            JobError::Timeout(format!("{c:?}"))
        } else {
            JobError::Fatal(format!("{c:?}"))
        }
    }
}

/// The work closure: takes (worker id, attempt number starting at 1) and
/// must build — and fully consume — its own pipeline; nothing non-`Send`
/// may escape it. `Fn` (not `FnOnce`) because a transiently-failing job is
/// re-invoked on retry, and `Arc` because a wall-clock-abandoned attempt
/// keeps its clone alive on the orphaned runner thread.
pub type JobWork = Arc<dyn Fn(usize, u32) -> Result<AppReport, JobError> + Send + Sync>;

/// One unit of fleet work: analyze one application.
pub struct FleetJob {
    /// Display name (Table 1 "Name").
    pub app: String,
    /// Short identifier for files/CLI.
    pub slug: String,
    /// The work itself.
    pub work: JobWork,
}

/// Supervision knobs for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetPolicy {
    /// Deterministic per-attempt budget in virtual interpreter ticks; jobs
    /// should wire it into `AnalyzeOptions::max_ticks` so a runaway app is
    /// cancelled at exactly the same virtual instant on every run.
    /// `None` = unlimited.
    pub tick_budget: Option<u64>,
    /// Wall-clock backstop per attempt. If an attempt exceeds it, its
    /// runner thread is abandoned and the app is marked
    /// [`AppStatus::TimedOut`]. Catches hangs the tick budget cannot see
    /// (native code, a missing budget).
    pub wall_budget: Duration,
    /// How many times a [`JobError::Transient`] attempt is retried (total
    /// attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles each retry.
    pub backoff: Duration,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy {
            tick_budget: None,
            wall_budget: Duration::from_secs(120),
            max_retries: 2,
            backoff: Duration::from_millis(25),
        }
    }
}

/// One classified loop nest, reduced to plain data (Table 3 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestReport {
    /// Loop-header display name, e.g. `for(3)`.
    pub name: String,
    /// Share of total in-loop time spent in this nest, as a percentage.
    pub pct_loop_time: f64,
    /// How many times the nest was entered.
    pub instances: u64,
    /// Mean trips ± stddev, pre-rendered (`"120±5"`).
    pub trips: String,
    /// Trip-count divergence bucket (`low` / `high`), pre-rendered.
    pub divergence: String,
    /// Whether any iteration touched the DOM.
    pub dom_access: bool,
    /// Dependence-breaking difficulty bucket (Table 3 "brk-deps").
    pub dependence_difficulty: String,
    /// Overall parallelization difficulty bucket (Table 3 "parallel").
    pub parallelization_difficulty: String,
}

/// One dependence warning, reduced to plain data (Fig. 6 style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarningReport {
    /// Variant name (`VarWrite`, `SharedPropWrite`, ...).
    pub kind: String,
    /// Human sentence for the kind.
    pub detail: String,
    /// What the warning is about (variable or property name).
    pub subject: String,
    /// Rendered per-level characterization (`while(24) ok ok → ...`).
    pub characterization: String,
    /// How many dynamic occurrences were deduplicated into this row.
    pub count: u64,
}

/// Everything one worker reports back about one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppReport {
    /// Display name (Table 1 "Name").
    pub app: String,
    /// Short identifier for files/CLI.
    pub slug: String,
    /// Instrumentation mode the app ran under.
    pub mode: String,
    /// Virtual-clock total time (Table 2 "Total"), in simulated ms.
    pub total_ms: f64,
    /// Simulated-profiler active time (Table 2 "Active"), in simulated ms.
    pub active_ms: f64,
    /// Time with ≥1 loop open (Table 2 "In Loops"), in simulated ms.
    pub loops_ms: f64,
    /// `loops_ms / total_ms`, as a percentage.
    pub loop_pct: f64,
    /// All classified nests, dominant first (Table 3 applies its coverage
    /// cutoff at render time).
    pub nests: Vec<NestReport>,
    /// Deduplicated dependence warnings (Fig. 6 style).
    pub warnings: Vec<WarningReport>,
    /// Phase spans and event counters for the run (see [`crate::obs`]).
    /// Tick-denominated fields are deterministic; wall fields are zeroed
    /// by [`AppReport::canonical`].
    pub obs: crate::obs::RunObs,
    /// Real wall-clock the worker spent on this app. Nondeterministic.
    pub wall_ms: f64,
    /// Which worker ran the job. Nondeterministic.
    pub worker: usize,
}

impl AppReport {
    /// Reduce a finished [`AppRun`] to plain data. Runs on the worker
    /// thread, while the engine is still alive.
    pub fn from_run(app: &str, slug: &str, mode: Mode, run: &AppRun) -> AppReport {
        let analyze_start = std::time::Instant::now();
        let nest_rows = run.nests();
        let analyze_us = analyze_start.elapsed().as_micros() as u64;
        let engine = run.engine.borrow();
        let nests = nest_rows
            .iter()
            .map(|n: &NestClassification| NestReport {
                name: engine
                    .loops
                    .get(&n.root)
                    .map(|l| l.display_name())
                    .unwrap_or_else(|| format!("{}", n.root)),
                pct_loop_time: n.pct_loop_time,
                instances: n.instances,
                trips: n.trips.display_pm(),
                divergence: n.divergence.as_str().to_string(),
                dom_access: n.dom_access,
                dependence_difficulty: n.dependence_difficulty.as_str().to_string(),
                parallelization_difficulty: n.parallelization_difficulty.as_str().to_string(),
            })
            .collect();
        let mut warnings: Vec<_> = engine.warnings.iter().collect();
        warnings.sort_by(|a, b| (a.kind, &a.subject).cmp(&(b.kind, &b.subject)));
        let warnings = warnings
            .iter()
            .map(|w| WarningReport {
                kind: format!("{:?}", w.kind),
                detail: w.kind.describe().to_string(),
                subject: w.subject.clone(),
                characterization: render(&w.characterization, &engine.loops),
                count: w.count,
            })
            .collect();
        let mut obs = run.obs.clone();
        obs.push_post_phase("analyze", analyze_us);
        AppReport {
            app: app.to_string(),
            slug: slug.to_string(),
            mode: format!("{mode:?}"),
            total_ms: run.total_ms,
            active_ms: run.active_ms,
            loops_ms: run.loops_ms,
            loop_pct: 100.0 * run.loop_fraction(),
            nests,
            warnings,
            obs,
            wall_ms: 0.0,
            worker: 0,
        }
    }

    /// Copy with the nondeterministic fields zeroed.
    pub fn canonical(&self) -> AppReport {
        AppReport {
            obs: self.obs.canonical(),
            wall_ms: 0.0,
            worker: 0,
            ..self.clone()
        }
    }
}

/// Terminal status of one app's analysis within a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AppStatus {
    /// Analysis completed; the report is present.
    Ok,
    /// The job reported an error (after `attempts` tries).
    Failed {
        /// The final error message.
        error: String,
        /// How many attempts were consumed before giving up.
        attempts: u32,
    },
    /// The job panicked; the panic payload is recorded.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The watchdog cancelled a runaway app (tick budget or wall cap).
    TimedOut {
        /// Which budget fired, human-readable.
        budget: String,
    },
}

impl AppStatus {
    /// Whether the app completed successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self, AppStatus::Ok)
    }

    /// Short fixed-vocabulary label for table rendering.
    pub fn label(&self) -> String {
        match self {
            AppStatus::Ok => "ok".to_string(),
            AppStatus::Failed { attempts, .. } => format!("failed({attempts})"),
            AppStatus::Panicked { .. } => "panicked".to_string(),
            AppStatus::TimedOut { .. } => "timed-out".to_string(),
        }
    }

    /// The failure detail, if any (for the status rendering).
    pub fn detail(&self) -> Option<&str> {
        match self {
            AppStatus::Ok => None,
            AppStatus::Failed { error, .. } => Some(error),
            AppStatus::Panicked { message } => Some(message),
            AppStatus::TimedOut { budget } => Some(budget),
        }
    }
}

/// Per-app result slot in a [`FleetOutcome`]. The app/slug are filled when
/// the job is enqueued, so even an app whose worker vanished is named in
/// the output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppOutcome {
    /// Display name (Table 1 "Name").
    pub app: String,
    /// Short identifier for files/CLI.
    pub slug: String,
    /// Terminal status of the app's analysis.
    pub status: AppStatus,
    /// How many attempts were consumed (1 for a first-try success).
    pub attempts: u32,
    /// Present iff `status` is [`AppStatus::Ok`].
    pub report: Option<AppReport>,
}

/// Version of the externally consumed result envelope: the
/// [`FleetOutcome`] JSON (`--json`) and the `jsceresd` wire protocol.
/// Mirrors [`crate::obs::METRICS_SCHEMA_VERSION`], which versions the
/// *metrics* payload nested inside; this constant versions the envelope
/// around reports and statuses. Bump on any breaking change to either
/// surface.
///
/// Schema **2** is the streaming multi-frame wire protocol: a
/// `stream:true` analyze request is answered with a sequence of typed
/// frames (`accepted`/`phase`/`partial`/`notice` and a terminal
/// `result`/`error`), each stamped `"schema":2`. One-shot requests —
/// the default — are still answered with the original single-line
/// envelope, rendered at [`crate::serve::ONESHOT_SCHEMA_VERSION`]
/// (= 1) so schema-1 clients and the pinned envelope golden are
/// byte-for-byte unchanged. See `docs/SERVING.md` for the frame
/// reference and the compat matrix.
pub const API_SCHEMA_VERSION: u32 = 2;

/// The merged fleet result, app order matching the job order. Replaces the
/// old all-or-nothing `Result<Vec<AppReport>, String>`: every app gets a
/// status, and partial success is a first-class outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// Envelope schema version ([`API_SCHEMA_VERSION`] at construction).
    pub api_schema_version: u32,
    /// Instrumentation mode every job ran under.
    pub mode: String,
    /// Workload scale factor the jobs were built with.
    pub scale: u32,
    /// Worker-pool size used. Nondeterministic across configurations.
    pub workers: usize,
    /// Per-app results, in job order.
    pub apps: Vec<AppOutcome>,
}

impl FleetOutcome {
    /// Assemble an outcome, stamping the current [`API_SCHEMA_VERSION`].
    pub fn new(mode: String, scale: u32, workers: usize, apps: Vec<AppOutcome>) -> FleetOutcome {
        FleetOutcome {
            api_schema_version: API_SCHEMA_VERSION,
            mode,
            scale,
            workers,
            apps,
        }
    }

    /// Number of apps that completed successfully.
    pub fn succeeded(&self) -> usize {
        self.apps.iter().filter(|a| a.status.is_ok()).count()
    }

    /// The apps that did not complete.
    pub fn failures(&self) -> Vec<&AppOutcome> {
        self.apps.iter().filter(|a| !a.status.is_ok()).collect()
    }

    /// Whether every app completed successfully.
    pub fn all_ok(&self) -> bool {
        self.failures().is_empty()
    }

    /// The successful reports, in job order.
    pub fn ok_reports(&self) -> Vec<&AppReport> {
        self.apps.iter().filter_map(|a| a.report.as_ref()).collect()
    }

    /// Process exit code for CLI drivers: 0 = every app analyzed, 3 =
    /// partial success (degraded but useful), 4 = nothing succeeded.
    pub fn exit_code(&self) -> i32 {
        if self.all_ok() {
            0
        } else if self.succeeded() > 0 {
            3
        } else {
            4
        }
    }

    /// Copy with every scheduling-dependent field zeroed; two runs of the
    /// same fleet must compare equal under this view regardless of worker
    /// count.
    pub fn canonical(&self) -> FleetOutcome {
        FleetOutcome {
            api_schema_version: self.api_schema_version,
            mode: self.mode.clone(),
            scale: self.scale,
            workers: 0,
            apps: self
                .apps
                .iter()
                .map(|a| AppOutcome {
                    app: a.app.clone(),
                    slug: a.slug.clone(),
                    status: a.status.clone(),
                    attempts: a.attempts,
                    report: a.report.as_ref().map(AppReport::canonical),
                })
                .collect(),
        }
    }

    /// Table 2 rendering (virtual-clock timings per app), with a status
    /// column so degraded runs are visible at a glance.
    pub fn render_table2(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22}{:>9}{:>9}{:>10}{:>8}  {}\n",
            "Name", "Total", "Active", "In Loops", "loop%", "Status"
        ));
        for a in &self.apps {
            match &a.report {
                Some(r) => out.push_str(&format!(
                    "{:<22}{:>9.0}{:>9.0}{:>10.0}{:>7.0}%  {}\n",
                    a.app,
                    r.total_ms,
                    r.active_ms,
                    r.loops_ms,
                    r.loop_pct,
                    a.status.label()
                )),
                None => out.push_str(&format!(
                    "{:<22}{:>9}{:>9}{:>10}{:>8}  {}\n",
                    a.app,
                    "-",
                    "-",
                    "-",
                    "-",
                    a.status.label()
                )),
            }
        }
        out
    }

    /// Table 3 rendering: per app, the top nests covering ≥ 2/3 of loop
    /// time (the paper's inspection protocol). Apps without a report show
    /// their status instead of rows.
    pub fn render_table3(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22}{:>4} {:>7} {:>11}  {:<7} {:<4} {:<10} {:<10}\n",
            "name", "%", "inst", "trips", "diverg", "DOM", "brk-deps", "parallel"
        ));
        for a in &self.apps {
            let Some(report) = &a.report else {
                out.push_str(&format!("{:<22}<{}>\n", a.app, a.status.label()));
                continue;
            };
            let mut covered = 0.0;
            let mut first = true;
            for n in &report.nests {
                if covered >= 200.0 / 3.0 {
                    break;
                }
                covered += n.pct_loop_time;
                out.push_str(&format!(
                    "{:<22}{:>4.0} {:>7} {:>11}  {:<7} {:<4} {:<10} {:<10}\n",
                    if first { a.app.as_str() } else { "" },
                    n.pct_loop_time,
                    n.instances,
                    n.trips,
                    n.divergence,
                    if n.dom_access { "yes" } else { "no" },
                    n.dependence_difficulty,
                    n.parallelization_difficulty,
                ));
                first = false;
            }
        }
        out
    }

    /// One line per app: slug, status, and the failure detail if any.
    pub fn render_status(&self) -> String {
        let mut out = String::new();
        for a in &self.apps {
            match a.status.detail() {
                None => out.push_str(&format!("{:<14} {}\n", a.slug, a.status.label())),
                Some(d) => {
                    out.push_str(&format!("{:<14} {:<12} {}\n", a.slug, a.status.label(), d))
                }
            }
        }
        out
    }

    /// Pretty-printed JSON (the `--json` artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FleetOutcome serializes")
    }
}

// ---------------------------------------------------------------------
// Fault injection (CI proves degradation is graceful)
// ---------------------------------------------------------------------

/// Injection rates per fault class, parsed from
/// `panic:RATE,hang:RATE,error:RATE` (each clause optional).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability an attempt panics.
    pub panic: f64,
    /// Probability an attempt hangs until the watchdog fires.
    pub hang: f64,
    /// Probability an attempt reports a transient error.
    pub error: f64,
}

impl FaultSpec {
    /// Parse a `--inject` argument, e.g. `panic:0.3,hang:0.1,error:0.2`.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for clause in s.split(',').filter(|c| !c.is_empty()) {
            let (kind, rate) = clause
                .split_once(':')
                .ok_or_else(|| format!("bad inject clause `{clause}` (want kind:rate)"))?;
            let rate: f64 = rate
                .parse()
                .map_err(|_| format!("bad inject rate in `{clause}`"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("inject rate out of [0,1] in `{clause}`"));
            }
            match kind {
                "panic" => spec.panic = rate,
                "hang" => spec.hang = rate,
                "error" => spec.error = rate,
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        Ok(spec)
    }

    /// Whether no fault class has a nonzero rate (injection disabled).
    pub fn is_zero(&self) -> bool {
        self.panic == 0.0 && self.hang == 0.0 && self.error == 0.0
    }
}

/// The fault classes the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Unwind out of the job (exercises `catch_unwind` isolation).
    Panic,
    /// Spin the interpreter until the watchdog budget cancels it.
    Hang,
    /// Report a transient error (exercises retry + backoff).
    Error,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded fault plan: a pure function of (seed, job index, attempt), so a
/// fleet run under injection is exactly reproducible and a transient
/// injected error can clear on retry.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Injection rates per fault class.
    pub spec: FaultSpec,
    /// Seed mixing into every roll.
    pub seed: u64,
}

impl FaultPlan {
    /// Build a plan from a spec and a seed.
    pub fn new(spec: FaultSpec, seed: u64) -> FaultPlan {
        FaultPlan { spec, seed }
    }

    /// Which fault (if any) hits `job_index` on `attempt`.
    pub fn roll(&self, job_index: usize, attempt: u32) -> Option<Fault> {
        let h = splitmix64(self.seed ^ splitmix64(((job_index as u64) << 32) | u64::from(attempt)));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.spec.panic {
            Some(Fault::Panic)
        } else if u < self.spec.panic + self.spec.hang {
            Some(Fault::Hang)
        } else if u < self.spec.panic + self.spec.hang + self.spec.error {
            Some(Fault::Error)
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// The supervised worker pool
// ---------------------------------------------------------------------

/// Worker count from `CERES_FLEET_WORKERS`, else the machine parallelism.
pub fn default_workers() -> usize {
    std::env::var("CERES_FLEET_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Poison-proof lock: a worker that crashed while holding the queue must
/// not take the rest of the fleet down with a poisoned-mutex panic.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What one supervised attempt produced (internal).
enum Attempt {
    Report(Box<AppReport>),
    Err(JobError),
    Panicked(String),
    /// The wall-clock backstop fired; the runner thread was abandoned.
    HardTimeout,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one attempt on a dedicated runner thread so the wall-clock backstop
/// can abandon it without losing the worker. The runner catches unwinds;
/// an abandoned runner's eventual send fails silently (receiver dropped).
fn run_attempt(work: &JobWork, worker: usize, attempt: u32, slug: &str, wall: Duration) -> Attempt {
    let (tx, rx) = mpsc::channel();
    let work = Arc::clone(work);
    let spawned = std::thread::Builder::new()
        .name(format!("fleet-{slug}-a{attempt}"))
        .spawn(move || {
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| work(worker, attempt)));
            let _ = tx.send(r);
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => return Attempt::Err(JobError::Transient(format!("cannot spawn runner: {e}"))),
    };
    match rx.recv_timeout(wall) {
        Ok(result) => {
            let _ = handle.join();
            match result {
                Ok(Ok(report)) => Attempt::Report(Box::new(report)),
                Ok(Err(e)) => Attempt::Err(e),
                Err(payload) => Attempt::Panicked(panic_message(payload.as_ref())),
            }
        }
        Err(_) => Attempt::HardTimeout, // handle dropped: runner abandoned
    }
}

/// Supervise one job to a terminal [`AppOutcome`]: retry transient errors
/// with exponential backoff, classify panics and timeouts, and never let
/// anything unwind into the caller. This is the single-job entry point the
/// fleet workers use internally; `jsceresd` calls it directly so every
/// served request gets the same watchdog/retry/isolation treatment as a
/// fleet run.
pub fn supervise(job: &FleetJob, worker: usize, policy: &FleetPolicy) -> AppOutcome {
    let outcome = |status: AppStatus, attempts: u32, report: Option<AppReport>| AppOutcome {
        app: job.app.clone(),
        slug: job.slug.clone(),
        status,
        attempts,
        report,
    };
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match run_attempt(&job.work, worker, attempt, &job.slug, policy.wall_budget) {
            Attempt::Report(r) => return outcome(AppStatus::Ok, attempt, Some(*r)),
            Attempt::Panicked(message) => {
                return outcome(AppStatus::Panicked { message }, attempt, None)
            }
            Attempt::HardTimeout => {
                return outcome(
                    AppStatus::TimedOut {
                        budget: format!(
                            "wall-clock cap {} ms exceeded; runner abandoned",
                            policy.wall_budget.as_millis()
                        ),
                    },
                    attempt,
                    None,
                )
            }
            Attempt::Err(JobError::Timeout(budget)) => {
                return outcome(AppStatus::TimedOut { budget }, attempt, None)
            }
            Attempt::Err(JobError::Fatal(error)) => {
                return outcome(
                    AppStatus::Failed {
                        error,
                        attempts: attempt,
                    },
                    attempt,
                    None,
                )
            }
            Attempt::Err(JobError::Transient(error)) => {
                if attempt > policy.max_retries {
                    return outcome(
                        AppStatus::Failed {
                            error,
                            attempts: attempt,
                        },
                        attempt,
                        None,
                    );
                }
                // Exponential backoff: base, 2×base, 4×base, ...
                std::thread::sleep(policy.backoff * 2u32.saturating_pow(attempt - 1));
            }
        }
    }
}

/// Fill terminal outcomes for slots whose worker vanished without
/// reporting (a runner that died so hard even `catch_unwind` never
/// returned). The slot carries the app identity from enqueue time, so the
/// message names the app.
fn finish_slots(slots: Vec<(String, String, Option<AppOutcome>)>) -> Vec<AppOutcome> {
    slots
        .into_iter()
        .map(|(app, slug, outcome)| match outcome {
            Some(o) => o,
            None => AppOutcome {
                app: app.clone(),
                slug: slug.clone(),
                status: AppStatus::Failed {
                    error: format!("{slug}: worker died before reporting"),
                    attempts: 0,
                },
                attempts: 0,
                report: None,
            },
        })
        .collect()
}

/// Run the jobs on a pool of `workers` threads under the default policy.
pub fn run_fleet(jobs: Vec<FleetJob>, workers: usize) -> Vec<AppOutcome> {
    run_fleet_with(jobs, workers, &FleetPolicy::default())
}

/// Run the jobs on a pool of `workers` threads under `policy` and merge
/// the outcomes in job order (independent of completion order). Individual
/// app failures — errors, panics, watchdog cancellations — are recorded in
/// their slot; they never abort the fleet or discard other apps' reports.
pub fn run_fleet_with(
    jobs: Vec<FleetJob>,
    workers: usize,
    policy: &FleetPolicy,
) -> Vec<AppOutcome> {
    let n_jobs = jobs.len();
    let workers = workers.clamp(1, n_jobs.max(1));
    // Slots are pre-named so a vanished worker still yields a named error.
    let mut slots: Vec<(String, String, Option<AppOutcome>)> = jobs
        .iter()
        .map(|j| (j.app.clone(), j.slug.clone(), None))
        .collect();
    let queue: Mutex<VecDeque<(usize, FleetJob)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, AppOutcome)>();

    std::thread::scope(|s| {
        for worker_id in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            s.spawn(move || loop {
                let job = relock(queue).pop_front();
                let Some((index, job)) = job else { break };
                let outcome = supervise(&job, worker_id, policy);
                if tx.send((index, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Collect in completion order; slot by index so the merge is
        // deterministic.
        for (index, outcome) in rx {
            slots[index].2 = Some(outcome);
        }
    });

    finish_slots(slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn stub_report(i: usize) -> AppReport {
        AppReport {
            app: format!("app-{i}"),
            slug: format!("a{i}"),
            mode: "Dependence".to_string(),
            total_ms: 10.0 * i as f64 + 0.5,
            active_ms: 5.0,
            loops_ms: 2.5,
            loop_pct: 25.0,
            nests: vec![NestReport {
                name: format!("for({i})"),
                pct_loop_time: 100.0,
                instances: 1 + i as u64,
                trips: "120±5".to_string(),
                divergence: "low".to_string(),
                dom_access: i.is_multiple_of(2),
                dependence_difficulty: "easy".to_string(),
                parallelization_difficulty: "easy".to_string(),
            }],
            warnings: vec![WarningReport {
                kind: "VarWrite".to_string(),
                detail: "write to variable declared outside the loop iteration".to_string(),
                subject: format!("v{i}"),
                characterization: "for(6) ok dependence".to_string(),
                count: 3,
            }],
            obs: crate::obs::RunObs::default(),
            wall_ms: 0.0,
            worker: 0,
        }
    }

    fn stub_job(i: usize, delay_ms: u64) -> FleetJob {
        FleetJob {
            app: format!("app-{i}"),
            slug: format!("a{i}"),
            work: Arc::new(move |worker, _attempt| {
                std::thread::sleep(Duration::from_millis(delay_ms));
                let mut r = stub_report(i);
                r.worker = worker;
                r.wall_ms = delay_ms as f64;
                Ok(r)
            }),
        }
    }

    fn stub_jobs(n: usize, delay_for: impl Fn(usize) -> u64) -> Vec<FleetJob> {
        (0..n).map(|i| stub_job(i, delay_for(i))).collect()
    }

    fn stub_outcome(n: usize) -> FleetOutcome {
        FleetOutcome::new(
            "Dependence".to_string(),
            1,
            4,
            (0..n)
                .map(|i| AppOutcome {
                    app: format!("app-{i}"),
                    slug: format!("a{i}"),
                    status: AppStatus::Ok,
                    attempts: 1,
                    report: Some(stub_report(i)),
                })
                .collect(),
        )
    }

    #[test]
    fn merge_order_is_job_order_despite_out_of_order_completion() {
        // Earlier jobs sleep longest, so later jobs finish first on a
        // multi-worker pool; the merged order must still be job order.
        let jobs = stub_jobs(6, |i| (6 - i as u64) * 20);
        let outcomes = run_fleet(jobs, 4);
        let apps: Vec<_> = outcomes.iter().map(|o| o.app.as_str()).collect();
        assert_eq!(apps, ["app-0", "app-1", "app-2", "app-3", "app-4", "app-5"]);
        assert!(outcomes.iter().all(|o| o.status.is_ok()));
        let workers: std::collections::HashSet<_> = outcomes
            .iter()
            .map(|o| o.report.as_ref().unwrap().worker)
            .collect();
        assert!(
            workers.len() > 1,
            "expected multiple workers to participate: {workers:?}"
        );
    }

    #[test]
    fn workers_run_concurrently() {
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<FleetJob> = (0..4)
            .map(|i| {
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                FleetJob {
                    app: format!("app-{i}"),
                    slug: format!("a{i}"),
                    work: Arc::new(move |worker, _attempt| {
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(40));
                        live.fetch_sub(1, Ordering::SeqCst);
                        let mut r = stub_report(i);
                        r.worker = worker;
                        Ok(r)
                    }),
                }
            })
            .collect();
        let outcomes = run_fleet(jobs, 4);
        assert!(outcomes.iter().all(|o| o.status.is_ok()));
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "4 jobs of 40ms on 4 workers should overlap, peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn sequential_pool_still_merges_in_order() {
        let outcomes = run_fleet(stub_jobs(4, |_| 0), 1);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes
            .iter()
            .all(|o| o.report.as_ref().unwrap().worker == 0));
    }

    #[test]
    fn failures_are_recorded_per_app_without_discarding_the_rest() {
        let mut jobs = stub_jobs(3, |_| 0);
        jobs.insert(
            1,
            FleetJob {
                app: "boom".to_string(),
                slug: "boom".to_string(),
                work: Arc::new(|_, _| Err(JobError::Fatal("engine exploded".to_string()))),
            },
        );
        let outcomes = run_fleet(jobs, 2);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(
            outcomes[1].status,
            AppStatus::Failed {
                error: "engine exploded".to_string(),
                attempts: 1
            }
        );
        assert_eq!(outcomes[1].slug, "boom");
        // The other three apps all completed.
        for i in [0usize, 2, 3] {
            assert!(outcomes[i].status.is_ok(), "slot {i}: {:?}", outcomes[i]);
            assert!(outcomes[i].report.is_some());
        }
    }

    #[test]
    fn a_panicking_job_is_contained_and_named() {
        let mut jobs = stub_jobs(3, |_| 0);
        jobs.insert(
            0,
            FleetJob {
                app: "krash".to_string(),
                slug: "krash".to_string(),
                work: Arc::new(|_, _| panic!("deliberate test panic")),
            },
        );
        let outcomes = run_fleet(jobs, 2);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0].slug, "krash");
        match &outcomes[0].status {
            AppStatus::Panicked { message } => {
                assert!(message.contains("deliberate test panic"), "{message}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Queue stayed usable after the panic: every other app completed.
        assert_eq!(
            outcomes.iter().filter(|o| o.status.is_ok()).count(),
            3,
            "{outcomes:?}"
        );
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let tries = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&tries);
        let job = FleetJob {
            app: "flaky".to_string(),
            slug: "flaky".to_string(),
            work: Arc::new(move |_, attempt| {
                t2.fetch_add(1, Ordering::SeqCst);
                if attempt < 3 {
                    Err(JobError::Transient(format!("flap {attempt}")))
                } else {
                    Ok(stub_report(0))
                }
            }),
        };
        let policy = FleetPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
            ..Default::default()
        };
        let outcomes = run_fleet_with(vec![job], 1, &policy);
        assert!(outcomes[0].status.is_ok(), "{:?}", outcomes[0].status);
        assert_eq!(outcomes[0].attempts, 3);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retries_are_bounded() {
        let tries = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&tries);
        let job = FleetJob {
            app: "hopeless".to_string(),
            slug: "hopeless".to_string(),
            work: Arc::new(move |_, _| {
                t2.fetch_add(1, Ordering::SeqCst);
                Err(JobError::Transient("still down".to_string()))
            }),
        };
        let policy = FleetPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
            ..Default::default()
        };
        let outcomes = run_fleet_with(vec![job], 1, &policy);
        assert_eq!(
            outcomes[0].status,
            AppStatus::Failed {
                error: "still down".to_string(),
                attempts: 3
            }
        );
        assert_eq!(tries.load(Ordering::SeqCst), 3, "1 try + 2 retries");
    }

    #[test]
    fn job_reported_timeout_is_not_retried() {
        let tries = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&tries);
        let job = FleetJob {
            app: "runaway".to_string(),
            slug: "runaway".to_string(),
            work: Arc::new(move |_, _| {
                t2.fetch_add(1, Ordering::SeqCst);
                Err(JobError::Timeout("tick budget exceeded".to_string()))
            }),
        };
        let outcomes = run_fleet(vec![job], 1);
        assert_eq!(
            outcomes[0].status,
            AppStatus::TimedOut {
                budget: "tick budget exceeded".to_string()
            }
        );
        assert_eq!(tries.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wall_clock_backstop_abandons_a_hard_hang() {
        let mut jobs = stub_jobs(2, |_| 0);
        jobs.push(FleetJob {
            app: "tarpit".to_string(),
            slug: "tarpit".to_string(),
            // A native hang no tick budget can see.
            work: Arc::new(|_, _| {
                std::thread::sleep(Duration::from_secs(30));
                Ok(stub_report(9))
            }),
        });
        let policy = FleetPolicy {
            wall_budget: Duration::from_millis(100),
            ..Default::default()
        };
        let outcomes = run_fleet_with(jobs, 2, &policy);
        assert_eq!(outcomes.len(), 3);
        match &outcomes[2].status {
            AppStatus::TimedOut { budget } => {
                assert!(budget.contains("wall-clock cap"), "{budget}")
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        assert_eq!(outcomes.iter().filter(|o| o.status.is_ok()).count(), 2);
    }

    #[test]
    fn vanished_worker_slot_names_the_app() {
        // The lost-slug regression: a slot whose worker never reported must
        // still say *which* app it was.
        let slots = vec![
            (
                "app-0".to_string(),
                "a0".to_string(),
                Some(AppOutcome {
                    app: "app-0".to_string(),
                    slug: "a0".to_string(),
                    status: AppStatus::Ok,
                    attempts: 1,
                    report: Some(stub_report(0)),
                }),
            ),
            ("Ghost App".to_string(), "ghost".to_string(), None),
        ];
        let outcomes = finish_slots(slots);
        assert_eq!(outcomes[1].app, "Ghost App");
        assert_eq!(outcomes[1].slug, "ghost");
        match &outcomes[1].status {
            AppStatus::Failed { error, .. } => {
                assert!(
                    error.contains("ghost") && error.contains("worker died before reporting"),
                    "error must name the app: {error}"
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn exit_codes_reflect_degradation() {
        let mut o = stub_outcome(3);
        assert!(o.all_ok());
        assert_eq!(o.exit_code(), 0);
        o.apps[1].status = AppStatus::Panicked {
            message: "x".to_string(),
        };
        o.apps[1].report = None;
        assert_eq!(o.exit_code(), 3, "partial success");
        assert_eq!(o.succeeded(), 2);
        assert_eq!(o.failures().len(), 1);
        for a in &mut o.apps {
            a.status = AppStatus::TimedOut {
                budget: "b".to_string(),
            };
            a.report = None;
        }
        assert_eq!(o.exit_code(), 4, "total failure");
    }

    #[test]
    fn fault_plan_is_deterministic_and_rate_shaped() {
        let plan = FaultPlan::new(FaultSpec::parse("panic:0.3,hang:0.1,error:0.2").unwrap(), 7);
        for i in 0..64 {
            for a in 1..4 {
                assert_eq!(plan.roll(i, a), plan.roll(i, a), "roll must be pure");
            }
        }
        // Over many rolls the empirical rates land near the spec.
        let n = 10_000usize;
        let mut counts = [0usize; 3];
        let mut none = 0usize;
        for i in 0..n {
            match plan.roll(i, 1) {
                Some(Fault::Panic) => counts[0] += 1,
                Some(Fault::Hang) => counts[1] += 1,
                Some(Fault::Error) => counts[2] += 1,
                None => none += 1,
            }
        }
        let close = |got: usize, want: f64| (got as f64 / n as f64 - want).abs() < 0.03;
        assert!(close(counts[0], 0.3), "panic rate {:?}", counts);
        assert!(close(counts[1], 0.1), "hang rate {:?}", counts);
        assert!(close(counts[2], 0.2), "error rate {:?}", counts);
        assert!(close(none, 0.4), "clean rate {none}");
        // Different seeds give different plans.
        let other = FaultPlan::new(plan.spec, 8);
        assert!(
            (0..64).any(|i| plan.roll(i, 1) != other.roll(i, 1)),
            "seed must matter"
        );
    }

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::default());
        assert!(FaultSpec::parse("").unwrap().is_zero());
        let s = FaultSpec::parse("panic:0.5").unwrap();
        assert_eq!(s.panic, 0.5);
        assert_eq!(s.hang, 0.0);
        assert!(FaultSpec::parse("panic:2.0").is_err());
        assert!(FaultSpec::parse("panic:x").is_err());
        assert!(FaultSpec::parse("meteor:0.1").is_err());
        assert!(FaultSpec::parse("panic").is_err());
    }

    #[test]
    fn json_round_trip_preserves_the_outcome() {
        let mut outcome = stub_outcome(3);
        outcome.apps[2].status = AppStatus::Failed {
            error: "engine exploded".to_string(),
            attempts: 3,
        };
        outcome.apps[2].report = None;
        let json = outcome.to_json();
        let back: FleetOutcome = serde_json::from_str(&json).expect("parses");
        assert_eq!(outcome, back);
        // Compact round trip too.
        let compact = serde_json::to_string(&outcome).expect("serializes");
        let back2: FleetOutcome = serde_json::from_str(&compact).expect("parses");
        assert_eq!(outcome, back2);
    }

    #[test]
    fn canonical_zeroes_scheduling_noise() {
        let mut outcome = stub_outcome(1);
        outcome.workers = 8;
        let r = outcome.apps[0].report.as_mut().unwrap();
        r.wall_ms = 123.4;
        r.worker = 7;
        let canon = outcome.canonical();
        assert_eq!(canon.workers, 0);
        let cr = canon.apps[0].report.as_ref().unwrap();
        assert_eq!(cr.wall_ms, 0.0);
        assert_eq!(cr.worker, 0);
        // Everything else survives.
        assert_eq!(canon.apps[0].app, "app-0");
        assert_eq!(cr.nests, outcome.apps[0].report.as_ref().unwrap().nests);
    }

    #[test]
    fn renderings_exclude_nondeterministic_fields_and_show_status() {
        let mk = |worker: usize, wall: f64| {
            let mut o = stub_outcome(2);
            o.workers = worker + 1;
            for a in &mut o.apps {
                let r = a.report.as_mut().unwrap();
                r.worker = worker;
                r.wall_ms = wall;
            }
            o.apps[1].status = AppStatus::TimedOut {
                budget: "tick budget exceeded (9 > 8)".to_string(),
            };
            o.apps[1].report = None;
            o
        };
        let a = mk(0, 1.0);
        let b = mk(7, 999.0);
        assert_eq!(a.render_table2(), b.render_table2());
        assert_eq!(a.render_table3(), b.render_table3());
        assert!(
            a.render_table2().contains("timed-out"),
            "{}",
            a.render_table2()
        );
        assert!(
            a.render_table3().contains("<timed-out>"),
            "{}",
            a.render_table3()
        );
        let status = a.render_status();
        assert!(status.contains("a0"), "{status}");
        assert!(status.contains("tick budget exceeded"), "{status}");
    }
}
