//! Actionable parallelization advice — the paper's Sec. 5 implications,
//! made executable.
//!
//! Sec. 5.3: "once the detailed reason for aborting is identified, the
//! developer would need to transform the code significantly to solve the
//! issue, part of which may be automated." and "Refactoring tools that can
//! transform imperative iteration into functional style could make these
//! loops amenable to parallelism via libraries with parallel operators
//! such as RiverTrail." This module turns each classified nest plus its
//! warnings into that advice: which loop to express as a parallel `map`,
//! which accumulator needs a `reduce`, which conflicts need batching, and
//! where the DOM/Canvas is the blocker.

use crate::classify::{Difficulty, Divergence, NestClassification};
use crate::engine::{Engine, WarningKind};
use ceres_ast::LoopId;

/// Advice for one loop nest.
#[derive(Debug, Clone)]
pub struct Suggestion {
    pub nest: LoopId,
    /// Ordered, human-readable recommendations.
    pub advice: Vec<String>,
}

/// Derive suggestions for every classified nest.
pub fn suggest(engine: &Engine, nests: &[NestClassification]) -> Vec<Suggestion> {
    nests.iter().map(|n| suggest_nest(engine, n)).collect()
}

fn suggest_nest(engine: &Engine, nest: &NestClassification) -> Suggestion {
    let mut advice = Vec::new();
    let warnings = engine.warnings_for_nest(nest.root);

    let mut reductions: Vec<&str> = Vec::new();
    let mut disjoint: Vec<&str> = Vec::new();
    let mut conflicts: Vec<&str> = Vec::new();
    let mut flows: Vec<&str> = Vec::new();
    for w in &warnings {
        match w.kind {
            WarningKind::VarWrite => {
                let op = w.op.as_deref().unwrap_or("=");
                if matches!(op, "+=" | "-=" | "*=") && !reductions.contains(&w.subject.as_str()) {
                    reductions.push(&w.subject);
                }
            }
            WarningKind::SharedPropWrite => {
                let disjoint_write = engine
                    .subject_stats_for(&w.subject)
                    .map(|s| s.disjointness() >= 0.8)
                    .unwrap_or(false);
                let bucket = if disjoint_write {
                    &mut disjoint
                } else if w
                    .op
                    .as_deref()
                    .map(|o| matches!(o, "+" | "-" | "*"))
                    .unwrap_or(false)
                {
                    &mut reductions
                } else {
                    &mut conflicts
                };
                if !bucket.contains(&w.subject.as_str()) {
                    bucket.push(&w.subject);
                }
            }
            WarningKind::FlowRead if !flows.contains(&w.subject.as_str()) => {
                flows.push(&w.subject);
            }
            _ => {}
        }
    }

    if !disjoint.is_empty() {
        advice.push(format!(
            "disjoint per-iteration writes to {} — express the loop as a parallel map \
             (RiverTrail-style `mapPar`) over its index space",
            join(&disjoint)
        ));
    }
    if !reductions.is_empty() {
        advice.push(format!(
            "accumulation into {} — replace with a parallel reduction (associative \
             combiner), as in the N-body center-of-mass example",
            join(&reductions)
        ));
    }
    // Flow reads on subjects whose writes were all compound are already
    // covered by the reduction advice; the rest are real chains.
    let true_flows: Vec<&&str> = flows.iter().filter(|f| !reductions.contains(*f)).collect();
    if !true_flows.is_empty() {
        advice.push(format!(
            "sequential chain through {} — each iteration reads the previous one's \
             write; parallelizing requires an algorithm change (e.g. double buffering \
             / Jacobi-style sweeps) or keeping this loop sequential",
            join_refs(&true_flows)
        ));
    }
    if !conflicts.is_empty() {
        advice.push(format!(
            "conflicting writes to {} — iterations touch shared locations; partition \
             the work into conflict-free batches (graph coloring, as in the cloth \
             constraint solver) or guard with atomics",
            join(&conflicts)
        ));
    }
    if nest.dom_access {
        advice.push(
            "the nest touches the DOM/Canvas, which no browser runs concurrently — \
             hoist host-object operations out of the loop and batch them into a \
             single update after the parallel phase"
                .to_string(),
        );
    }
    match nest.divergence {
        Divergence::Yes => advice.push(
            "control flow diverges (data-dependent branching or recursion) — fine on \
             multicore work-stealing runtimes, costly on SIMD/GPU targets"
                .to_string(),
        ),
        Divergence::Little => advice.push(
            "minor branching — predication/select instructions should absorb it on \
             SIMD targets"
                .to_string(),
        ),
        Divergence::None => {}
    }
    if nest.recursion_tainted {
        advice.push(
            "recursive re-entry detected: profile data for this nest was discarded; \
             analyze the callee separately"
                .to_string(),
        );
    }
    if advice.is_empty() {
        advice.push(match nest.parallelization_difficulty {
            Difficulty::VeryEasy | Difficulty::Easy => {
                "no problematic accesses — the loop is ready for a parallel operator".to_string()
            }
            _ => "no specific advice derived; inspect the warnings manually".to_string(),
        });
    }
    Suggestion {
        nest: nest.root,
        advice,
    }
}

fn join(items: &[&str]) -> String {
    items
        .iter()
        .map(|s| format!("`{s}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn join_refs(items: &[&&str]) -> String {
    items
        .iter()
        .map(|s| format!("`{s}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render suggestions for a report file.
pub fn render_suggestions(engine: &Engine, suggestions: &[Suggestion]) -> String {
    let mut out = String::new();
    for s in suggestions {
        let name = engine
            .loops
            .get(&s.nest)
            .map(|l| l.display_name())
            .unwrap_or_else(|| format!("{}", s.nest));
        out.push_str(&format!("nest {name}:\n"));
        for a in &s.advice {
            out.push_str(&format!("  - {a}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify_nests, static_features};
    use crate::engine::run_instrumented;
    use ceres_instrument::Mode;
    use std::collections::HashMap;

    fn run_and_suggest(src: &str) -> (Vec<Suggestion>, String) {
        let (_interp, eng) = run_instrumented(src, Mode::Dependence, 1).unwrap();
        let mut program = ceres_parser::parse_program(src).unwrap();
        ceres_ast::assign_loop_ids(&mut program);
        let features = static_features(&program);
        let eng = eng.borrow();
        let nests = classify_nests(&eng, &features);
        let suggestions = suggest(&eng, &nests);
        let rendered = render_suggestions(&eng, &suggestions);
        (suggestions, rendered)
    }

    #[test]
    fn disjoint_writes_suggest_parallel_map() {
        let (_s, rendered) = run_and_suggest(
            "var out = new Float32Array(32);\n\
             for (var i = 0; i < 32; i++) { out[i] = i * 2; }",
        );
        assert!(rendered.contains("parallel map"), "{rendered}");
        assert!(rendered.contains("out[*]"), "{rendered}");
    }

    #[test]
    fn accumulator_suggests_reduction() {
        let (_s, rendered) = run_and_suggest(
            "var total = 0;\n\
             for (var i = 0; i < 32; i++) { total += i; }",
        );
        assert!(rendered.contains("parallel reduction"), "{rendered}");
        assert!(rendered.contains("`total`"), "{rendered}");
    }

    #[test]
    fn sequential_chain_suggests_algorithm_change() {
        let (_s, rendered) = run_and_suggest(
            "var st = { v: 1 };\n\
             for (var i = 0; i < 32; i++) { st.v = st.v * 0.9 + i; }",
        );
        assert!(rendered.contains("sequential chain"), "{rendered}");
        assert!(rendered.contains("st.v"), "{rendered}");
    }

    #[test]
    fn dom_loop_suggests_hoisting() {
        let (_s, rendered) = run_and_suggest(
            "var el = document.getElementById(\"x\");\n\
             for (var i = 0; i < 8; i++) { el.textContent = \"v\" + i; }",
        );
        assert!(rendered.contains("DOM/Canvas"), "{rendered}");
        assert!(rendered.contains("hoist"), "{rendered}");
    }

    #[test]
    fn clean_loop_gets_ready_message() {
        let (_s, rendered) = run_and_suggest(
            "function f(k) { var t = k * 2; return t; }\n\
             var r = 0;\n\
             for (var i = 0; i < 8; i++) { var local = f(i); r = local > r ? local : r; }",
        );
        // `r` is a plain var write (max pattern) — but at minimum the
        // renderer produces a named nest with at least one line of advice.
        assert!(rendered.starts_with("nest for(line"), "{rendered}");
        assert!(rendered.contains("- "), "{rendered}");
    }

    #[test]
    fn suggestions_cover_every_nest() {
        let src = "var a = new Float32Array(8);\n\
                   var i, j;\n\
                   for (i = 0; i < 8; i++) { a[i] = i; }\n\
                   for (j = 0; j < 8; j++) { a[j] = a[j] * 2; }";
        let (suggestions, _) = run_and_suggest(src);
        assert_eq!(suggestions.len(), 2);
        let _ = HashMap::<u8, u8>::new();
    }
}
