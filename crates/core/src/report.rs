//! Human-readable report rendering and the "push to github.com" step.
//!
//! Fig. 5 steps 6–7: the proxy "analyzes the results and transforms them to
//! a human readable format … pairs the results to the original documents,
//! and saves them by committing to a local git repository. Finally, the
//! proxy pushes the results to github.com." Here the repository is a local
//! directory of sequentially numbered commits with a log — version tracking
//! and linkability without the network.

use crate::classify::NestClassification;
use crate::engine::{Engine, WarningKind};
use crate::stack::render;
use ceres_ast::LoopId;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Render the per-loop profile (Sec. 3.2 data) as a text table.
pub fn render_loop_profile(engine: &Engine) -> String {
    let mut ids: Vec<LoopId> = engine.records.keys().copied().collect();
    ids.sort();
    let mut out = String::from("loop            instances   trips(avg±sd)   time-ms(total)\n");
    for id in ids {
        let rec = &engine.records[&id];
        let name = engine
            .loops
            .get(&id)
            .map(|l| l.display_name())
            .unwrap_or_else(|| format!("{id}"));
        let time_ms = rec.time_ticks.total() / ceres_interp::TICKS_PER_MS as f64;
        out.push_str(&format!(
            "{:<16}{:>9}   {:>13}   {:>14.2}{}\n",
            name,
            rec.instances,
            rec.trips.display_pm(),
            time_ms,
            if rec.recursion_tainted {
                "  [recursion: results discarded]"
            } else {
                ""
            },
        ));
    }
    out
}

/// Render the dependence warnings the way the paper presents them (Sec. 3.3).
pub fn render_warnings(engine: &Engine) -> String {
    let mut out = String::new();
    if engine.warnings.is_empty() {
        out.push_str("no problematic accesses recorded\n");
        return out;
    }
    let mut warnings: Vec<_> = engine.warnings.iter().collect();
    // Full total order: (kind, subject) alone leaves ties — the same
    // subject flagged in two nests, or via two write ops — to insertion
    // order, which depends on runtime event order rather than anything a
    // reader can predict. Sort the remaining dimensions explicitly
    // (nest-root LoopId, op, rendered characterization) so a report is a
    // pure function of the warning *set*.
    warnings.sort_by_cached_key(|w| {
        (
            w.kind,
            w.subject.clone(),
            w.nest_root,
            w.op.clone(),
            render(&w.characterization, &engine.loops),
        )
    });
    for w in warnings {
        match w.kind {
            WarningKind::Recursion => {
                out.push_str(&format!("warning: recursion through {}\n", w.subject));
                out.push_str("  the loop stack grew through a recursive call; results for this nest are discarded\n");
            }
            _ => {
                out.push_str(&format!(
                    "warning: {} `{}`{} ({} accesses)\n",
                    w.kind.describe(),
                    w.subject,
                    w.op.as_deref()
                        .map(|o| format!(" via `{o}`"))
                        .unwrap_or_default(),
                    w.count
                ));
                out.push_str(&format!(
                    "  {}\n",
                    render(&w.characterization, &engine.loops)
                ));
            }
        }
    }
    out
}

/// Render nest classifications as a Table 3-style block.
pub fn render_nest_table(engine: &Engine, rows: &[NestClassification]) -> String {
    let mut out = String::from(
        "%loops  instances  trips        divergence  DOM  breaking-deps  parallelization\n",
    );
    for r in rows {
        let name = engine
            .loops
            .get(&r.root)
            .map(|l| l.display_name())
            .unwrap_or_else(|| format!("{}", r.root));
        out.push_str(&format!(
            "{:>5.0}   {:>9}  {:>11}  {:<10}  {:<3}  {:<13}  {:<9}  # {}\n",
            r.pct_loop_time,
            r.instances,
            r.trips.display_pm(),
            r.divergence.as_str(),
            if r.dom_access { "yes" } else { "no" },
            r.dependence_difficulty.as_str(),
            r.parallelization_difficulty.as_str(),
            name,
        ));
    }
    out
}

/// Render the runtime polymorphism observations (paper Sec. 2.4 / 4.2).
pub fn render_polymorphism(engine: &Engine) -> String {
    let poly = engine.polymorphic_subjects();
    if poly.is_empty() {
        return "no polymorphic variables observed within loops\n".to_string();
    }
    let mut out = String::new();
    for (subject, types) in poly {
        out.push_str(&format!(
            "polymorphic: `{subject}` observed as {}\n",
            types.join(", ")
        ));
    }
    out
}

/// A local "github repository" of analysis reports.
pub struct ReportRepo {
    root: PathBuf,
    commits: u64,
}

impl ReportRepo {
    /// Open (creating if needed) a report repository at `root`.
    pub fn open(root: impl AsRef<Path>) -> std::io::Result<ReportRepo> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        // Resume the commit counter from the existing log.
        let commits = match fs::read_to_string(root.join("log.txt")) {
            Ok(s) => s.lines().count() as u64,
            Err(_) => 0,
        };
        Ok(ReportRepo { root, commits })
    }

    /// Commit a set of named files under `app`; returns the commit id.
    pub fn commit(&mut self, app: &str, files: &[(&str, String)]) -> std::io::Result<String> {
        self.commits += 1;
        let id = format!("commit-{:04}", self.commits);
        let dir = self.root.join(app).join(&id);
        fs::create_dir_all(&dir)?;
        for (name, content) in files {
            fs::write(dir.join(name), content)?;
        }
        let mut log = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join("log.txt"))?;
        writeln!(log, "{id} {app} ({} files)", files.len())?;
        Ok(id)
    }

    /// Root directory (for tests and for linking reports in docs).
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_instrumented;
    use ceres_instrument::Mode;

    #[test]
    fn loop_profile_renders() {
        let (_i, eng) = run_instrumented(
            "for (var i = 0; i < 10; i++) { var x = i * 2; }",
            Mode::LoopProfile,
            1,
        )
        .unwrap();
        let eng = eng.borrow();
        let s = render_loop_profile(&eng);
        assert!(s.contains("for(line 1)"), "{s}");
        assert!(s.contains("10"), "{s}");
    }

    #[test]
    fn warnings_render_paper_style() {
        let (_i, eng) = run_instrumented(
            "var acc = { v: 0 };\nfor (var i = 0; i < 8; i++) { acc.v += i; }",
            Mode::Dependence,
            1,
        )
        .unwrap();
        let eng = eng.borrow();
        let s = render_warnings(&eng);
        assert!(s.contains("warning:"), "{s}");
        assert!(s.contains("acc.v"), "{s}");
        assert!(s.contains("ok dependence"), "{s}");
    }

    #[test]
    fn warning_order_is_independent_of_insertion_order() {
        use crate::engine::{Engine, Warning, WarningKind};
        use crate::stack::{Flag, LevelChar};
        use ceres_ast::LoopId;

        // Two warnings that tie on (kind, subject): same accumulator
        // flagged in two separate nests. Under the old sort the report
        // order was whatever order the runtime produced them in.
        let mk = |root: u32| Warning {
            kind: WarningKind::VarWrite,
            subject: "g".to_string(),
            characterization: vec![LevelChar {
                loop_id: LoopId(root),
                instance: Flag::Ok,
                iteration: Flag::Dependence,
            }],
            op: Some("=".to_string()),
            nest_root: LoopId(root),
            count: 1,
        };
        let render_with = |order: [u32; 2]| {
            let mut eng = Engine::new(Mode::Dependence, vec![]);
            for r in order {
                eng.warnings.push(mk(r));
            }
            render_warnings(&eng)
        };
        let forward = render_with([1, 2]);
        let reversed = render_with([2, 1]);
        assert_eq!(forward, reversed, "report must not depend on event order");
        // And the explicit tie-break is the nest-root LoopId.
        let first = forward.find("L1 ").expect("loop 1 rendered");
        let second = forward.find("L2 ").expect("loop 2 rendered");
        assert!(first < second, "{forward}");
    }

    #[test]
    fn repo_commits_sequentially_and_resumes() {
        let dir = std::env::temp_dir().join(format!("ceres-report-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut repo = ReportRepo::open(&dir).unwrap();
            let id1 = repo
                .commit("app-a", &[("report.txt", "hello".into())])
                .unwrap();
            let id2 = repo
                .commit("app-b", &[("report.txt", "world".into())])
                .unwrap();
            assert_eq!(id1, "commit-0001");
            assert_eq!(id2, "commit-0002");
            assert!(dir.join("app-a/commit-0001/report.txt").exists());
        }
        {
            // Reopening resumes the counter.
            let mut repo = ReportRepo::open(&dir).unwrap();
            let id3 = repo.commit("app-a", &[("r.txt", "again".into())]).unwrap();
            assert_eq!(id3, "commit-0003");
        }
        let log = fs::read_to_string(dir.join("log.txt")).unwrap();
        assert_eq!(log.lines().count(), 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
