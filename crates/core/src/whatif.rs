//! TASKPROF-style what-if parallelism profiler (ROADMAP item 4).
//!
//! The dependence engine characterizes each loop nest as `ok` or not
//! (Table 3); this module turns those characterizations into *quantified,
//! ranked counterfactuals* on the deterministic virtual clock: **if nest R
//! ran on W workers, how many of the run's ticks would disappear?**
//!
//! # Model
//!
//! Let `T` be the run's total interpreter ticks and `P` the ticks spent
//! inside a nest (the nest root's [`crate::engine::LoopRecord`] running
//! time, which by the paper's accounting already includes nested loops).
//! Perfectly balancing the nest's iterations over `W` workers shrinks its
//! contribution from `P` to `P/W`, so the predicted whole-run speedup is
//!
//! ```text
//! speedup(W) = T / (T - P + P/W)
//! ```
//!
//! — Amdahl's law with parallel fraction `p = P/T`; `W → ∞` gives the
//! paper's Sec. 4.2 upper bound `1/(1-p)`. Iterations are indivisible, so
//! the per-worker prediction is additionally trip-capped: with `n`
//! iterations someone owns `ceil(n/W)` of them, and the parallel part
//! shrinks to `P·ceil(n/W)/n` ([`predicted_speedup_capped`]). The
//! prediction still assumes equal-cost iterations; the fork-join executor
//! ([`crate::parallel`]) measures the *actual* critical path
//! (`max_k E_k` per instance), so predicted vs measured comparisons
//! quantify cost imbalance + merge overhead. The error bound the
//! reproduction commits to is documented in `docs/PARALLELIZE.md`.
//!
//! A nest is **eligible** (`ok`) when the dependence engine found its
//! parallelization difficulty at most `medium` and did not discard it for
//! recursion — the same criterion the paper's Sec. 4 discussion applies
//! to its "ok" loop population.

use crate::classify::Difficulty;
use crate::pipeline::AppRun;
use serde::{Deserialize, Serialize};

/// Version stamp on every serialized [`WhatIfReport`]. Bump on any field
/// change; docs/METRICS.md documents the schema.
pub const WHATIF_SCHEMA_VERSION: u32 = 1;

/// Worker counts predictions are computed for by default.
pub const DEFAULT_WORKERS: &[usize] = &[2, 4, 8];

/// Counterfactual prediction for one loop nest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NestPrediction {
    /// Nest root loop id (matches the analysis reports and `--focus`).
    pub root: u32,
    /// Eligible for fork-join execution (difficulty ≤ medium, not
    /// recursion-tainted)?
    pub ok: bool,
    /// Parallelization difficulty, as in Table 3.
    pub difficulty: String,
    /// Ticks spent inside the nest (`P`).
    pub nest_ticks: u64,
    /// `P/T` — the nest's parallel fraction of the whole run.
    pub parallel_fraction: f64,
    /// Nest instances observed.
    pub instances: u64,
    /// Mean trip count of the nest root.
    pub trips_mean: f64,
    /// `(W, T / (T - P + P/W))` for each analyzed worker count.
    pub speedups: Vec<(usize, f64)>,
    /// `W → ∞` Amdahl bound `1/(1-p)` (Sec. 4.2).
    pub amdahl_bound: f64,
}

impl NestPrediction {
    /// Predicted whole-run speedup on `workers` workers.
    pub fn speedup(&self, workers: usize) -> f64 {
        self.speedups
            .iter()
            .find(|(w, _)| *w == workers)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| {
                predicted_speedup_capped(self.parallel_fraction, workers, self.trips_mean)
            })
    }

    /// Fraction of the run's ticks removed on `workers` workers.
    pub fn tick_reduction(&self, workers: usize) -> f64 {
        let s = self.speedup(workers);
        if s <= 0.0 {
            0.0
        } else {
            1.0 - 1.0 / s
        }
    }
}

/// Ranked per-app what-if prediction table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfReport {
    /// [`WHATIF_SCHEMA_VERSION`].
    pub schema: u32,
    /// Total interpreter ticks of the profiled run (`T`).
    pub total_ticks: u64,
    /// Worker counts the predictions cover.
    pub workers: Vec<usize>,
    /// All observed nests, ranked by tick reduction (descending
    /// `nest_ticks` among `ok` nests first, then the rest).
    pub nests: Vec<NestPrediction>,
    /// Root of the top-ranked `ok` nest — the loop the fork-join
    /// executor targets — if any nest qualified.
    pub top_ok: Option<u32>,
}

impl WhatIfReport {
    /// The top-ranked eligible prediction, if any.
    pub fn top_ok_prediction(&self) -> Option<&NestPrediction> {
        let root = self.top_ok?;
        self.nests.iter().find(|n| n.root == root)
    }
}

/// `T / (T - P + P/W)` expressed in fractions: `1 / (1 - p + p/W)` — the
/// infinite-trip ideal.
pub fn predicted_speedup(parallel_fraction: f64, workers: usize) -> f64 {
    let p = parallel_fraction.clamp(0.0, 1.0);
    let w = workers.max(1) as f64;
    1.0 / ((1.0 - p) + p / w)
}

/// Finite-trip prediction. A nest whose root runs `n` iterations cannot
/// split finer than whole iterations: on `W` workers someone owns
/// `ceil(n/W)` of them, so the parallel part shrinks to
/// `P * ceil(n/W)/n`, not `P/W`. (At `n = 2, W = 4` this is the
/// difference between predicting 4x and the honest 2x.) Falls back to the
/// ideal when the trip count is unknown.
pub fn predicted_speedup_capped(parallel_fraction: f64, workers: usize, trips: f64) -> f64 {
    let p = parallel_fraction.clamp(0.0, 1.0);
    let w = workers.max(1) as f64;
    if !trips.is_finite() || trips < 1.0 {
        return predicted_speedup(parallel_fraction, workers);
    }
    let n = trips.round().max(1.0);
    let chunk = (n / w).ceil() / n;
    1.0 / ((1.0 - p) + p * chunk)
}

/// Build the ranked what-if table for one analyzed run.
///
/// `run` must come from a `Mode::Dependence` analysis (the difficulty
/// columns are derived from dependence warnings; in lighter modes every
/// nest looks trivially `ok`).
pub fn whatif(run: &AppRun, workers: &[usize]) -> WhatIfReport {
    let total_ticks = run.obs.counters.interp_ticks;
    let t = total_ticks as f64;
    let engine = run.engine.borrow();
    let mut nests: Vec<NestPrediction> = run
        .nests()
        .iter()
        .map(|nest| {
            let nest_ticks = engine
                .records
                .get(&nest.root)
                .map(|r| r.time_ticks.total() as u64)
                .unwrap_or(0);
            let p = if t > 0.0 { nest_ticks as f64 / t } else { 0.0 };
            let ok =
                nest.parallelization_difficulty <= Difficulty::Medium && !nest.recursion_tainted;
            NestPrediction {
                root: nest.root.0,
                ok,
                difficulty: nest.parallelization_difficulty.as_str().to_string(),
                nest_ticks,
                parallel_fraction: p,
                instances: nest.instances,
                trips_mean: nest.trips.mean(),
                speedups: workers
                    .iter()
                    .map(|&w| (w, predicted_speedup_capped(p, w, nest.trips.mean())))
                    .collect(),
                amdahl_bound: crate::classify::amdahl_bound(p),
            }
        })
        .collect();
    // Rank by counterfactual value: eligible nests first, biggest tick
    // reduction (== biggest P at fixed W) first within each group.
    nests.sort_by(|a, b| {
        b.ok.cmp(&a.ok)
            .then(b.nest_ticks.cmp(&a.nest_ticks))
            .then(a.root.cmp(&b.root))
    });
    let top_ok = nests
        .iter()
        .find(|n| n.ok && n.nest_ticks > 0)
        .map(|n| n.root);
    WhatIfReport {
        schema: WHATIF_SCHEMA_VERSION,
        total_ticks,
        workers: workers.to_vec(),
        nests,
        top_ok,
    }
}

/// Paper-style text table for one app's what-if report.
pub fn render_whatif(app: &str, report: &WhatIfReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{app}: {} ticks total, {} nest(s)",
        report.total_ticks,
        report.nests.len()
    );
    let _ = writeln!(
        out,
        "  {:>4} {:>3} {:>10} {:>7} {:>9} {}  {:>7}  difficulty",
        "nest",
        "ok",
        "ticks",
        "% run",
        "amdahl",
        report
            .workers
            .iter()
            .map(|w| format!("{:>8}", format!("x@{w}w")))
            .collect::<String>(),
        "top"
    );
    for n in &report.nests {
        let _ = writeln!(
            out,
            "  {:>4} {:>3} {:>10} {:>6.1}% {:>9} {}  {:>7}  {}",
            n.root,
            if n.ok { "yes" } else { "no" },
            n.nest_ticks,
            100.0 * n.parallel_fraction,
            if n.amdahl_bound.is_infinite() {
                "inf".to_string()
            } else {
                format!("{:.2}x", n.amdahl_bound)
            },
            n.speedups
                .iter()
                .map(|(_, s)| format!("{:>8}", format!("{s:.2}x")))
                .collect::<String>(),
            if Some(n.root) == report.top_ok {
                "<-par"
            } else {
                ""
            },
            n.difficulty,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_model_math() {
        // p = 0: nothing to win.
        assert!((predicted_speedup(0.0, 8) - 1.0).abs() < 1e-12);
        // p = 1, W = 4: ideal 4x.
        assert!((predicted_speedup(1.0, 4) - 4.0).abs() < 1e-12);
        // Amdahl: p = 0.9, W = 2 → 1/(0.1 + 0.45).
        assert!((predicted_speedup(0.9, 2) - 1.0 / 0.55).abs() < 1e-12);
        // Monotone in W, bounded by 1/(1-p).
        assert!(predicted_speedup(0.8, 4) < predicted_speedup(0.8, 8));
        assert!(predicted_speedup(0.8, 1024) < 1.0 / 0.2 + 1e-9);
        // Trip cap: 2 iterations cannot use more than 2 workers.
        let two_trips = predicted_speedup_capped(1.0, 4, 2.0);
        assert!((two_trips - 2.0).abs() < 1e-12, "{two_trips}");
        // n divisible by W matches the ideal; unknown trips fall back.
        assert!(
            (predicted_speedup_capped(0.8, 4, 100.0) - predicted_speedup(0.8, 4)).abs() < 1e-12
        );
        assert!(
            (predicted_speedup_capped(0.8, 4, f64::NAN) - predicted_speedup(0.8, 4)).abs() < 1e-12
        );
        // Quantization only ever lowers the prediction.
        assert!(predicted_speedup_capped(0.9, 4, 6.0) < predicted_speedup(0.9, 4));
    }

    #[test]
    fn whatif_ranks_the_hot_ok_nest_first() {
        let opts = crate::AnalyzeOptions::builder()
            .mode(crate::Mode::Dependence)
            .seed(2015)
            .build();
        let src = "var out = [];\n\
                   function work(i) { var a = 0; for (var j = 0; j < 60; j++) { a = a + i * j; } return a; }\n\
                   for (var i = 0; i < 40; i++) { out[i] = work(i); }\n\
                   var small = 0;\n\
                   for (var k = 0; k < 3; k++) { small = small + k; }";
        let mut server = crate::WebServer::new();
        server.publish(
            "app",
            crate::Document::Html(format!("<html><body><script>{src}</script></body></html>")),
        );
        let run = crate::analyze(&server, "app", opts, Box::new(|_, _| Ok(()))).unwrap();
        let report = whatif(&run, DEFAULT_WORKERS);
        assert_eq!(report.schema, WHATIF_SCHEMA_VERSION);
        assert!(report.total_ticks > 0);
        let top = report.top_ok_prediction().expect("an ok nest");
        // The hot map loop dominates; its fraction and predictions follow.
        assert!(top.parallel_fraction > 0.5, "{top:?}");
        assert!(top.speedup(4) > 1.5, "{top:?}");
        assert!(top.amdahl_bound > top.speedup(8));
        // JSON round-trip.
        let json = serde_json::to_string(&report).unwrap();
        let back: WhatIfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.top_ok, report.top_ok);
        // Render shows the marker on the chosen nest.
        let text = render_whatif("demo", &report);
        assert!(text.contains("<-par"), "{text}");
    }
}
