//! Loop-nest classification — the right half of Table 3, plus the Amdahl
//! analysis of Sec. 4.2.
//!
//! For every top-level loop nest the classifier derives:
//!
//! * **control-flow divergence** (`none` / `little` / `yes`) — from static
//!   branch density of the nest's bodies, runtime recursion taint, and the
//!   outer trip count (nests that "only execute roughly one iteration on
//!   average" diverge by definition);
//! * **DOM access** — whether any tagged host object was touched while the
//!   nest was open;
//! * **breaking-dependencies difficulty** — from the dependence warnings:
//!   induction writes are free, reductions are breakable, disjoint
//!   per-iteration writes ("well-defined pattern that allows parallelism")
//!   are easy, genuine flow dependencies are hard;
//! * **parallelization difficulty** — dependence difficulty bumped by
//!   today's non-concurrent DOM/Canvas: an otherwise-easy nest that talks
//!   to the DOM becomes very hard (the Harmony rows), while a nest whose
//!   dependencies are already hard stays hard (the D3 row) because the DOM
//!   is not its binding constraint.

use crate::engine::{Engine, Warning, WarningKind};
use crate::welford::Welford;
use ceres_ast::ast::*;
use ceres_ast::LoopId;
use std::collections::HashMap;

/// Difficulty scale used by both Table 3 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Difficulty {
    VeryEasy,
    Easy,
    Medium,
    Hard,
    VeryHard,
}

impl Difficulty {
    pub fn as_str(&self) -> &'static str {
        match self {
            Difficulty::VeryEasy => "very easy",
            Difficulty::Easy => "easy",
            Difficulty::Medium => "medium",
            Difficulty::Hard => "hard",
            Difficulty::VeryHard => "very hard",
        }
    }
}

impl std::fmt::Display for Difficulty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Control-flow divergence assessment (Table 3, column 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Divergence {
    None,
    Little,
    Yes,
}

impl Divergence {
    pub fn as_str(&self) -> &'static str {
        match self {
            Divergence::None => "none",
            Divergence::Little => "little",
            Divergence::Yes => "yes",
        }
    }
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One classified loop nest — a full Table 3 row.
#[derive(Debug, Clone)]
pub struct NestClassification {
    pub root: LoopId,
    /// Share of the program's total loop time spent in this nest (column 2).
    pub pct_loop_time: f64,
    /// Times the nest was encountered (column 3, "instances").
    pub instances: u64,
    /// Outer-loop trip count statistics (column 4, `avg±sd`).
    pub trips: Welford,
    pub divergence: Divergence,
    pub dom_access: bool,
    pub dependence_difficulty: Difficulty,
    pub parallelization_difficulty: Difficulty,
    /// Results discarded due to recursion (paper Sec. 3.3)?
    pub recursion_tainted: bool,
}

/// Static per-loop features extracted from the *uninstrumented* AST.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticFeatures {
    /// Branching constructs in the loop body (if/switch/?:/&&/||).
    pub branches: u32,
    /// Total AST nodes in the body (density denominator).
    pub body_size: u32,
    /// Calls in the body (divergence through callees is possible).
    pub calls: u32,
    /// The body calls (possibly transitively) a recursive function —
    /// variable-depth recursion per iteration, the paper's HAAR/Raytracing
    /// divergence cases.
    pub recursive_call: bool,
}

/// Walk the program and compute [`StaticFeatures`] for every loop.
pub fn static_features(program: &Program) -> HashMap<LoopId, StaticFeatures> {
    let recursive = recursive_functions(program);
    let mut out = HashMap::new();
    let mut ctx = WalkCtx {
        stack: Vec::new(),
        recursive,
    };
    walk_stmts(&program.body, &mut ctx, &mut out);
    out
}

/// Names of functions that can reach themselves through the (name-based)
/// static call graph. Conservative and simple: function declarations and
/// `var f = function …` both define nodes; `f(…)` call sites with a plain
/// identifier callee define edges.
fn recursive_functions(program: &Program) -> std::collections::HashSet<String> {
    use std::collections::{HashMap as Map, HashSet as Set};
    // Collect function bodies by name.
    let mut bodies: Map<String, &Func> = Map::new();
    fn collect<'a>(stmts: &'a [Stmt], bodies: &mut Map<String, &'a Func>) {
        for s in stmts {
            match &s.kind {
                StmtKind::Func(d) => {
                    bodies.insert(d.name.clone(), &d.func);
                    collect(&d.func.body, bodies);
                }
                StmtKind::VarDecl(ds) => {
                    for d in ds {
                        if let Some(Expr {
                            kind: ExprKind::Func { func, .. },
                            ..
                        }) = &d.init
                        {
                            bodies.insert(d.name.clone(), func);
                            collect(&func.body, bodies);
                        }
                    }
                }
                StmtKind::Block(b) => collect(b, bodies),
                StmtKind::If { then, alt, .. } => {
                    collect(std::slice::from_ref(then), bodies);
                    if let Some(a) = alt {
                        collect(std::slice::from_ref(a), bodies);
                    }
                }
                StmtKind::While { body, .. }
                | StmtKind::DoWhile { body, .. }
                | StmtKind::For { body, .. }
                | StmtKind::ForIn { body, .. } => collect(std::slice::from_ref(body), bodies),
                _ => {}
            }
        }
    }
    collect(&program.body, &mut bodies);

    // Edges: names called from each function body.
    fn called_names(stmts: &[Stmt], out: &mut Set<String>) {
        struct CallCollector<'a>(&'a mut Set<String>);
        impl ceres_ast::VisitMut for CallCollector<'_> {
            fn visit_expr(&mut self, e: &mut Expr) {
                if let ExprKind::Call { callee, .. } = &e.kind {
                    if let ExprKind::Ident(name) = &callee.kind {
                        self.0.insert(name.clone());
                    }
                }
                ceres_ast::visit::walk_expr(self, e);
            }
        }
        // Clone so the visitor (mutable API) can walk without touching the
        // original tree.
        for s in stmts {
            let mut s = s.clone();
            use ceres_ast::VisitMut as _;
            CallCollector(out).visit_stmt(&mut s);
        }
    }
    let edges: Map<String, Set<String>> = bodies
        .iter()
        .map(|(name, func)| {
            let mut callees = Set::new();
            called_names(&func.body, &mut callees);
            (name.clone(), callees)
        })
        .collect();

    // A function is recursion-reaching if DFS from it finds a cycle.
    fn reaches_cycle(
        name: &str,
        edges: &Map<String, Set<String>>,
        path: &mut Set<String>,
        memo: &mut Map<String, bool>,
    ) -> bool {
        if let Some(&r) = memo.get(name) {
            return r;
        }
        if !path.insert(name.to_string()) {
            return true; // back-edge: cycle
        }
        let mut found = false;
        if let Some(callees) = edges.get(name) {
            for c in callees {
                if path.contains(c) || reaches_cycle(c, edges, path, memo) {
                    found = true;
                    break;
                }
            }
        }
        path.remove(name);
        memo.insert(name.to_string(), found);
        found
    }
    let mut memo = Map::new();
    let mut recursive = Set::new();
    for name in edges.keys() {
        let mut path = Set::new();
        if reaches_cycle(name, &edges, &mut path, &mut memo) {
            recursive.insert(name.clone());
        }
    }
    recursive
}

struct WalkCtx {
    stack: Vec<LoopId>,
    recursive: std::collections::HashSet<String>,
}

fn bump(ctx: &WalkCtx, out: &mut HashMap<LoopId, StaticFeatures>, f: impl Fn(&mut StaticFeatures)) {
    for id in &ctx.stack {
        f(out.entry(*id).or_default());
    }
}

fn walk_stmts(stmts: &[Stmt], ctx: &mut WalkCtx, out: &mut HashMap<LoopId, StaticFeatures>) {
    for s in stmts {
        walk_stmt(s, ctx, out);
    }
}

fn walk_stmt(s: &Stmt, ctx: &mut WalkCtx, out: &mut HashMap<LoopId, StaticFeatures>) {
    bump(ctx, out, |f| f.body_size += 1);
    match &s.kind {
        StmtKind::If { cond, then, alt } => {
            bump(ctx, out, |f| f.branches += 1);
            walk_expr(cond, ctx, out);
            walk_stmt(then, ctx, out);
            if let Some(a) = alt {
                walk_stmt(a, ctx, out);
            }
        }
        StmtKind::Switch { disc, cases } => {
            bump(ctx, out, |f| f.branches += 1);
            walk_expr(disc, ctx, out);
            for c in cases {
                if let Some(t) = &c.test {
                    walk_expr(t, ctx, out);
                }
                walk_stmts(&c.body, ctx, out);
            }
        }
        StmtKind::While {
            loop_id,
            cond,
            body,
        }
        | StmtKind::DoWhile {
            loop_id,
            cond,
            body,
        } => {
            out.entry(*loop_id).or_default();
            walk_expr(cond, ctx, out);
            ctx.stack.push(*loop_id);
            walk_stmt(body, ctx, out);
            ctx.stack.pop();
        }
        StmtKind::For {
            loop_id,
            init,
            cond,
            update,
            body,
        } => {
            out.entry(*loop_id).or_default();
            match init {
                Some(ForInit::VarDecl(ds)) => {
                    for d in ds {
                        if let Some(e) = &d.init {
                            walk_expr(e, ctx, out);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => walk_expr(e, ctx, out),
                None => {}
            }
            if let Some(c) = cond {
                walk_expr(c, ctx, out);
            }
            if let Some(u) = update {
                walk_expr(u, ctx, out);
            }
            ctx.stack.push(*loop_id);
            walk_stmt(body, ctx, out);
            ctx.stack.pop();
        }
        StmtKind::ForIn {
            loop_id,
            object,
            body,
            ..
        } => {
            out.entry(*loop_id).or_default();
            walk_expr(object, ctx, out);
            ctx.stack.push(*loop_id);
            walk_stmt(body, ctx, out);
            ctx.stack.pop();
        }
        StmtKind::Block(ss) => walk_stmts(ss, ctx, out),
        StmtKind::Expr(e) | StmtKind::Throw(e) => walk_expr(e, ctx, out),
        StmtKind::Return(Some(e)) => walk_expr(e, ctx, out),
        StmtKind::VarDecl(ds) => {
            for d in ds {
                if let Some(e) = &d.init {
                    walk_expr(e, ctx, out);
                }
            }
        }
        StmtKind::Func(decl) => {
            // Loops inside a function body belong to the nest of whoever
            // *calls* the function; statically we attribute conservatively
            // to the enclosing syntactic loops (callbacks defined in loops).
            walk_stmts(&decl.func.body, ctx, out);
        }
        StmtKind::Try {
            block,
            catch,
            finally,
        } => {
            walk_stmts(block, ctx, out);
            if let Some(c) = catch {
                walk_stmts(&c.body, ctx, out);
            }
            if let Some(f) = finally {
                walk_stmts(f, ctx, out);
            }
        }
        _ => {}
    }
}

fn walk_expr(e: &Expr, ctx: &mut WalkCtx, out: &mut HashMap<LoopId, StaticFeatures>) {
    bump(ctx, out, |f| f.body_size += 1);
    match &e.kind {
        ExprKind::Cond { cond, then, alt } => {
            bump(ctx, out, |f| f.branches += 1);
            walk_expr(cond, ctx, out);
            walk_expr(then, ctx, out);
            walk_expr(alt, ctx, out);
        }
        ExprKind::Logical { left, right, .. } => {
            bump(ctx, out, |f| f.branches += 1);
            walk_expr(left, ctx, out);
            walk_expr(right, ctx, out);
        }
        ExprKind::Binary { left, right, .. } => {
            walk_expr(left, ctx, out);
            walk_expr(right, ctx, out);
        }
        ExprKind::Assign { target, value, .. } => {
            walk_expr(target, ctx, out);
            walk_expr(value, ctx, out);
        }
        ExprKind::Unary { expr, .. } | ExprKind::Update { target: expr, .. } => {
            walk_expr(expr, ctx, out);
        }
        ExprKind::Call { callee, args } | ExprKind::New { callee, args } => {
            bump(ctx, out, |f| f.calls += 1);
            if let ExprKind::Ident(name) = &callee.kind {
                if ctx.recursive.contains(name) {
                    bump(ctx, out, |f| f.recursive_call = true);
                }
            }
            walk_expr(callee, ctx, out);
            for a in args {
                walk_expr(a, ctx, out);
            }
        }
        ExprKind::Member { object, .. } => walk_expr(object, ctx, out),
        ExprKind::Index { object, index } => {
            walk_expr(object, ctx, out);
            walk_expr(index, ctx, out);
        }
        ExprKind::Array(els) | ExprKind::Seq(els) => {
            for el in els {
                walk_expr(el, ctx, out);
            }
        }
        ExprKind::Object(props) => {
            for (_, v) in props {
                walk_expr(v, ctx, out);
            }
        }
        ExprKind::Func { func, .. } => walk_stmts(&func.body, ctx, out),
        _ => {}
    }
}

/// Var-write ops that are trivially breakable (loop bookkeeping).
fn is_induction_op(op: &str) -> bool {
    matches!(op, "++" | "--" | "forin" | "init")
}

/// Compound arithmetic — a reduction pattern, breakable with a combiner.
fn is_reduction_op(op: &str) -> bool {
    matches!(op, "+=" | "-=" | "*=" | "+" | "-" | "*")
}

/// Does the dependence this warning describes *block* parallelizing the
/// nest's profitable loop?
///
/// The first `dependence` level `L` in the characterization names the loop
/// that carries the dependence. Iterations of loops *inside* `L` are still
/// independent, so if the bulk of the nest's parallelism lives below `L`
/// (deeper loops have larger trip counts — e.g. fluidSim's 8-trip Jacobi
/// `k` loop over a 10×10 sweep), the dependence does not block the nest:
/// one parallelizes the inner sweep and keeps `L` sequential. If `L` is
/// itself the widest loop at-or-below its level (sigma's per-node layout
/// loop, a single accumulator loop), the dependence blocks.
fn blocks_nest(engine: &Engine, w: &Warning) -> bool {
    let Some(level) = w
        .characterization
        .iter()
        .position(|l| l.iteration == crate::stack::Flag::Dependence)
    else {
        return false;
    };
    let trips = |id: ceres_ast::LoopId| -> f64 {
        engine
            .records
            .get(&id)
            .map(|r| r.trips.mean())
            .unwrap_or(0.0)
    };
    let carrier = trips(w.characterization[level].loop_id);
    // The nest's profitable parallelism level: the widest loop anywhere in
    // the nest. A dependence carried by a much narrower loop (fluidSim's
    // 8-trip Jacobi `k`, a 3-trip argmin over spheres) leaves that wide
    // loop's iterations independent, so it doesn't block the nest.
    let nest_max = engine
        .nest_root
        .iter()
        .filter(|(_, root)| **root == w.nest_root)
        .map(|(id, _)| trips(*id))
        .fold(0.0f64, f64::max);
    carrier + 1.0 >= nest_max
}

/// Classify the dependence-breaking difficulty of one nest from its
/// warnings and subject statistics.
pub fn dependence_difficulty(engine: &Engine, warnings: &[&Warning]) -> Difficulty {
    let mut reductions = 0u32;
    let mut plain_var_writes = 0u32;
    let mut conflicting_writes = 0u32;
    let mut flow_reduction = 0u32;
    let mut flow_true = 0u32;

    // Subjects whose writes were all compound arithmetic are reductions;
    // flow reads on them are breakable.
    let mut write_ops: HashMap<&str, (bool, bool)> = HashMap::new(); // subject -> (any, all_reduction)
    for w in warnings {
        if w.kind == WarningKind::SharedPropWrite {
            let entry = write_ops.entry(w.subject.as_str()).or_insert((false, true));
            entry.0 = true;
            let red = w.op.as_deref().map(is_reduction_op).unwrap_or(false)
                || w.op.as_deref().map(is_induction_op).unwrap_or(false);
            entry.1 &= red;
        }
    }

    for w in warnings {
        match w.kind {
            WarningKind::VarWrite => {
                let op = w.op.as_deref().unwrap_or("=");
                if is_induction_op(op) {
                    // free
                } else if is_reduction_op(op) {
                    reductions += 1;
                } else if blocks_nest(engine, w) {
                    plain_var_writes += 1;
                }
            }
            WarningKind::SharedPropWrite => {
                let disjoint = engine
                    .subject_stats_for(&w.subject)
                    .map(|s| s.disjointness() >= 0.8)
                    .unwrap_or(false);
                if disjoint {
                    // Disjoint per-iteration writes never raise difficulty.
                } else if w.op.as_deref().map(is_reduction_op).unwrap_or(false) {
                    reductions += 1;
                } else if blocks_nest(engine, w) {
                    conflicting_writes += 1;
                }
            }
            WarningKind::FlowRead => {
                if !blocks_nest(engine, w) {
                    continue;
                }
                let all_reduction = write_ops
                    .get(w.subject.as_str())
                    .map(|(_, r)| *r)
                    .unwrap_or(false);
                if all_reduction {
                    flow_reduction += 1;
                } else {
                    flow_true += 1;
                }
            }
            WarningKind::WawWrite => {
                // Same location written by two iterations of the profitable
                // loop: a real output conflict (the cloth-constraint case).
                if blocks_nest(engine, w) {
                    conflicting_writes += 1;
                }
            }
            WarningKind::Recursion => {}
        }
    }

    if flow_true >= 3 {
        Difficulty::VeryHard
    } else if flow_true > 0 {
        Difficulty::Hard
    } else if conflicting_writes > 0 || plain_var_writes >= 3 {
        Difficulty::Medium
    } else if reductions > 0 || flow_reduction > 0 || plain_var_writes > 0 {
        Difficulty::Easy
    } else {
        // Only disjoint writes (or nothing problematic at all).
        Difficulty::VeryEasy
    }
}

/// Explain, warning by warning, how [`dependence_difficulty`] bucketed a
/// nest (debugging/report aid).
pub fn difficulty_explain(engine: &Engine, warnings: &[&Warning]) -> String {
    let mut out = String::new();
    for w in warnings {
        let blocking = blocks_nest(engine, w);
        let disjoint = engine
            .subject_stats_for(&w.subject)
            .map(|s| s.disjointness())
            .unwrap_or(-1.0);
        out.push_str(&format!(
            "{:?} {} op={:?} blocking={} disjointness={:.2}\n",
            w.kind, w.subject, w.op, blocking, disjoint
        ));
    }
    out
}

/// Combine dependence difficulty with the non-concurrent-DOM reality
/// (Sec. 4.2 / 5.1): DOM access caps an otherwise-parallelizable nest.
pub fn parallelization_difficulty(dep: Difficulty, dom: bool) -> Difficulty {
    if dom && dep <= Difficulty::Medium {
        Difficulty::VeryHard
    } else {
        dep
    }
}

/// Assess control-flow divergence for a nest.
pub fn divergence(
    root_trips_mean: f64,
    recursion: bool,
    features: Option<&StaticFeatures>,
) -> Divergence {
    if recursion {
        return Divergence::Yes;
    }
    if root_trips_mean > 0.0 && root_trips_mean < 3.0 {
        return Divergence::Yes;
    }
    match features {
        None => Divergence::None,
        Some(f) => {
            if f.recursive_call {
                return Divergence::Yes;
            }
            if f.branches == 0 {
                Divergence::None
            } else if (f.branches as f64) <= 0.12 * f.body_size as f64 {
                Divergence::Little
            } else {
                Divergence::Yes
            }
        }
    }
}

/// Produce the Table 3 rows for every top-level nest observed at runtime,
/// sorted by descending share of loop time.
pub fn classify_nests(
    engine: &Engine,
    features: &HashMap<LoopId, StaticFeatures>,
) -> Vec<NestClassification> {
    // Total loop time = sum of root-nest times.
    let roots: Vec<LoopId> = {
        let mut r: Vec<LoopId> = engine
            .nest_root
            .values()
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        r.retain(|id| engine.nest_root.get(id) == Some(id));
        r
    };
    let total: f64 = roots
        .iter()
        .filter_map(|id| engine.records.get(id))
        .map(|r| r.time_ticks.total())
        .sum();

    let mut rows = Vec::new();
    for root in roots {
        let Some(rec) = engine.records.get(&root) else {
            continue;
        };
        // Nest members: loops whose nest_root is this root.
        let members: Vec<LoopId> = engine
            .nest_root
            .iter()
            .filter(|(_, r)| **r == root)
            .map(|(l, _)| *l)
            .collect();
        let recursion = members
            .iter()
            .filter_map(|l| engine.records.get(l))
            .any(|r| r.recursion_tainted);
        let dom = members.iter().any(|l| {
            engine
                .dom_by_loop
                .get(l)
                .map(|t| !t.is_empty())
                .unwrap_or(false)
        });
        let warnings = engine.warnings_for_nest(root);
        let dep = dependence_difficulty(engine, &warnings);
        // Merge static features over the nest.
        let mut merged = StaticFeatures::default();
        for m in &members {
            if let Some(f) = features.get(m) {
                merged.branches += f.branches;
                merged.body_size += f.body_size;
                merged.calls += f.calls;
                merged.recursive_call |= f.recursive_call;
            }
        }
        let div = divergence(rec.trips.mean(), recursion, Some(&merged));
        rows.push(NestClassification {
            root,
            pct_loop_time: if total > 0.0 {
                100.0 * rec.time_ticks.total() / total
            } else {
                0.0
            },
            instances: rec.instances,
            trips: rec.trips.clone(),
            divergence: div,
            dom_access: dom,
            dependence_difficulty: dep,
            parallelization_difficulty: parallelization_difficulty(dep, dom),
            recursion_tainted: recursion,
        });
    }
    rank_nests(&mut rows);
    rows
}

/// Order nests by descending share of loop time. Uses `f64::total_cmp`, not
/// `partial_cmp().unwrap()`: a zero-runtime app can yield NaN percentages,
/// which must rank last in the table, never panic the analyzer. NaN keys
/// are mapped below every real share so they sink to the bottom.
pub fn rank_nests(rows: &mut [NestClassification]) {
    let key = |x: f64| if x.is_nan() { f64::NEG_INFINITY } else { x };
    rows.sort_by(|a, b| key(b.pct_loop_time).total_cmp(&key(a.pct_loop_time)));
}

// ---------------------------------------------------------------------
// Amdahl (Sec. 4.2: "the upper bound for speedup is greater than 3× for
// 5 of the 12 applications when only counting easy to parallelize loops")
// ---------------------------------------------------------------------

/// Upper-bound speedup with unlimited cores: `1 / (1 - p)`.
pub fn amdahl_bound(parallel_fraction: f64) -> f64 {
    let p = parallel_fraction.clamp(0.0, 1.0);
    if p >= 1.0 {
        f64::INFINITY
    } else {
        1.0 / (1.0 - p)
    }
}

/// Speedup with `n` cores: `1 / ((1 - p) + p / n)`.
pub fn amdahl_speedup(parallel_fraction: f64, n: f64) -> f64 {
    let p = parallel_fraction.clamp(0.0, 1.0);
    1.0 / ((1.0 - p) + p / n.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_instrumented;
    use ceres_instrument::Mode;

    #[test]
    fn amdahl_math() {
        assert!((amdahl_bound(0.5) - 2.0).abs() < 1e-12);
        assert!((amdahl_bound(0.9) - 10.0).abs() < 1e-12);
        assert!(amdahl_bound(0.0) == 1.0);
        assert!(amdahl_bound(1.0).is_infinite());
        assert!((amdahl_speedup(0.9, 4.0) - 1.0 / (0.1 + 0.225)).abs() < 1e-12);
        // >3x requires p > 2/3.
        assert!(amdahl_bound(0.67) > 3.0);
        assert!(amdahl_bound(0.66) < 3.0);
    }

    #[test]
    fn rank_nests_handles_nan_shares_without_panicking() {
        // Regression: ranking used `partial_cmp().unwrap()` and panicked on
        // NaN percentages; now NaN rows must sink to the bottom instead.
        let mk = |root: u32, pct: f64| NestClassification {
            root: LoopId(root),
            pct_loop_time: pct,
            instances: 1,
            trips: Welford::new(),
            divergence: Divergence::None,
            dom_access: false,
            dependence_difficulty: Difficulty::Easy,
            parallelization_difficulty: Difficulty::Easy,
            recursion_tainted: false,
        };
        let mut rows = vec![mk(1, f64::NAN), mk(2, 10.0), mk(3, 90.0), mk(4, f64::NAN)];
        rank_nests(&mut rows);
        assert_eq!(rows[0].pct_loop_time, 90.0);
        assert_eq!(rows[1].pct_loop_time, 10.0);
        assert!(rows[2].pct_loop_time.is_nan());
        assert!(rows[3].pct_loop_time.is_nan());
    }

    #[test]
    fn zero_tick_app_classifies_without_panicking() {
        // An app whose only loop never runs a body spends 0 ticks in loops;
        // classification (including the ranking sort) must survive that.
        let (_interp, engine) = run_instrumented(
            "for (var i = 0; i < 0; i++) { var x = i; }",
            Mode::Dependence,
            2015,
        )
        .expect("run");
        let rows = classify_nests(&engine.borrow(), &HashMap::new());
        for r in &rows {
            assert!(!r.pct_loop_time.is_nan(), "{r:?}");
        }
    }

    #[test]
    fn difficulty_ordering() {
        assert!(Difficulty::VeryEasy < Difficulty::Easy);
        assert!(Difficulty::Hard < Difficulty::VeryHard);
        assert_eq!(Difficulty::Medium.as_str(), "medium");
    }

    #[test]
    fn dom_bumps_easy_to_very_hard_but_not_hard() {
        assert_eq!(
            parallelization_difficulty(Difficulty::Easy, true),
            Difficulty::VeryHard
        );
        assert_eq!(
            parallelization_difficulty(Difficulty::Hard, true),
            Difficulty::Hard
        );
        assert_eq!(
            parallelization_difficulty(Difficulty::Easy, false),
            Difficulty::Easy
        );
    }

    #[test]
    fn static_branch_density() {
        let (program, _) = {
            let mut p = ceres_parser::parse_program(
                "for (var i = 0; i < 10; i++) {\n\
                   if (i % 2) { f(i); } else { g(i); }\n\
                   h(i && i + 1);\n\
                 }",
            )
            .unwrap();
            let l = ceres_ast::assign_loop_ids(&mut p);
            (p, l)
        };
        let features = static_features(&program);
        let f = &features[&LoopId(1)];
        assert_eq!(f.branches, 2); // if + &&
        assert!(f.calls >= 3);
        assert!(f.body_size > 5);
    }

    #[test]
    fn divergence_rules() {
        let straight = StaticFeatures {
            branches: 0,
            body_size: 40,
            calls: 0,
            recursive_call: false,
        };
        let few = StaticFeatures {
            branches: 2,
            body_size: 40,
            calls: 1,
            recursive_call: false,
        };
        let heavy = StaticFeatures {
            branches: 12,
            body_size: 40,
            calls: 2,
            recursive_call: false,
        };
        assert_eq!(divergence(100.0, false, Some(&straight)), Divergence::None);
        assert_eq!(divergence(100.0, false, Some(&few)), Divergence::Little);
        assert_eq!(divergence(100.0, false, Some(&heavy)), Divergence::Yes);
        // ~1-iteration loops diverge regardless of body shape.
        assert_eq!(divergence(1.1, false, Some(&straight)), Divergence::Yes);
        // Recursion always diverges.
        assert_eq!(divergence(100.0, true, Some(&straight)), Divergence::Yes);
    }

    #[test]
    fn classify_disjoint_stencil_as_easy_parallel() {
        let (_interp, eng) = run_instrumented(
            "var n = 32;\n\
             var grid = new Float32Array(n);\n\
             var out = new Float32Array(n);\n\
             for (var t = 0; t < 4; t++) {\n\
               for (var i = 0; i < n; i++) {\n\
                 out[i] = grid[i] * 0.5;\n\
               }\n\
             }",
            Mode::Dependence,
            1,
        )
        .unwrap();
        let mut program = ceres_parser::parse_program(
            "var n = 32; var grid = new Float32Array(n); var out = new Float32Array(n);\n\
             for (var t = 0; t < 4; t++) { for (var i = 0; i < n; i++) { out[i] = grid[i] * 0.5; } }",
        )
        .unwrap();
        ceres_ast::assign_loop_ids(&mut program);
        let features = static_features(&program);
        let eng = eng.borrow();
        let rows = classify_nests(&eng, &features);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.instances, 1);
        assert_eq!(row.trips.mean(), 4.0);
        assert!((row.pct_loop_time - 100.0).abs() < 1e-9);
        assert_eq!(row.divergence, Divergence::None);
        assert!(!row.dom_access);
        assert!(
            row.dependence_difficulty <= Difficulty::Easy,
            "{:?}",
            row.dependence_difficulty
        );
        assert_eq!(row.parallelization_difficulty, row.dependence_difficulty);
    }

    #[test]
    fn classify_sequential_accumulator_as_hard() {
        let (_interp, eng) = run_instrumented(
            "var acc = { v: 1 };\n\
             for (var i = 0; i < 32; i++) {\n\
               acc.v = acc.v * 1.5 - i;\n\
             }",
            Mode::Dependence,
            1,
        )
        .unwrap();
        let eng = eng.borrow();
        let rows = classify_nests(&eng, &HashMap::new());
        assert_eq!(rows.len(), 1);
        assert!(rows[0].dependence_difficulty >= Difficulty::Hard);
    }

    #[test]
    fn classify_dom_writer_as_very_hard() {
        let (_interp, eng) = run_instrumented(
            "var el = document.getElementById(\"x\");\n\
             for (var i = 0; i < 16; i++) { el.innerHTML = \"v\" + i; }",
            Mode::Dependence,
            1,
        )
        .unwrap();
        let eng = eng.borrow();
        let rows = classify_nests(&eng, &HashMap::new());
        assert_eq!(rows.len(), 1);
        assert!(rows[0].dom_access);
        assert_eq!(rows[0].parallelization_difficulty, Difficulty::VeryHard);
    }
}
