//! Fork-join parallel execution of one `ok` loop nest, with a deterministic
//! merge and byte-identity equivalence checking (ROADMAP item 4).
//!
//! This is the execution half of the auto-parallelization pipeline: the
//! what-if profiler ([`mod@crate::whatif`]) predicts which nest is worth
//! parallelizing and by how much; this module actually runs it on W
//! workers and measures what the prediction claimed.
//!
//! # Execution model
//!
//! The interpreter's values are `Rc`-based and cannot cross threads, so we
//! do not share a heap. Instead every worker is a **replica**: each of the
//! W OS threads builds its own fresh [`Interp`] (same seed, same budgets,
//! same DOM) and runs the *whole* gated program — the transform from
//! [`ceres_instrument::parallelize`] has rewritten the target loop so that
//! every iteration's body executes only on the worker that owns it
//! (round-robin: worker k owns iteration c iff `c % W == k`):
//!
//! ```text
//! __ceres_par_enter(ID);                 // snapshot globals, start clock window
//! for (var i = 0; i < N; i++) {
//!   if (__ceres_par_iter(ID)) { body }   // true on the owner only
//! }
//! __ceres_par_exit(ID);                  // join barrier: merge + resync
//! ```
//!
//! Everything outside gated bodies executes identically on every replica
//! (same seed ⇒ same RNG, virtual clock ⇒ same timer schedule), so the
//! replicas stay in lock-step except for the owned loop bodies — which is
//! exactly the state the join has to reconcile.
//!
//! # The join barrier
//!
//! At `__ceres_par_exit` each worker diffs the reachable global state
//! against its `__ceres_par_enter` snapshot, producing a list of
//! `DiffOp` writes (plain data, `Send`). Workers rendezvous on a
//! [`std::sync::Condvar`] barrier; the last arriver checks the rounds for
//! divergence (identical trip counts, RNG state, canvas pixels, DOM
//! mutation counts, no console growth), checks the write sets for
//! conflicts (two workers writing different values to the same path), and
//! publishes the merged op list. Every worker then applies every worker's
//! ops in worker order — each replica converges to the same merged state.
//!
//! # Virtual-clock resynchronization
//!
//! Replicas must leave the barrier with **identical virtual clocks**, or
//! timers registered after the loop would fire in different orders. Let
//! `t_0..t_{N-1}` be a worker's clock at each gate call and `t_N` at the
//! exit hook, so `d_c = t_{c+1} - t_c` is what iteration `c` cost locally.
//! An un-owned iteration costs a constant `h` (header update + condition +
//! gate call; the runtime verifies all un-owned `d_c` are equal). A
//! worker's *owned extra* is `E_k = Σ_owned (d_c - h)` — the body work it
//! actually did. Exchanging `(Δ_k = t_N - t_enter, E_k)` at the barrier,
//! every worker computes the shared sequential part `S = Δ_k - E_k`
//! (which must agree across workers — checked) and resynchronizes to
//!
//! ```text
//! t_enter + S + Σ_k E_k
//! ```
//!
//! — the tick the loop would have reached on **one** worker. Total ticks
//! are therefore identical to the 1-worker run of the same gated program,
//! and everything downstream (timers, sampling budget, watchdog) behaves
//! identically. The parallelism win is recorded on the side: per instance
//! the critical path is `S + max_k E_k`, so the run banks
//! `Σ_k E_k - max_k E_k` *saved* ticks ([`ParallelRunOutput::par_saved_ticks`]),
//! and the measured speedup is `final_ticks / (final_ticks - saved)`.
//!
//! # Equivalence gate
//!
//! [`equivalence`] compares two runs (canonically: the same gated program
//! on 1 worker and on W workers) for byte-identity of console output,
//! canonical global-state render, canvas checksums, DOM mutation count,
//! final virtual clock, and drained event count. The fleet-wide contract
//! lives in `docs/PARALLELIZE.md`; `scripts/bench_check.sh
//! parallel-equivalence` enforces it in CI.

use ceres_dom::DomHandle;
use ceres_instrument::parallelize::{
    parallelize_loop, ParallelizeError, PAR_ENTER, PAR_EXIT, PAR_ITER,
};
use ceres_interp::{Control, Interp, JsResult, Value};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Objects deeper than this snapshot as [`Snap::Opaque`]; a gated body
/// mutating state this deep is refused at the barrier (the diff reports
/// an unmergeable change) rather than silently dropped.
const SNAP_DEPTH: u32 = 24;

/// How long a worker waits at the join barrier before declaring the run
/// wedged. Generous: peers may be executing large owned bodies.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(60);

/// Specification of one parallel (or 1-worker control) run.
#[derive(Clone)]
pub struct ParallelSpec {
    /// Combined uninstrumented JavaScript (same text `analyze` ran, so
    /// [`ceres_ast::LoopId`]s line up with the analysis reports).
    pub source: String,
    /// Loop to rewrite into fork-join form; `None` runs the program
    /// unmodified (the ungated control used to measure gate overhead).
    pub target: Option<ceres_ast::LoopId>,
    /// Worker count (`>= 1`). `1` is the sequential control arm of the
    /// equivalence gate: same gating, same accounting, no parallelism.
    pub workers: usize,
    /// Interpreter RNG seed (the pipeline uses 2015).
    pub seed: u64,
    /// Event-drain budget, as in [`crate::AnalyzeOptions`].
    pub max_events: usize,
    /// Virtual-clock watchdog budget.
    pub max_ticks: Option<u64>,
    /// Wall-clock backstop.
    pub wall_budget: Option<Duration>,
    /// Post-load interaction driver (plain `fn` so it is `Send`); the
    /// registry workloads expose exactly this shape.
    pub interaction: Option<fn(&mut Interp, &DomHandle) -> JsResult<()>>,
}

/// Why a parallel run failed. Refusals are first-class results: the
/// driver records them per app instead of crashing the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError {
    /// The static transform refused the loop (see
    /// [`ceres_instrument::parallelize`] for the preconditions).
    Parallelize(ParallelizeError),
    /// The source did not parse.
    Parse(String),
    /// A worker's JavaScript execution failed.
    Js(String),
    /// Workers disagreed at a barrier or in final output — the loop was
    /// not actually safe to parallelize (or the clock algebra was
    /// violated); the sequential result stands.
    Diverged(String),
    /// Two workers wrote different values to the same global path.
    WriteConflict(String),
    /// A gated body created or changed state the merge cannot represent
    /// (functions, host objects, structures past the depth cap).
    Unmergeable(String),
    /// A peer worker failed first; this worker was unwound.
    Poisoned(String),
    /// A worker thread panicked or could not be joined.
    Thread(String),
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::Parallelize(e) => write!(f, "refused: {e}"),
            ParallelError::Parse(e) => write!(f, "parse error: {e}"),
            ParallelError::Js(e) => write!(f, "js error: {e}"),
            ParallelError::Diverged(e) => write!(f, "workers diverged: {e}"),
            ParallelError::WriteConflict(e) => write!(f, "write conflict: {e}"),
            ParallelError::Unmergeable(e) => write!(f, "unmergeable state: {e}"),
            ParallelError::Poisoned(e) => write!(f, "aborted by peer failure: {e}"),
            ParallelError::Thread(e) => write!(f, "worker thread failure: {e}"),
        }
    }
}

impl std::error::Error for ParallelError {}

/// Everything observable about one run, for the equivalence gate and the
/// bench report. All fields are plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelRunOutput {
    /// Worker count the run used.
    pub workers: usize,
    /// Captured console output.
    pub console: Vec<String>,
    /// Canonical text render of the reachable (non-builtin) global state.
    pub state_render: String,
    /// SHA-256 of [`ParallelRunOutput::state_render`].
    pub state_digest: String,
    /// Per-canvas pixel checksums, sorted by canvas object id.
    pub canvas: Vec<(u64, u64)>,
    /// Total DOM mutations performed.
    pub dom_mutations: u64,
    /// Final virtual clock (identical across worker counts by the resync
    /// contract).
    pub final_ticks: u64,
    /// Events drained from the queue.
    pub events: u64,
    /// Gated-loop instances executed.
    pub instances: u64,
    /// Total gated iterations across all instances.
    pub par_iterations: u64,
    /// Virtual ticks the fork-join actually removed from the critical
    /// path: `Σ_instances (Σ_k E_k - max_k E_k)`. Zero when `workers == 1`.
    pub par_saved_ticks: u64,
    /// Join barriers crossed (== instances when `workers > 1`).
    pub rounds: u64,
    /// Diff ops merged across all barriers.
    pub merged_ops: u64,
    /// Real wall time of the whole run (not gated on, informational).
    pub wall_ms: f64,
}

impl ParallelRunOutput {
    /// Measured critical-path speedup of this run relative to the same
    /// gated program on one worker: `final / (final - saved)`.
    pub fn measured_speedup(&self) -> f64 {
        let t = self.final_ticks as f64;
        let saved = self.par_saved_ticks as f64;
        if t <= saved || t == 0.0 {
            1.0
        } else {
            t / (t - saved)
        }
    }
}

/// Result of [`equivalence`]: field-by-field comparison of two runs.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// True when every compared field was byte-identical.
    pub identical: bool,
    /// Human-readable description of each differing field.
    pub diffs: Vec<String>,
}

/// Compare two runs for byte-identity of everything a user of the app
/// could observe (plus the virtual clock, which the resync contract pins).
pub fn equivalence(seq: &ParallelRunOutput, par: &ParallelRunOutput) -> EquivalenceReport {
    let mut diffs = Vec::new();
    if seq.console != par.console {
        diffs.push(format!(
            "console differs: {} vs {} lines",
            seq.console.len(),
            par.console.len()
        ));
    }
    if seq.state_render != par.state_render {
        diffs.push(format!(
            "global state differs: digest {} vs {}",
            seq.state_digest, par.state_digest
        ));
    }
    if seq.canvas != par.canvas {
        diffs.push(format!(
            "canvas checksums differ: {:?} vs {:?}",
            seq.canvas, par.canvas
        ));
    }
    if seq.dom_mutations != par.dom_mutations {
        diffs.push(format!(
            "dom mutations differ: {} vs {}",
            seq.dom_mutations, par.dom_mutations
        ));
    }
    if seq.final_ticks != par.final_ticks {
        diffs.push(format!(
            "final virtual clock differs: {} vs {} ticks",
            seq.final_ticks, par.final_ticks
        ));
    }
    if seq.events != par.events {
        diffs.push(format!(
            "events drained differ: {} vs {}",
            seq.events, par.events
        ));
    }
    EquivalenceReport {
        identical: diffs.is_empty(),
        diffs,
    }
}

// ---------------------------------------------------------------------------
// State snapshots and diffs
// ---------------------------------------------------------------------------

/// One path segment into the global state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Seg {
    /// Property of an object (or extra property of an array). The first
    /// segment of every path is the global variable name.
    Key(String),
    /// Array element.
    Idx(usize),
}

impl std::fmt::Display for Seg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Seg::Key(k) => write!(f, ".{k}"),
            Seg::Idx(i) => write!(f, "[{i}]"),
        }
    }
}

/// A scalar a gated body may write; `Num` keeps raw bits so `-0` and NaN
/// compare exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Scalar {
    Undefined,
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
}

impl Scalar {
    fn to_value(&self) -> Value {
        match self {
            Scalar::Undefined => Value::Undefined,
            Scalar::Null => Value::Null,
            Scalar::Bool(b) => Value::Bool(*b),
            Scalar::Num(bits) => Value::Num(f64::from_bits(*bits)),
            Scalar::Str(s) => Value::str(s.as_str()),
        }
    }
}

/// One write a worker performed inside a gated body, as plain `Send` data
/// replayable on any replica. Paths come out of the diff parent-first, at
/// most one op per path.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DiffOp {
    path: Vec<Seg>,
    kind: OpKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum OpKind {
    /// Write a scalar at the path.
    Set(Scalar),
    /// Replace the path with a fresh empty object (children follow).
    MkObj,
    /// Replace the path with a fresh empty array (elements follow).
    MkArr,
    /// Shrink the array at the path to this length.
    Truncate(usize),
    /// Delete the named property of the object at the path.
    DelKey(String),
}

impl DiffOp {
    fn path_key(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for seg in &self.path {
            let _ = write!(s, "{seg}");
        }
        if let OpKind::DelKey(k) = &self.kind {
            let _ = write!(s, ".{k}");
        }
        s
    }
}

/// Snapshot of one reachable value. Structural, id-free: two replicas
/// that computed the same data snapshot equal.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Snap {
    Scalar(Scalar),
    /// Elements by index, plus any non-index own properties.
    Arr(Vec<Snap>, Vec<(String, Snap)>),
    /// Own properties in deterministic insertion order.
    Obj(Vec<(String, Snap)>),
    /// Functions, host-tagged objects, cycles, and depth-capped values:
    /// compared for presence, refused if a body changes them.
    Opaque(&'static str),
}

fn snap_value(v: &Value, depth: u32, visiting: &mut HashSet<u64>) -> Snap {
    match v {
        Value::Undefined => Snap::Scalar(Scalar::Undefined),
        Value::Null => Snap::Scalar(Scalar::Null),
        Value::Bool(b) => Snap::Scalar(Scalar::Bool(*b)),
        Value::Num(n) => Snap::Scalar(Scalar::Num(n.to_bits())),
        Value::Str(s) => Snap::Scalar(Scalar::Str(s.to_string())),
        Value::Object(o) => {
            if o.is_callable() {
                return Snap::Opaque("function");
            }
            if let Some(tag) = o.tag() {
                return Snap::Opaque(tag);
            }
            if depth == 0 {
                return Snap::Opaque("depth-capped");
            }
            if !visiting.insert(o.id()) {
                return Snap::Opaque("cycle");
            }
            let snap = if let Some(len) = o.array_len() {
                let els = (0..len)
                    .map(|i| {
                        snap_value(
                            &o.array_get(i).unwrap_or(Value::Undefined),
                            depth - 1,
                            visiting,
                        )
                    })
                    .collect();
                let props = o
                    .own_keys()
                    .into_iter()
                    .filter(|k| !matches!(k.parse::<usize>(), Ok(i) if i < len))
                    .filter_map(|k| {
                        o.get_own(&k)
                            .map(|v| (k.to_string(), snap_value(&v, depth - 1, visiting)))
                    })
                    .collect();
                Snap::Arr(els, props)
            } else {
                Snap::Obj(
                    o.own_keys()
                        .into_iter()
                        .filter_map(|k| {
                            o.get_own(&k)
                                .map(|v| (k.to_string(), snap_value(&v, depth - 1, visiting)))
                        })
                        .collect(),
                )
            };
            visiting.remove(&o.id());
            snap
        }
    }
}

/// Snapshot every global the *program* created (baseline = builtins, DOM,
/// hooks — recorded before `eval`). Keyed and ordered by name.
fn snapshot_globals(interp: &Interp, baseline: &HashSet<String>) -> BTreeMap<String, Snap> {
    let mut visiting = HashSet::new();
    interp
        .global
        .local_names()
        .into_iter()
        .filter(|n| !baseline.contains(n))
        .map(|n| {
            let v = interp.global.get(&n).unwrap_or(Value::Undefined);
            let s = snap_value(&v, SNAP_DEPTH, &mut visiting);
            (n, s)
        })
        .collect()
}

/// Canonical text render of a snapshot, for digests and diffs in error
/// messages.
fn render_snapshot(snap: &BTreeMap<String, Snap>) -> String {
    fn render(s: &Snap, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match s {
            Snap::Scalar(Scalar::Undefined) => out.push_str("undefined"),
            Snap::Scalar(Scalar::Null) => out.push_str("null"),
            Snap::Scalar(Scalar::Bool(b)) => out.push_str(if *b { "true" } else { "false" }),
            Snap::Scalar(Scalar::Num(bits)) => {
                let f = f64::from_bits(*bits);
                out.push_str(&format!("{f:?}"));
            }
            Snap::Scalar(Scalar::Str(st)) => out.push_str(&format!("{st:?}")),
            Snap::Opaque(tag) => out.push_str(&format!("<{tag}>")),
            Snap::Arr(els, props) => {
                out.push_str("[\n");
                for e in els {
                    out.push_str(&pad);
                    out.push_str("  ");
                    render(e, out, indent + 1);
                    out.push_str(",\n");
                }
                for (k, v) in props {
                    out.push_str(&pad);
                    out.push_str(&format!("  .{k}: "));
                    render(v, out, indent + 1);
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                out.push(']');
            }
            Snap::Obj(props) => {
                out.push_str("{\n");
                for (k, v) in props {
                    out.push_str(&pad);
                    out.push_str(&format!("  {k}: "));
                    render(v, out, indent + 1);
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    for (name, s) in snap {
        out.push_str(name);
        out.push_str(" = ");
        render(s, &mut out, 0);
        out.push('\n');
    }
    out
}

/// Diff a worker's post-instance state against its snapshot. Fails when
/// the body changed something the merge cannot represent.
fn diff_globals(
    old: &BTreeMap<String, Snap>,
    new: &BTreeMap<String, Snap>,
) -> Result<Vec<DiffOp>, String> {
    let mut ops = Vec::new();
    for (name, new_snap) in new {
        let mut path = vec![Seg::Key(name.clone())];
        diff_snap(old.get(name), new_snap, &mut path, &mut ops)?;
    }
    // Globals never disappear (vars are not deletable), so removed roots
    // would mean the walker itself diverged:
    for name in old.keys() {
        if !new.contains_key(name) {
            return Err(format!("global `{name}` vanished during a gated instance"));
        }
    }
    Ok(ops)
}

fn diff_snap(
    old: Option<&Snap>,
    new: &Snap,
    path: &mut Vec<Seg>,
    ops: &mut Vec<DiffOp>,
) -> Result<(), String> {
    if old == Some(new) {
        return Ok(());
    }
    let path_str = || path.iter().map(|s| s.to_string()).collect::<String>();
    match new {
        Snap::Scalar(s) => {
            // A fresh array slot (or fresh root) holding `undefined` is a
            // hole from growth, not a write: skipping it keeps workers'
            // write sets disjoint when they fill alternating slots.
            if old.is_none() && *s == Scalar::Undefined {
                return Ok(());
            }
            ops.push(DiffOp {
                path: path.clone(),
                kind: OpKind::Set(s.clone()),
            });
            Ok(())
        }
        Snap::Opaque(tag) => Err(format!(
            "body created or changed an unmergeable value ({tag}) at {}",
            path_str()
        )),
        Snap::Arr(els, props) => {
            let (old_els, old_props) = match old {
                Some(Snap::Arr(e, p)) => (Some(e), Some(p)),
                _ => {
                    ops.push(DiffOp {
                        path: path.clone(),
                        kind: OpKind::MkArr,
                    });
                    (None, None)
                }
            };
            if let Some(oe) = old_els {
                if els.len() < oe.len() {
                    ops.push(DiffOp {
                        path: path.clone(),
                        kind: OpKind::Truncate(els.len()),
                    });
                }
            }
            for (i, el) in els.iter().enumerate() {
                let old_el = old_els.and_then(|oe| oe.get(i));
                path.push(Seg::Idx(i));
                diff_snap(old_el, el, path, ops)?;
                path.pop();
            }
            diff_props(old_props.map(|p| p.as_slice()), props, path, ops)
        }
        Snap::Obj(props) => {
            let old_props = match old {
                Some(Snap::Obj(p)) => Some(p),
                _ => {
                    ops.push(DiffOp {
                        path: path.clone(),
                        kind: OpKind::MkObj,
                    });
                    None
                }
            };
            diff_props(old_props.map(|p| p.as_slice()), props, path, ops)
        }
    }
}

fn diff_props(
    old: Option<&[(String, Snap)]>,
    new: &[(String, Snap)],
    path: &mut Vec<Seg>,
    ops: &mut Vec<DiffOp>,
) -> Result<(), String> {
    let old_map: HashMap<&str, &Snap> = old
        .map(|o| o.iter().map(|(k, v)| (k.as_str(), v)).collect())
        .unwrap_or_default();
    let new_keys: HashSet<&str> = new.iter().map(|(k, _)| k.as_str()).collect();
    if let Some(old) = old {
        for (k, _) in old {
            if !new_keys.contains(k.as_str()) {
                ops.push(DiffOp {
                    path: path.clone(),
                    kind: OpKind::DelKey(k.clone()),
                });
            }
        }
    }
    for (k, v) in new {
        path.push(Seg::Key(k.clone()));
        diff_snap(old_map.get(k.as_str()).copied(), v, path, ops)?;
        path.pop();
    }
    Ok(())
}

/// Replay one op against this replica's live state.
fn apply_op(interp: &Interp, op: &DiffOp) -> Result<(), String> {
    let Some(Seg::Key(root)) = op.path.first() else {
        return Err("diff op with empty path".to_string());
    };
    // Resolve the container the final segment addresses.
    if op.path.len() == 1 {
        match &op.kind {
            OpKind::Set(s) => {
                if !interp.global.set(root, s.to_value()) {
                    interp.global.declare(root, s.to_value());
                }
                return Ok(());
            }
            OpKind::MkObj => {
                let v = Value::Object(ceres_interp::new_object());
                if !interp.global.set(root, v.clone()) {
                    interp.global.declare(root, v);
                }
                return Ok(());
            }
            OpKind::MkArr => {
                let v = Value::Object(ceres_interp::new_array(Vec::new()));
                if !interp.global.set(root, v.clone()) {
                    interp.global.declare(root, v);
                }
                return Ok(());
            }
            _ => {}
        }
    }
    let mut cur = interp
        .global
        .get(root)
        .ok_or_else(|| format!("merge path root `{root}` missing"))?;
    // For Truncate the path addresses the array itself; everything else
    // addresses a slot inside the value at path[..len-1].
    let walk_to = match op.kind {
        OpKind::Truncate(_) | OpKind::DelKey(_) => op.path.len(),
        _ => op.path.len() - 1,
    };
    for seg in &op.path[1..walk_to] {
        let obj = match &cur {
            Value::Object(o) => o.clone(),
            _ => {
                return Err(format!(
                    "merge path {} traverses a non-object",
                    op.path_key()
                ))
            }
        };
        cur = match seg {
            Seg::Key(k) => obj.get_own(k).unwrap_or(Value::Undefined),
            Seg::Idx(i) => obj.array_get(*i).unwrap_or(Value::Undefined),
        };
    }
    let container = match &cur {
        Value::Object(o) => o.clone(),
        _ => return Err(format!("merge path {} ends in a non-object", op.path_key())),
    };
    match &op.kind {
        OpKind::Truncate(n) => {
            container
                .with_array_mut(|v| v.truncate(*n))
                .ok_or_else(|| format!("truncate target {} is not an array", op.path_key()))?;
        }
        OpKind::DelKey(k) => {
            container.borrow_mut().delete_prop(k);
        }
        OpKind::Set(_) | OpKind::MkObj | OpKind::MkArr => {
            let value = match &op.kind {
                OpKind::Set(s) => s.to_value(),
                OpKind::MkObj => Value::Object(ceres_interp::new_object()),
                _ => Value::Object(ceres_interp::new_array(Vec::new())),
            };
            match op.path.last().unwrap() {
                Seg::Key(k) => container.set_prop(k, value),
                Seg::Idx(i) => {
                    if container.array_len().is_some() {
                        container.array_set(*i, value);
                    } else {
                        container.set_prop(&i.to_string(), value);
                    }
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The join barrier
// ---------------------------------------------------------------------------

/// What one worker brings to a join barrier.
#[derive(Debug, Clone)]
struct WorkerRound {
    enter_ticks: u64,
    exit_ticks: u64,
    iters: u64,
    /// `Σ (d_c - h)` over owned iterations `0..N-2` (the last iteration's
    /// segment runs to the exit hook over a different code path and is
    /// settled at the barrier via `last_cost`). `None` when the worker
    /// owned every gate-to-gate iteration (small trip counts) — then
    /// derived from the peers' shared `S` instead.
    pre_extra: Option<u64>,
    /// Does this worker own iteration `N-1`?
    owns_last: bool,
    /// `t_exit - t_{N-1}`: the exit edge, plus the last body if owned.
    last_cost: u64,
    console_grew: bool,
    rng_state: u64,
    canvas: Vec<(u64, u64)>,
    mutations: u64,
    ops: Vec<DiffOp>,
}

/// What the barrier publishes back to every worker.
struct RoundResult {
    /// Resync target: `enter + S + Σ E_k`.
    target_ticks: u64,
    /// `Σ E_k - max E_k` — ticks removed from the critical path.
    saved: u64,
    /// All workers' ops, in worker order.
    merged: Vec<Vec<DiffOp>>,
}

struct RoundState {
    round: u64,
    arrived: usize,
    slots: Vec<Option<WorkerRound>>,
    published: Option<Arc<RoundResult>>,
    poison: Option<ParallelError>,
}

/// Condvar rendezvous shared by the workers. Any failure poisons it so
/// peers unwind instead of deadlocking.
struct Coordinator {
    workers: usize,
    inner: Mutex<RoundState>,
    cv: Condvar,
}

impl Coordinator {
    fn new(workers: usize) -> Coordinator {
        Coordinator {
            workers,
            inner: Mutex::new(RoundState {
                round: 0,
                arrived: 0,
                slots: vec![None; workers],
                published: None,
                poison: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn poison(&self, err: ParallelError) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.poison.is_none() {
            g.poison = Some(err);
        }
        self.cv.notify_all();
    }

    fn rendezvous(&self, wid: usize, data: WorkerRound) -> Result<Arc<RoundResult>, ParallelError> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = &g.poison {
            return Err(ParallelError::Poisoned(p.to_string()));
        }
        g.slots[wid] = Some(data);
        g.arrived += 1;
        if g.arrived == self.workers {
            let rounds: Vec<WorkerRound> = g.slots.iter_mut().map(|s| s.take().unwrap()).collect();
            g.arrived = 0;
            match merge_round(&rounds) {
                Ok(res) => {
                    let res = Arc::new(res);
                    g.published = Some(res.clone());
                    g.round += 1;
                    self.cv.notify_all();
                    Ok(res)
                }
                Err(e) => {
                    g.poison = Some(e.clone());
                    self.cv.notify_all();
                    Err(e)
                }
            }
        } else {
            let my_round = g.round;
            while g.round == my_round && g.poison.is_none() {
                let (guard, timeout) = self
                    .cv
                    .wait_timeout(g, BARRIER_TIMEOUT)
                    .unwrap_or_else(|e| e.into_inner());
                g = guard;
                if timeout.timed_out() && g.round == my_round && g.poison.is_none() {
                    let err = ParallelError::Diverged(format!(
                        "worker {wid} timed out at the join barrier after {}s",
                        BARRIER_TIMEOUT.as_secs()
                    ));
                    g.poison = Some(err.clone());
                    self.cv.notify_all();
                    return Err(err);
                }
            }
            if let Some(p) = &g.poison {
                return Err(ParallelError::Poisoned(p.to_string()));
            }
            Ok(g.published.clone().expect("published round"))
        }
    }
}

/// The barrier math + divergence and conflict checks, run once per round
/// by the last worker to arrive.
fn merge_round(rounds: &[WorkerRound]) -> Result<RoundResult, ParallelError> {
    let first = &rounds[0];
    for (k, r) in rounds.iter().enumerate() {
        if r.enter_ticks != first.enter_ticks {
            return Err(ParallelError::Diverged(format!(
                "workers entered the instance at different ticks ({} vs {} on worker {k})",
                first.enter_ticks, r.enter_ticks
            )));
        }
        if r.iters != first.iters {
            return Err(ParallelError::Diverged(format!(
                "trip count differs: worker 0 saw {}, worker {k} saw {}",
                first.iters, r.iters
            )));
        }
        if r.console_grew {
            return Err(ParallelError::Diverged(format!(
                "worker {k} produced console output inside a gated body"
            )));
        }
        if r.rng_state != first.rng_state {
            return Err(ParallelError::Diverged(format!(
                "seeded RNG drawn inside a gated body (worker {k} state differs)"
            )));
        }
        if r.canvas != first.canvas {
            return Err(ParallelError::Diverged(format!(
                "canvas pixels differ on worker {k} at the barrier"
            )));
        }
        if r.mutations != first.mutations {
            return Err(ParallelError::Diverged(format!(
                "DOM mutation counts differ on worker {k} at the barrier"
            )));
        }
    }

    // Shared sequential part S = Δ_k - E_k, which every worker with a
    // known E must agree on. The last iteration's segment runs through
    // the loop-exit edge (a different code path than gate-to-gate), so
    // its constant cost `e` is recovered from the workers that do *not*
    // own iteration N-1 and the owner's body extra is `last_cost - e`.
    let (target, saved) = if rounds.len() == 1 {
        (first.exit_ticks, 0)
    } else {
        // Exit-edge constant `e` (meaningful only when the loop iterated).
        let mut exit_edge: Option<u64> = None;
        if first.iters > 0 {
            for (k, r) in rounds.iter().enumerate() {
                if !r.owns_last {
                    match exit_edge {
                        None => exit_edge = Some(r.last_cost),
                        Some(e) if e != r.last_cost => {
                            return Err(ParallelError::Diverged(format!(
                                "exit-edge cost not constant ({e} vs {} ticks on worker {k})",
                                r.last_cost
                            )));
                        }
                        _ => {}
                    }
                }
            }
        }
        // Full owned extra E_k where locally computable.
        let mut extras: Vec<Option<u64>> = Vec::with_capacity(rounds.len());
        for (k, r) in rounds.iter().enumerate() {
            let last_extra = if r.owns_last {
                let e = exit_edge.ok_or_else(|| {
                    ParallelError::Diverged("every worker claims the last iteration".to_string())
                })?;
                Some(r.last_cost.checked_sub(e).ok_or_else(|| {
                    ParallelError::Diverged(format!(
                        "worker {k}'s last-iteration segment undercuts the exit edge"
                    ))
                })?)
            } else {
                Some(0)
            };
            extras.push(match (r.pre_extra, last_extra) {
                (Some(p), Some(l)) => Some(p + l),
                _ => None,
            });
        }
        let mut s: Option<u64> = None;
        for (k, r) in rounds.iter().enumerate() {
            if let Some(e) = extras[k] {
                let delta = r.exit_ticks - r.enter_ticks;
                let sk = delta.checked_sub(e).ok_or_else(|| {
                    ParallelError::Diverged(format!(
                        "worker {k} accounted more owned ticks than its instance took"
                    ))
                })?;
                match s {
                    None => s = Some(sk),
                    Some(prev) if prev != sk => {
                        return Err(ParallelError::Diverged(format!(
                            "sequential part disagrees across workers ({prev} vs {sk} ticks on worker {k}) — un-owned iteration cost was not constant"
                        )));
                    }
                    _ => {}
                }
            }
        }
        let s = s.ok_or_else(|| {
            ParallelError::Diverged(
                "no worker could separate its owned work from the shared header cost".to_string(),
            )
        })?;
        let extras: Vec<u64> = rounds
            .iter()
            .zip(&extras)
            .map(|(r, e)| e.unwrap_or_else(|| (r.exit_ticks - r.enter_ticks).saturating_sub(s)))
            .collect();
        let sum: u64 = extras.iter().sum();
        let max = extras.iter().copied().max().unwrap_or(0);
        (first.enter_ticks + s + sum, sum - max)
    };

    // Write-conflict check: the diff emits at most one op per path, so two
    // workers touching the same path must have written identical ops.
    let mut writes: HashMap<String, (usize, &DiffOp)> = HashMap::new();
    for (k, r) in rounds.iter().enumerate() {
        for op in &r.ops {
            let key = op.path_key();
            if let Some((prev_k, prev_op)) = writes.get(&key) {
                if *prev_op != op {
                    return Err(ParallelError::WriteConflict(format!(
                        "workers {prev_k} and {k} wrote different values to `{key}`"
                    )));
                }
            } else {
                writes.insert(key, (k, op));
            }
        }
    }

    Ok(RoundResult {
        target_ticks: target,
        saved,
        merged: rounds.iter().map(|r| r.ops.clone()).collect(),
    })
}

// ---------------------------------------------------------------------------
// Worker execution
// ---------------------------------------------------------------------------

/// Per-worker mutable state the three hooks share.
struct ParState {
    wid: usize,
    workers: usize,
    baseline: HashSet<String>,
    active: Option<ActiveInstance>,
    instances: u64,
    iterations: u64,
    saved: u64,
    rounds: u64,
    merged_ops: u64,
}

struct ActiveInstance {
    enter_ticks: u64,
    last_gate: u64,
    iter_index: u64,
    /// The constant un-owned iteration cost `h`, once observed.
    header_cost: Option<u64>,
    /// `d_c` for each owned iteration (resolved against `h` at exit).
    owned_costs: Vec<u64>,
    console_len: usize,
    snapshot: BTreeMap<String, Snap>,
}

fn fatal(coord: &Coordinator, err: ParallelError) -> Control {
    coord.poison(err.clone());
    Control::Fatal(format!("__ceres_par: {err}"))
}

/// Install the three `__ceres_par_*` natives on a worker's interpreter.
fn install_par_hooks(
    interp: &mut Interp,
    state: Rc<RefCell<ParState>>,
    coord: Arc<Coordinator>,
    dom: DomHandle,
) {
    {
        let state = state.clone();
        let coord = coord.clone();
        interp.register_native(PAR_ENTER, move |interp, _ctx, _args| {
            let mut st = state.borrow_mut();
            if st.active.is_some() {
                return Err(fatal(
                    &coord,
                    ParallelError::Diverged(
                        "nested parallel instance: __ceres_par_enter while one is active"
                            .to_string(),
                    ),
                ));
            }
            let now = interp.clock.now_ticks();
            let snapshot = snapshot_globals(interp, &st.baseline);
            st.active = Some(ActiveInstance {
                enter_ticks: now,
                last_gate: now,
                iter_index: 0,
                header_cost: None,
                owned_costs: Vec::new(),
                console_len: interp.console.len(),
                snapshot,
            });
            Ok(Value::Undefined)
        });
    }
    {
        let state = state.clone();
        let coord = coord.clone();
        interp.register_native(PAR_ITER, move |interp, _ctx, _args| {
            let mut st = state.borrow_mut();
            let (wid, workers) = (st.wid, st.workers);
            let Some(act) = st.active.as_mut() else {
                return Err(fatal(
                    &coord,
                    ParallelError::Diverged(
                        "__ceres_par_iter outside an active instance".to_string(),
                    ),
                ));
            };
            let now = interp.clock.now_ticks();
            if act.iter_index > 0 {
                let d = now - act.last_gate;
                let idx = act.iter_index - 1;
                if let Err(e) = settle_iteration(act, idx, d, wid, workers) {
                    return Err(fatal(&coord, e));
                }
            }
            act.last_gate = now;
            let owned = (act.iter_index as usize) % workers == wid;
            act.iter_index += 1;
            if owned {
                st.iterations += 1;
            }
            Ok(Value::Bool(owned))
        });
    }
    {
        interp.register_native(PAR_EXIT, move |interp, _ctx, _args| {
            let mut st = state.borrow_mut();
            let (wid, workers) = (st.wid, st.workers);
            let Some(act) = st.active.take() else {
                return Err(fatal(
                    &coord,
                    ParallelError::Diverged(
                        "__ceres_par_exit outside an active instance".to_string(),
                    ),
                ));
            };
            let now = interp.clock.now_ticks();
            // The segment from the last gate to here crosses the loop-exit
            // edge — a different code path than gate-to-gate — so it is
            // settled at the barrier (see `merge_round`), not against `h`.
            let last_cost = now - act.last_gate;
            let owns_last = act.iter_index > 0 && ((act.iter_index - 1) as usize) % workers == wid;
            // E'_k over gate-to-gate iterations: known when the header cost
            // was observed (some iteration was un-owned) or when nothing
            // was owned.
            let pre_extra = if act.owned_costs.is_empty() {
                Some(0)
            } else {
                act.header_cost.map(|h| {
                    act.owned_costs
                        .iter()
                        .map(|d| d.saturating_sub(h))
                        .sum::<u64>()
                })
            };
            let after = snapshot_globals(interp, &st.baseline);
            let ops = match diff_globals(&act.snapshot, &after) {
                Ok(ops) => ops,
                Err(e) => return Err(fatal(&coord, ParallelError::Unmergeable(e))),
            };
            let round = WorkerRound {
                enter_ticks: act.enter_ticks,
                exit_ticks: now,
                iters: act.iter_index,
                pre_extra,
                owns_last,
                last_cost,
                console_grew: interp.console.len() != act.console_len,
                rng_state: interp.rng_state(),
                canvas: canvas_checksums(&dom),
                mutations: dom.mutations(),
                ops,
            };
            let result = match coord.rendezvous(wid, round) {
                Ok(r) => r,
                Err(e) => return Err(fatal(&coord, e)),
            };
            for worker_ops in &result.merged {
                for op in worker_ops {
                    st.merged_ops += 1;
                    if let Err(e) = apply_op(interp, op) {
                        return Err(fatal(&coord, ParallelError::Unmergeable(e)));
                    }
                }
            }
            let now = interp.clock.now_ticks();
            if result.target_ticks < now {
                return Err(fatal(
                    &coord,
                    ParallelError::Diverged(format!(
                        "resync target {} behind worker {wid} clock {now}",
                        result.target_ticks
                    )),
                ));
            }
            interp.clock.tick(result.target_ticks - now);
            st.instances += 1;
            st.rounds += 1;
            st.saved += result.saved;
            Ok(Value::Undefined)
        });
    }
}

/// Account one finished iteration's measured cost `d`.
fn settle_iteration(
    act: &mut ActiveInstance,
    iter: u64,
    d: u64,
    wid: usize,
    workers: usize,
) -> Result<(), ParallelError> {
    let owned = (iter as usize) % workers == wid;
    if owned {
        act.owned_costs.push(d);
    } else {
        match act.header_cost {
            None => act.header_cost = Some(d),
            Some(h) if h != d => {
                return Err(ParallelError::Diverged(format!(
                    "un-owned iteration cost not constant ({h} vs {d} ticks at iteration {iter}) — loop header observes body effects"
                )));
            }
            _ => {}
        }
    }
    Ok(())
}

fn canvas_checksums(dom: &DomHandle) -> Vec<(u64, u64)> {
    let shared = dom.shared.borrow();
    let mut sums: Vec<(u64, u64)> = shared
        .canvases
        .iter()
        .map(|(id, c)| (*id, c.borrow().checksum()))
        .collect();
    sums.sort_unstable();
    sums
}

/// One worker: build a replica, run the gated program to completion, and
/// report everything observable.
fn worker_run(
    spec: &ParallelSpec,
    gated_source: &str,
    wid: usize,
    coord: Arc<Coordinator>,
) -> Result<ParallelRunOutput, ParallelError> {
    let wall_start = std::time::Instant::now();
    let mut interp = Interp::new(spec.seed);
    interp.max_ticks = spec.max_ticks;
    interp.clock.set_wall_cap(spec.wall_budget);
    let dom = ceres_dom::install_dom(&mut interp);
    let state = Rc::new(RefCell::new(ParState {
        wid,
        workers: spec.workers,
        baseline: HashSet::new(),
        active: None,
        instances: 0,
        iterations: 0,
        saved: 0,
        rounds: 0,
        merged_ops: 0,
    }));
    install_par_hooks(&mut interp, state.clone(), coord.clone(), dom.clone());
    // Baseline: every name bound before the program runs is host-provided
    // and excluded from snapshots.
    state.borrow_mut().baseline = interp.global.local_names().into_iter().collect();

    let js = |coord: &Coordinator, c: Control| -> ParallelError {
        let err = match c {
            Control::Fatal(m) if m.starts_with("__ceres_par: ") => {
                // A hook already poisoned with the precise error; keep it.
                return match coord
                    .inner
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .poison
                    .clone()
                {
                    Some(e) => e,
                    None => ParallelError::Js(m),
                };
            }
            Control::Fatal(m) => ParallelError::Js(m),
            Control::Throw(v) => ParallelError::Js(format!("uncaught throw: {}", v.type_of())),
            other => ParallelError::Js(format!("abnormal completion: {other:?}")),
        };
        coord.poison(err.clone());
        err
    };

    if let Err(c) = interp.eval_source(gated_source) {
        return Err(js(&coord, c));
    }
    if let Some(interaction) = spec.interaction {
        if let Err(c) = interaction(&mut interp, &dom) {
            return Err(js(&coord, c));
        }
    }
    if let Err(c) = interp.run_events(spec.max_events) {
        return Err(js(&coord, c));
    }
    if state.borrow().active.is_some() {
        let err = ParallelError::Diverged("run ended inside an open parallel instance".to_string());
        coord.poison(err.clone());
        return Err(err);
    }

    let st = state.borrow();
    let final_snap = snapshot_globals(&interp, &st.baseline);
    let state_render = render_snapshot(&final_snap);
    let state_digest = crate::cache::sha256_hex(state_render.as_bytes());
    Ok(ParallelRunOutput {
        workers: spec.workers,
        console: interp.console.clone(),
        state_render,
        state_digest,
        canvas: canvas_checksums(&dom),
        dom_mutations: dom.mutations(),
        final_ticks: interp.clock.now_ticks(),
        events: interp.events_processed,
        instances: st.instances,
        par_iterations: st.iterations,
        par_saved_ticks: st.saved,
        rounds: st.rounds,
        merged_ops: st.merged_ops,
        wall_ms: wall_start.elapsed().as_secs_f64() * 1e3,
    })
}

/// Run `spec.source` with `spec.target` rewritten into fork-join form on
/// `spec.workers` replicas and return the (verified-identical) output.
///
/// With `target: None` the program runs unmodified on one replica — the
/// ungated control arm for measuring gate overhead.
pub fn run_parallel(spec: &ParallelSpec) -> Result<ParallelRunOutput, ParallelError> {
    assert!(spec.workers >= 1, "run_parallel needs at least one worker");
    let mut program = ceres_parser::parse_program(&spec.source)
        .map_err(|e| ParallelError::Parse(e.to_string()))?;
    ceres_ast::assign_loop_ids(&mut program);
    let gated = match spec.target {
        Some(target) => {
            let rewritten =
                parallelize_loop(&program, target).map_err(ParallelError::Parallelize)?;
            ceres_ast::program_to_source(&rewritten)
        }
        None => ceres_ast::program_to_source(&program),
    };

    let coord = Arc::new(Coordinator::new(spec.workers));
    // Every worker runs in a *fresh* OS thread (including worker 0 and the
    // workers == 1 case) so thread-local id counters start from the same
    // point on every replica and across repeated runs.
    let handles: Vec<_> = (0..spec.workers)
        .map(|wid| {
            let spec = spec.clone();
            let gated = gated.clone();
            let coord = coord.clone();
            std::thread::Builder::new()
                .name(format!("ceres-par-{wid}"))
                .spawn(move || worker_run(&spec, &gated, wid, coord))
                .map_err(|e| ParallelError::Thread(e.to_string()))
        })
        .collect::<Result<_, _>>()?;

    let mut outputs = Vec::with_capacity(spec.workers);
    let mut first_err: Option<ParallelError> = None;
    for (wid, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(out)) => outputs.push(out),
            Ok(Err(e)) => {
                // Prefer the root-cause error over peers' Poisoned echoes.
                let replace = match (&first_err, &e) {
                    (None, _) => true,
                    (Some(ParallelError::Poisoned(_)), other)
                        if !matches!(other, ParallelError::Poisoned(_)) =>
                    {
                        true
                    }
                    _ => false,
                };
                if replace {
                    first_err = Some(e);
                }
            }
            Err(_) => {
                coord.poison(ParallelError::Thread(format!("worker {wid} panicked")));
                if first_err.is_none() {
                    first_err = Some(ParallelError::Thread(format!("worker {wid} panicked")));
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    // Replicas must agree on *everything* observable.
    let first = &outputs[0];
    for (wid, out) in outputs.iter().enumerate().skip(1) {
        let rep = equivalence(first, out);
        if !rep.identical {
            return Err(ParallelError::Diverged(format!(
                "worker {wid} finished with different output than worker 0: {}",
                rep.diffs.join("; ")
            )));
        }
    }
    Ok(outputs.into_iter().next().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(source: &str, target: Option<u32>, workers: usize) -> ParallelSpec {
        ParallelSpec {
            source: source.to_string(),
            target: target.map(ceres_ast::LoopId),
            workers,
            seed: 2015,
            max_events: 1000,
            max_ticks: None,
            wall_budget: Some(Duration::from_secs(30)),
            interaction: None,
        }
    }

    /// Map-style loop with per-iteration scratch in a function activation
    /// (the idiom real apps use; top-level `var` scratch would hoist to
    /// the global scope, where the leftover value is a genuine per-worker
    /// difference the merge refuses). `work`'s inner loop gets id 1, the
    /// parallelized outer loop id 2.
    const MAP_LOOP: &str = "var out = [];\nfunction work(i) { var acc = 0; for (var j = 0; j < 50; j++) { acc = acc + i * j; } return acc; }\nfor (var i = 0; i < 64; i++) { out[i] = work(i); }";
    const MAP_TARGET: u32 = 2;

    #[test]
    fn gated_matches_ungated_semantics() {
        let plain = run_parallel(&spec(MAP_LOOP, None, 1)).unwrap();
        let gated = run_parallel(&spec(MAP_LOOP, Some(MAP_TARGET), 1)).unwrap();
        assert_eq!(plain.state_render, gated.state_render);
        assert_eq!(plain.console, gated.console);
        // Gating costs ticks (the hook calls), so clocks legitimately
        // differ between the plain and gated programs.
        assert!(gated.final_ticks > plain.final_ticks);
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let seq = run_parallel(&spec(MAP_LOOP, Some(MAP_TARGET), 1)).unwrap();
        for workers in [2, 3, 4] {
            let par = run_parallel(&spec(MAP_LOOP, Some(MAP_TARGET), workers)).unwrap();
            let rep = equivalence(&seq, &par);
            assert!(rep.identical, "workers={workers}: {:?}", rep.diffs);
            assert!(par.par_saved_ticks > 0, "workers={workers} saved nothing");
            assert!(par.measured_speedup() > 1.0);
        }
    }

    #[test]
    fn speedup_grows_with_workers() {
        let s2 = run_parallel(&spec(MAP_LOOP, Some(MAP_TARGET), 2)).unwrap();
        let s4 = run_parallel(&spec(MAP_LOOP, Some(MAP_TARGET), 4)).unwrap();
        assert!(
            s4.measured_speedup() > s2.measured_speedup(),
            "2w={} 4w={}",
            s2.measured_speedup(),
            s4.measured_speedup()
        );
    }

    #[test]
    fn cross_iteration_dependence_is_a_write_conflict() {
        // Every iteration writes the same accumulator: workers produce
        // different values for `total` and the merge must refuse.
        let src = "var total = 0;\nfor (var i = 0; i < 16; i++) { total = total + i; }";
        let seq = run_parallel(&spec(src, Some(1), 1)).unwrap();
        assert!(
            seq.state_render.contains("total = 120"),
            "{}",
            seq.state_render
        );
        let err = run_parallel(&spec(src, Some(1), 2)).unwrap_err();
        assert!(
            matches!(err, ParallelError::WriteConflict(_)),
            "expected a write conflict, got: {err}"
        );
    }

    #[test]
    fn impure_loop_is_refused_statically() {
        let src = "for (var i = 0; i < 8; i++) { console.log(i); }";
        let err = run_parallel(&spec(src, Some(1), 2)).unwrap_err();
        assert!(matches!(
            err,
            ParallelError::Parallelize(ParallelizeError::ImpureBody(_))
        ));
    }

    #[test]
    fn object_graph_writes_merge() {
        let src = "var rows = [];\nfor (var i = 0; i < 12; i++) { rows[i] = { idx: i, sq: i * i, tags: [i, i + 1] }; }";
        let seq = run_parallel(&spec(src, Some(1), 1)).unwrap();
        let par = run_parallel(&spec(src, Some(1), 3)).unwrap();
        assert!(equivalence(&seq, &par).identical);
        assert!(par.state_render.contains("sq: 121"), "{}", par.state_render);
    }

    #[test]
    fn timers_after_the_loop_fire_identically() {
        let src = "var out = [];\nfunction work(i) { var a = 0; for (var j = 0; j < 40; j++) { a = a + j; } return a + i; }\nfor (var i = 0; i < 32; i++) { out[i] = work(i); }\nvar late = 0;\nsetTimeout(function () { late = out[31]; }, 5);";
        let seq = run_parallel(&spec(src, Some(2), 1)).unwrap();
        let par = run_parallel(&spec(src, Some(2), 4)).unwrap();
        let rep = equivalence(&seq, &par);
        assert!(rep.identical, "{:?}", rep.diffs);
        assert!(
            par.state_render.contains("late = 811"),
            "{}",
            par.state_render
        );
    }
}
