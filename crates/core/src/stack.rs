//! The characterization-stack machine (paper Sec. 3.3).
//!
//! While dependence instrumentation is active, the engine maintains a stack
//! of the currently open loops; each entry is the paper's triple:
//!
//! > "a loop unique identifier, the current value of a counter of how many
//! > times the entire loop has been seen so far, and the current iteration
//! > of the loop."
//!
//! Bindings and objects are stamped with a copy of this stack at creation;
//! property writes additionally snapshot it per `(object, property)`.
//! Diffing a stamp/snapshot against the current stack yields the `ok` /
//! `dependence` triple lists of the paper's warnings, e.g.
//! `while(line 24) ok ok → for(line 6) ok dependence`.

use ceres_ast::{LoopId, LoopInfo};
use std::collections::HashMap;
use std::rc::Rc;

/// One open loop: `(loop, instance, iteration)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    pub loop_id: LoopId,
    /// How many times this syntactic loop has been *encountered* so far.
    pub instance: u64,
    /// Current iteration within this instance (0 before the first
    /// `__ceres_iter`).
    pub iteration: u64,
}

/// An immutable copy of the stack, cheap to store in side tables.
pub type Stamp = Rc<[StackEntry]>;

/// An empty stamp: "created when no loops were open".
pub fn empty_stamp() -> Stamp {
    Rc::from(Vec::new())
}

/// `ok` / `dependence`, the two values in a warning triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flag {
    Ok,
    Dependence,
}

impl Flag {
    pub fn as_str(&self) -> &'static str {
        match self {
            Flag::Ok => "ok",
            Flag::Dependence => "dependence",
        }
    }
}

/// Per-level characterization of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelChar {
    pub loop_id: LoopId,
    /// Do different runtime *instances* of this loop share the location?
    pub instance: Flag,
    /// Do different *iterations* share it?
    pub iteration: Flag,
}

/// The `→`-separated list of triples in a warning.
pub type Characterization = Vec<LevelChar>;

/// True when any level carries a dependence (the access is problematic).
pub fn is_problematic(c: &Characterization) -> bool {
    c.iter()
        .any(|l| l.instance == Flag::Dependence || l.iteration == Flag::Dependence)
}

/// Render a characterization the way the paper prints them:
/// `while(line 24) ok ok -> for(line 6) ok dependence`.
pub fn render(c: &Characterization, loops: &HashMap<LoopId, LoopInfo>) -> String {
    c.iter()
        .map(|l| {
            let name = loops
                .get(&l.loop_id)
                .map(|i| i.display_name())
                .unwrap_or_else(|| format!("{}", l.loop_id));
            format!("{} {} {}", name, l.instance.as_str(), l.iteration.as_str())
        })
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Characterize a **write** against a creation stamp (warning types (a) and
/// (b)). Walks the current stack outermost-first:
///
/// * level matches stamp (same loop, instance, iteration) → `ok ok`;
/// * same loop+instance, older iteration → `ok dependence`, deeper levels
///   all `dependence dependence`;
/// * different loop/instance → `dependence dependence` from here down;
/// * stamp exhausted at level 0 → the location predates every open loop:
///   `dependence dependence` everywhere;
/// * stamp exhausted deeper → created inside the current iteration of the
///   parent, before this loop opened: `ok dependence`, deeper levels
///   `dependence dependence` (the Fig. 6 `p` case).
///
/// `dependence ok` is unrepresentable, matching the paper ("if all
/// instances share the variable, all iterations also share it").
pub fn characterize_write(stamp: &[StackEntry], current: &[StackEntry]) -> Characterization {
    let mut out = Vec::with_capacity(current.len());
    let mut broken = false;
    for (i, cur) in current.iter().enumerate() {
        if broken {
            out.push(LevelChar {
                loop_id: cur.loop_id,
                instance: Flag::Dependence,
                iteration: Flag::Dependence,
            });
            continue;
        }
        match stamp.get(i) {
            Some(st) if st.loop_id == cur.loop_id && st.instance == cur.instance => {
                if st.iteration == cur.iteration {
                    out.push(LevelChar {
                        loop_id: cur.loop_id,
                        instance: Flag::Ok,
                        iteration: Flag::Ok,
                    });
                } else {
                    out.push(LevelChar {
                        loop_id: cur.loop_id,
                        instance: Flag::Ok,
                        iteration: Flag::Dependence,
                    });
                    broken = true;
                }
            }
            Some(_) => {
                out.push(LevelChar {
                    loop_id: cur.loop_id,
                    instance: Flag::Dependence,
                    iteration: Flag::Dependence,
                });
                broken = true;
            }
            None => {
                if i == 0 {
                    out.push(LevelChar {
                        loop_id: cur.loop_id,
                        instance: Flag::Dependence,
                        iteration: Flag::Dependence,
                    });
                } else {
                    out.push(LevelChar {
                        loop_id: cur.loop_id,
                        instance: Flag::Ok,
                        iteration: Flag::Dependence,
                    });
                }
                broken = true;
            }
        }
    }
    out
}

/// Check a **read** against the last-write snapshot (warning type (c)).
///
/// A flow (read-after-write) dependence exists iff, walking levels matched
/// so far, some level has the *same loop and instance* but a *different
/// iteration* — i.e. the value was written by another iteration of a loop
/// instance we are still inside. Writes from before the loop instance (or
/// from a different instance) are loop inputs, not flow dependencies, and
/// return `None`.
pub fn flow_dependence(
    snapshot: &[StackEntry],
    current: &[StackEntry],
) -> Option<Characterization> {
    let mut out = Vec::with_capacity(current.len());
    for (i, cur) in current.iter().enumerate() {
        match snapshot.get(i) {
            Some(st) if st.loop_id == cur.loop_id && st.instance == cur.instance => {
                if st.iteration == cur.iteration {
                    out.push(LevelChar {
                        loop_id: cur.loop_id,
                        instance: Flag::Ok,
                        iteration: Flag::Ok,
                    });
                } else {
                    // Found the flow dependence level.
                    out.push(LevelChar {
                        loop_id: cur.loop_id,
                        instance: Flag::Ok,
                        iteration: Flag::Dependence,
                    });
                    for deeper in &current[i + 1..] {
                        out.push(LevelChar {
                            loop_id: deeper.loop_id,
                            instance: Flag::Dependence,
                            iteration: Flag::Dependence,
                        });
                    }
                    return Some(out);
                }
            }
            // Written outside this loop instance: an input, not a flow dep.
            _ => return None,
        }
    }
    // All levels matched: the write happened in this very iteration.
    None
}

// ----------------------------------------------------------------------
// Compact characterizations (per-loop bitsets)
// ----------------------------------------------------------------------

/// Deepest loop stack the bitset representation covers. The engine falls
/// back to the `Vec`-based functions beyond this (recursion can re-enter
/// the same loop and grow the stack arbitrarily); in practice every
/// workload stays far below it.
pub const CHAR_BITS_MAX_DEPTH: usize = 64;

/// A characterization packed into per-loop bitsets: bit `i` of
/// `inst`/`iter` is set when level `i` (outermost-first) carries an
/// instance/iteration dependence. The loop ids are implicit — always the
/// ids of the current stack the access was characterized against — so a
/// whole characterization is 20 `Copy` bytes and "is this problematic?"
/// is one OR. Only when a *new* warning is materialized does the engine
/// [`CharBits::expand`] this back into the rendered [`Characterization`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharBits {
    /// Number of levels (= depth of the current stack at the access).
    pub depth: u32,
    /// Instance-dependence bits, bit `i` = level `i`.
    pub inst: u64,
    /// Iteration-dependence bits, bit `i` = level `i`.
    pub iter: u64,
}

impl CharBits {
    /// True when any level carries a dependence (cf. [`is_problematic`]).
    #[inline]
    pub fn problematic(self) -> bool {
        (self.inst | self.iter) != 0
    }

    /// Materialize the full characterization, taking loop ids from the
    /// stack the access was characterized against.
    pub fn expand(self, current: &[StackEntry]) -> Characterization {
        current
            .iter()
            .take(self.depth as usize)
            .enumerate()
            .map(|(i, e)| LevelChar {
                loop_id: e.loop_id,
                instance: if self.inst >> i & 1 == 1 {
                    Flag::Dependence
                } else {
                    Flag::Ok
                },
                iteration: if self.iter >> i & 1 == 1 {
                    Flag::Dependence
                } else {
                    Flag::Ok
                },
            })
            .collect()
    }

    /// Does an already-materialized characterization equal this one (same
    /// loop ids, same flags)? Used for warning dedup without allocating.
    pub fn matches(self, c: &Characterization, current: &[StackEntry]) -> bool {
        if c.len() != self.depth as usize {
            return false;
        }
        c.iter().enumerate().all(|(i, l)| {
            l.loop_id == current[i].loop_id
                && (l.instance == Flag::Dependence) == (self.inst >> i & 1 == 1)
                && (l.iteration == Flag::Dependence) == (self.iter >> i & 1 == 1)
        })
    }
}

/// Bitset variant of [`characterize_write`] — identical classification,
/// no allocation. Caller must ensure `current.len() <= CHAR_BITS_MAX_DEPTH`.
pub fn characterize_write_bits(stamp: &[StackEntry], current: &[StackEntry]) -> CharBits {
    debug_assert!(current.len() <= CHAR_BITS_MAX_DEPTH);
    let mut bits = CharBits {
        depth: current.len() as u32,
        inst: 0,
        iter: 0,
    };
    let mut broken = false;
    for (i, cur) in current.iter().enumerate() {
        if broken {
            bits.inst |= 1 << i;
            bits.iter |= 1 << i;
            continue;
        }
        match stamp.get(i) {
            Some(st) if st.loop_id == cur.loop_id && st.instance == cur.instance => {
                if st.iteration != cur.iteration {
                    bits.iter |= 1 << i;
                    broken = true;
                }
            }
            Some(_) => {
                bits.inst |= 1 << i;
                bits.iter |= 1 << i;
                broken = true;
            }
            None => {
                if i == 0 {
                    bits.inst |= 1 << i;
                }
                bits.iter |= 1 << i;
                broken = true;
            }
        }
    }
    bits
}

/// Bitset variant of [`flow_dependence`] — identical classification, no
/// allocation. Caller must ensure `current.len() <= CHAR_BITS_MAX_DEPTH`.
pub fn flow_dependence_bits(snapshot: &[StackEntry], current: &[StackEntry]) -> Option<CharBits> {
    debug_assert!(current.len() <= CHAR_BITS_MAX_DEPTH);
    for (i, cur) in current.iter().enumerate() {
        match snapshot.get(i) {
            Some(st) if st.loop_id == cur.loop_id && st.instance == cur.instance => {
                if st.iteration != cur.iteration {
                    let mut bits = CharBits {
                        depth: current.len() as u32,
                        inst: 0,
                        iter: 1 << i,
                    };
                    for deeper in i + 1..current.len() {
                        bits.inst |= 1 << deeper;
                        bits.iter |= 1 << deeper;
                    }
                    return Some(bits);
                }
            }
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_ast::Span;

    fn entry(id: u32, inst: u64, iter: u64) -> StackEntry {
        StackEntry {
            loop_id: LoopId(id),
            instance: inst,
            iteration: iter,
        }
    }

    fn loop_table() -> HashMap<LoopId, LoopInfo> {
        let mut m = HashMap::new();
        m.insert(
            LoopId(1),
            LoopInfo {
                id: LoopId(1),
                kind: "while",
                span: Span::new(0, 0, 24),
            },
        );
        m.insert(
            LoopId(2),
            LoopInfo {
                id: LoopId(2),
                kind: "for",
                span: Span::new(0, 0, 6),
            },
        );
        m
    }

    #[test]
    fn fig6_variable_p_characterization() {
        // p declared at step() entry: stamp = [while(i1, j)];
        // write inside the for: current = [while(i1, j), for(i2, k)].
        let stamp = [entry(1, 1, 3)];
        let current = [entry(1, 1, 3), entry(2, 4, 7)];
        let c = characterize_write(&stamp, &current);
        assert_eq!(
            c,
            vec![
                LevelChar {
                    loop_id: LoopId(1),
                    instance: Flag::Ok,
                    iteration: Flag::Ok
                },
                LevelChar {
                    loop_id: LoopId(2),
                    instance: Flag::Ok,
                    iteration: Flag::Dependence
                },
            ]
        );
        assert!(is_problematic(&c));
        assert_eq!(
            render(&c, &loop_table()),
            "while(line 24) ok ok -> for(line 6) ok dependence"
        );
    }

    #[test]
    fn private_access_is_clean() {
        // Created and written in the same iteration of every open loop.
        let stamp = [entry(1, 1, 3), entry(2, 4, 7)];
        let current = [entry(1, 1, 3), entry(2, 4, 7)];
        let c = characterize_write(&stamp, &current);
        assert!(!is_problematic(&c));
        assert!(c
            .iter()
            .all(|l| l.instance == Flag::Ok && l.iteration == Flag::Ok));
    }

    #[test]
    fn global_variable_is_fully_shared() {
        // Created before any loop: stamp empty.
        let current = [entry(1, 1, 3), entry(2, 4, 7)];
        let c = characterize_write(&[], &current);
        assert_eq!(c[0].instance, Flag::Dependence);
        assert_eq!(c[0].iteration, Flag::Dependence);
        assert_eq!(c[1].instance, Flag::Dependence);
    }

    #[test]
    fn older_iteration_of_outer_loop() {
        // Created in an earlier iteration of the while.
        let stamp = [entry(1, 1, 2)];
        let current = [entry(1, 1, 5), entry(2, 4, 0)];
        let c = characterize_write(&stamp, &current);
        assert_eq!(c[0].instance, Flag::Ok);
        assert_eq!(c[0].iteration, Flag::Dependence);
        assert_eq!(c[1].instance, Flag::Dependence);
        assert_eq!(c[1].iteration, Flag::Dependence);
    }

    #[test]
    fn different_instance_breaks_everything() {
        let stamp = [entry(1, 1, 2)];
        let current = [entry(1, 2, 0)];
        let c = characterize_write(&stamp, &current);
        assert_eq!(c[0].instance, Flag::Dependence);
    }

    #[test]
    fn no_dependence_ok_is_ever_produced() {
        // Property of the algorithm: instance=dependence ⟹ iteration=dependence.
        let cases: Vec<(Vec<StackEntry>, Vec<StackEntry>)> = vec![
            (vec![], vec![entry(1, 1, 0)]),
            (vec![entry(1, 1, 0)], vec![entry(1, 1, 4), entry(2, 2, 2)]),
            (vec![entry(9, 1, 0)], vec![entry(1, 1, 0), entry(2, 1, 1)]),
            (
                vec![entry(1, 2, 0)],
                vec![entry(1, 3, 5), entry(2, 9, 2), entry(3, 1, 0)],
            ),
        ];
        for (stamp, current) in cases {
            for l in characterize_write(&stamp, &current) {
                assert!(
                    !(l.instance == Flag::Dependence && l.iteration == Flag::Ok),
                    "invalid 'dependence ok' produced"
                );
            }
        }
    }

    #[test]
    fn fig6_flow_read_on_com() {
        // com.x written in iteration k-1, read in iteration k, same
        // instances throughout.
        let snapshot = [entry(1, 1, 3), entry(2, 4, 6)];
        let current = [entry(1, 1, 3), entry(2, 4, 7)];
        let c = flow_dependence(&snapshot, &current).expect("flow dep");
        assert_eq!(
            render(&c, &loop_table()),
            "while(line 24) ok ok -> for(line 6) ok dependence"
        );
    }

    #[test]
    fn reads_of_loop_inputs_are_not_flow_deps() {
        // Written before the while started.
        assert!(flow_dependence(&[], &[entry(1, 1, 3), entry(2, 4, 7)]).is_none());
        // Written in a previous instance of the for (different instance).
        let snapshot = [entry(1, 1, 2), entry(2, 3, 9)];
        let current = [entry(1, 1, 3), entry(2, 4, 0)];
        // while iteration differs → flow dep at the while level (a true
        // cross-step dependence).
        let c = flow_dependence(&snapshot, &current).expect("cross-while flow dep");
        assert_eq!(c[0].iteration, Flag::Dependence);
        assert_eq!(c[1].instance, Flag::Dependence);
    }

    #[test]
    fn same_iteration_write_then_read_is_clean() {
        let s = [entry(1, 1, 3), entry(2, 4, 7)];
        assert!(flow_dependence(&s, &s).is_none());
    }

    #[test]
    fn write_from_inner_loop_read_outside_is_clean() {
        // Written deeper (inner loop), read after the inner loop closed but
        // in the same outer iteration.
        let snapshot = [entry(1, 1, 3), entry(2, 4, 7)];
        let current = [entry(1, 1, 3)];
        assert!(flow_dependence(&snapshot, &current).is_none());
    }

    /// Stamp/current shapes covering every branch of both algorithms.
    fn bit_cases() -> Vec<(Vec<StackEntry>, Vec<StackEntry>)> {
        vec![
            (vec![], vec![]),
            (vec![], vec![entry(1, 1, 0)]),
            (vec![], vec![entry(1, 1, 3), entry(2, 4, 7)]),
            (vec![entry(1, 1, 3)], vec![entry(1, 1, 3), entry(2, 4, 7)]),
            (
                vec![entry(1, 1, 3), entry(2, 4, 7)],
                vec![entry(1, 1, 3), entry(2, 4, 7)],
            ),
            (vec![entry(1, 1, 2)], vec![entry(1, 1, 5), entry(2, 4, 0)]),
            (vec![entry(1, 1, 2)], vec![entry(1, 2, 0)]),
            (vec![entry(9, 1, 0)], vec![entry(1, 1, 0), entry(2, 1, 1)]),
            (
                vec![entry(1, 1, 3), entry(2, 4, 6)],
                vec![entry(1, 1, 3), entry(2, 4, 7)],
            ),
            (
                vec![entry(1, 1, 2), entry(2, 3, 9)],
                vec![entry(1, 1, 3), entry(2, 4, 0)],
            ),
            (vec![entry(1, 1, 3), entry(2, 4, 7)], vec![entry(1, 1, 3)]),
        ]
    }

    #[test]
    fn char_bits_mirror_characterize_write() {
        for (stamp, current) in bit_cases() {
            let full = characterize_write(&stamp, &current);
            let bits = characterize_write_bits(&stamp, &current);
            assert_eq!(bits.expand(&current), full, "{stamp:?} vs {current:?}");
            assert_eq!(bits.problematic(), is_problematic(&full));
            assert!(bits.matches(&full, &current));
        }
    }

    #[test]
    fn flow_bits_mirror_flow_dependence() {
        for (snapshot, current) in bit_cases() {
            let full = flow_dependence(&snapshot, &current);
            let bits = flow_dependence_bits(&snapshot, &current);
            match (full, bits) {
                (None, None) => {}
                (Some(f), Some(b)) => {
                    assert_eq!(b.expand(&current), f, "{snapshot:?} vs {current:?}");
                    assert!(b.problematic());
                }
                (f, b) => panic!("diverged on {snapshot:?} vs {current:?}: {f:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn char_bits_detect_mismatched_materializations() {
        let stamp = [entry(1, 1, 3)];
        let current = [entry(1, 1, 3), entry(2, 4, 7)];
        let bits = characterize_write_bits(&stamp, &current);
        let mut other = characterize_write(&stamp, &current);
        other[1].iteration = Flag::Ok;
        assert!(!bits.matches(&other, &current));
        let shallow = vec![other[0]];
        assert!(!bits.matches(&shallow, &current));
    }
}
