//! Welford's online algorithm for mean and variance.
//!
//! The paper (Sec. 3.2) computes, per syntactic loop, "the total, average,
//! and variance of its running time, and the total, average, and variance of
//! its trip count", with "variance … updated using Welford's online
//! algorithm \[36\]" — B. Welford, *Technometrics* 1962. This is that
//! accumulator.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    /// Sum of squares of differences from the current mean.
    m2: f64,
    total: f64,
}

impl Welford {
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.total += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all observations.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ), 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m.abs()
        }
    }

    /// Merge another accumulator into this one (Chan et al.'s parallel
    /// combination) — lets per-thread statistics be combined without a
    /// shared accumulator, the same trick the native kernels use for their
    /// reductions.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.total += other.total;
    }

    /// Render as `avg±sd` the way Table 3 does (`31±23`, `168±147`), with
    /// the `±sd` part dropped when the deviation rounds to zero.
    pub fn display_pm(&self) -> String {
        let mean = self.mean();
        let sd = self.stddev();
        let fmt = |x: f64| {
            if x >= 10_000.0 {
                format!("{:.0}k", x / 1000.0)
            } else if x >= 100.0 || x.fract() == 0.0 {
                format!("{x:.0}")
            } else {
                format!("{x:.1}")
            }
        };
        if sd < 0.05 * mean.abs().max(1.0) {
            fmt(mean)
        } else {
            format!("{}\u{b1}{}", fmt(mean), fmt(sd))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(data: &[f64]) -> (f64, f64) {
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn matches_two_pass_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.add(x);
        }
        let (mean, var) = naive(&data);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), 8);
        assert_eq!(w.total(), 40.0);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // The classic catastrophic-cancellation case for the naive formula.
        let mut w = Welford::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            w.add(x);
        }
        assert!((w.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!((w.variance() - 22.5).abs() < 1e-6);
    }

    #[test]
    fn display_formats_like_table3() {
        let mut w = Welford::new();
        for x in [10.0, 50.0, 33.0] {
            w.add(x);
        }
        let s = w.display_pm();
        assert!(s.contains('\u{b1}'), "{s}");
        // Constant data → no ±.
        let mut w = Welford::new();
        for _ in 0..5 {
            w.add(120.0);
        }
        assert_eq!(w.display_pm(), "120");
        // Large values get the `k` suffix.
        let mut w = Welford::new();
        w.add(90_000.0);
        assert_eq!(w.display_pm(), "90k");
    }
}
