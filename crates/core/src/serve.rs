//! `jsceresd`: the persistent analysis service.
//!
//! Five PRs in, the daemon was a *single process* with a bounded
//! in-memory queue: a segfault-class failure killed it, a burst past the
//! queue bound rejected jobs, and a restart lost the entire result
//! cache. This module is the serving core of the multi-process redesign
//! (see `docs/OPERATIONS.md` for the operator's view):
//!
//! 1. **A stable, versioned wire surface.** Clients send one
//!    line-delimited JSON [`AnalysisRequest`] per request over TCP. A
//!    default (one-shot) request is answered with a single JSON
//!    envelope rendered at [`ONESHOT_SCHEMA_VERSION`] — byte-identical
//!    to every prior PR and golden-pinned. A `stream:true` request is
//!    answered with the schema-2 multi-frame protocol
//!    ([`crate::fleet::API_SCHEMA_VERSION`]): `accepted`, per-phase
//!    `phase` frames as each pipeline stage completes, an early
//!    `partial` timing frame, `notice` frames for queue events, and a
//!    terminal `result`/`error` frame whose payload fragment is the
//!    *same bytes* the one-shot envelope carries. All frames are built
//!    by one [`render_frame`] (the one-shot envelope is the degenerate
//!    single-`result` render). The request fields map 1:1 onto the
//!    [`AnalyzeOptions`] builder, so the daemon, `jsceres`, and
//!    `repro fleet` all speak the same options vocabulary.
//! 2. **A sharded, persistent, content-addressed result cache.** Each
//!    analyze request is keyed by [`crate::cache::CacheKey`]; keys route
//!    to one of N [`ShardedCache`] shards (per-shard locks, per-shard
//!    FIFO eviction), and — with a cache directory configured — every
//!    insert is written through to a shard file and reloaded on the next
//!    start, so a restarted daemon serves warm hits **byte-identically**
//!    with zero new interpreter ticks.
//! 3. **Process-isolated execution.** With a
//!    [`crate::supervisor::WorkerSpec`] configured (the `jsceresd`
//!    default), each worker thread owns one worker *process*
//!    (`jsceresd --worker`); a crash costs one job, the supervisor
//!    restarts the worker with bounded backoff, and the daemon keeps
//!    serving. Without a spec (library/test default) jobs run on
//!    in-process threads exactly as before.
//! 4. **Spill-to-disk admission.** The in-memory ring holds up to
//!    `queue_capacity` jobs; overflow is appended to a crash-safe
//!    [`SpillQueue`] segment file and drained strictly FIFO behind the
//!    ring, so bursts queue on disk instead of being rejected — and a
//!    streaming client is told by an immediate `notice` frame the
//!    moment its job is parked on disk, not only at drain time.
//! 5. **Cross-job phase pipelining.** Execution is split into two
//!    stage pools (Brodu et al., arXiv:1512.07067 — the event loop
//!    re-architected as a pipeline): a *parse stage* pulls admitted
//!    jobs, runs the parse+rewrite front half
//!    ([`crate::pipeline::prepare_source`]) and emits the early phase
//!    frames, then hands off to the *interp stage* (the worker slots,
//!    threads or processes). Stages of different jobs overlap — while
//!    one job holds an interp slot mid-dependence-analysis, the next
//!    job's parse runs on a parse thread, and an unparseable job is
//!    rejected without ever occupying an interp slot. Spilled jobs
//!    replay through the same two stages.
//!
//! Shutdown is a graceful drain: a `shutdown` op (or
//! [`ServerHandle::shutdown`], or SIGTERM via
//! [`ServerHandle::request_drain`]) stops the accept loop and rejects
//! new analyze requests; jobs already *running* complete and answer
//! their clients, while the queued tail is flushed to the spill file —
//! never silently dropped — and those clients get an explicit
//! `draining` response telling them to retry after restart.
//!
//! Responses always use the canonical (deterministic) view of reports
//! and metrics: a content-addressed cache makes wall-clock noise
//! observable (a warm hit would otherwise return some *other* run's
//! timings), so the served artifact is defined to be the part that is a
//! pure function of the request. See `docs/SERVING.md` for the protocol
//! reference and `docs/OPERATIONS.md` for deployment.

#![deny(missing_docs)]

use crate::cache::{CacheKey, ShardedCache};
use crate::fleet::{
    supervise, AppOutcome, AppReport, FleetJob, FleetPolicy, JobError, JobWork, API_SCHEMA_VERSION,
};
use crate::obs::{FleetMetrics, ServeCounters};
use crate::pipeline::{analyze, AnalyzeOptions, Document, WebServer};
use crate::spill::SpillQueue;
use crate::supervisor::{SlotOutcome, WorkerSlot, WorkerSpec};
use ceres_instrument::Mode;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Tick budget for an injected hang when the policy does not set one
/// (mirrors the fleet harness): long enough for any real request, short
/// enough that the watchdog trips quickly.
const HANG_FALLBACK_TICKS: u64 = 2_000_000;

/// How often an idle connection handler wakes up to check for drain.
const READ_POLL: Duration = Duration::from_millis(200);

/// Version stamp of the `stats` op payload (see `docs/METRICS.md`).
/// 2 added the multi-process fields (spill, shards, worker restarts);
/// 3 added the streaming-pipeline fields: `exec_depth` in the payload
/// and `streams`/`frames_streamed`/`spill_notices` in the counters.
pub const SERVE_STATS_SCHEMA: u32 = 3;

/// Schema stamp of the legacy one-shot envelope — and of every
/// non-analyze op (`ping`, `stats`, `shutdown`), which are one-shot by
/// nature. A request without `stream:true` is answered exactly as
/// before the streaming protocol existed: one `"schema":1` line,
/// byte-identical and golden-pinned. [`API_SCHEMA_VERSION`] (2) is the
/// multi-frame streaming protocol.
pub const ONESHOT_SCHEMA_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

/// One request line. Every field is optional on the wire; `op` defaults
/// to `"analyze"` and the analysis fields default per [`ServeConfig`].
/// The analysis fields mirror the [`AnalyzeOptions`] builder one-to-one.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalysisRequest {
    /// `"analyze"` (default), `"ping"`, `"stats"`, or `"shutdown"`.
    pub op: Option<String>,
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<String>,
    /// Registry workload slug to analyze (mutually exclusive with
    /// `source`).
    pub app: Option<String>,
    /// Raw JavaScript (or HTML with inline scripts) to analyze.
    pub source: Option<String>,
    /// Instrumentation mode: `lightweight`, `loop-profile`, `dependence`.
    pub mode: Option<String>,
    /// Virtual-clock seed.
    pub seed: Option<u64>,
    /// Dependence-mode focus loop id.
    pub focus: Option<u32>,
    /// Event-processing cap.
    pub max_events: Option<u64>,
    /// Deterministic watchdog tick budget.
    pub max_ticks: Option<u64>,
    /// Registry workload scale factor.
    pub scale: Option<u32>,
    /// Fault to inject into this request's job (`panic`, `hang`, `error`,
    /// or — process-worker backend only — `crash`), exercising the
    /// supervisor; injected requests are never cached.
    pub inject: Option<String>,
    /// `true` ⇒ answer with the schema-2 multi-frame stream
    /// (`accepted`/`phase`/`partial`/`notice` frames before the
    /// terminal `result`/`error`). Absent or `false` ⇒ the schema-1
    /// one-shot envelope, byte-identical to pre-streaming servers.
    pub stream: Option<bool>,
}

/// Parse a mode name as accepted on the CLI and the wire. The single
/// source of truth — the shared bin args module delegates here.
pub fn parse_mode(s: &str) -> Result<Mode, String> {
    match s {
        "light" | "lightweight" | "lw" => Ok(Mode::Lightweight),
        "loop" | "loops" | "profile" | "loop-profile" => Ok(Mode::LoopProfile),
        "dep" | "deps" | "dependence" => Ok(Mode::Dependence),
        other => Err(format!(
            "unknown mode `{other}` (want lightweight|loop-profile|dependence)"
        )),
    }
}

/// The canonical wire spelling of a mode (parseable by [`parse_mode`]).
pub fn mode_wire_name(mode: Mode) -> &'static str {
    match mode {
        Mode::Lightweight => "lightweight",
        Mode::LoopProfile => "loop-profile",
        Mode::Dependence => "dependence",
    }
}

/// Minimal JSON string escaping for hand-assembled envelope fields.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a request as a self-contained single-line job spec: the
/// analysis options are written out *explicitly* from the resolved
/// `opts` (not the raw request), so a worker process — or a replay after
/// restart — computes the identical [`CacheKey`] regardless of its own
/// defaults. This is both the spill-queue payload and the
/// supervisor→worker job line. Only fields that are present are
/// emitted, so the output round-trips through the ordinary
/// [`AnalysisRequest`] parser.
pub fn request_wire_json(req: &AnalysisRequest, opts: &AnalyzeOptions) -> String {
    let mut parts = Vec::with_capacity(8);
    if let Some(app) = &req.app {
        parts.push(format!("\"app\":\"{}\"", json_escape(app)));
    }
    if let Some(src) = &req.source {
        parts.push(format!("\"source\":\"{}\"", json_escape(src)));
    }
    parts.push(format!("\"mode\":\"{}\"", mode_wire_name(opts.mode)));
    parts.push(format!("\"seed\":{}", opts.seed));
    if let Some(f) = opts.focus {
        parts.push(format!("\"focus\":{}", f.0));
    }
    parts.push(format!("\"max_events\":{}", opts.max_events));
    if let Some(t) = opts.max_ticks {
        parts.push(format!("\"max_ticks\":{t}"));
    }
    if let Some(s) = req.scale {
        parts.push(format!("\"scale\":{s}"));
    }
    if let Some(i) = &req.inject {
        parts.push(format!("\"inject\":\"{}\"", json_escape(i)));
    }
    if req.stream == Some(true) {
        // Carried so a worker *process* knows to emit frame lines on its
        // stdout pipe; a replayed spill job with no waiting client keeps
        // the flag but its frames are discarded supervisor-side.
        parts.push("\"stream\":true".to_string());
    }
    format!("{{{}}}", parts.join(","))
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// One unit of an analyze response. A schema-2 streaming response is a
/// sequence of frames ending in exactly one terminal frame; a schema-1
/// one-shot response is the degenerate case — a single terminal frame
/// rendered as the legacy envelope. Every response line on the wire
/// (both backends, both schemas) goes through [`render_frame`], so
/// there is exactly one place envelope bytes are assembled.
#[derive(Debug, Clone)]
pub enum Frame {
    /// The job passed admission and is queued; `queue_depth` is its
    /// position-ish depth at admission (ring length, plus spill depth
    /// beyond capacity for spilled jobs). A warm cache hit skips
    /// straight to `result` — `accepted` always implies real work.
    Accepted {
        /// Queue depth observed at admission.
        queue_depth: u64,
    },
    /// A pipeline phase of this job completed. Tick fields are virtual
    /// clock readings and therefore deterministic; wall-clock data is
    /// deliberately not carried (it would make the stream golden
    /// unpinnable — same rule as the canonical report).
    Phase {
        /// Phase name, one of [`crate::obs::PHASES`].
        phase: String,
        /// Virtual clock at phase start, ticks.
        start_ticks: u64,
        /// Virtual clock at phase end, ticks.
        end_ticks: u64,
    },
    /// An early per-app result: the Table-2 timing row, known the
    /// moment interpretation ends, long before nest classification and
    /// report rendering. The fragment is a pre-rendered JSON object
    /// body, deterministic.
    Partial {
        /// Pre-rendered JSON object body (no surrounding braces).
        fragment: String,
    },
    /// Out-of-band queue event: the job spilled to disk, or the server
    /// is draining. Never terminal, never cached.
    Notice {
        /// Human-readable event description.
        notice: String,
    },
    /// Terminal: the job ran to a successful supervised outcome (or was
    /// a warm cache hit). The fragment is exactly what the cache
    /// stores, so a warm hit is byte-identical in every result field;
    /// only `id`, `seq`, and `cached` — which describe the *request* —
    /// may differ.
    Result {
        /// Whether the job produced a report.
        ok: bool,
        /// Whether the fragment came from the result cache.
        cached: bool,
        /// Result payload fragment (JSON object body).
        fragment: String,
    },
    /// Terminal: the request failed — bad request, queue full,
    /// draining, parse rejection, or a job that ran and did not produce
    /// a report (panicked / hung / crashed worker).
    Error {
        /// Error payload fragment (JSON object body).
        fragment: String,
    },
}

impl Frame {
    /// Terminal frames end the response; every request gets exactly one.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Frame::Result { .. } | Frame::Error { .. })
    }

    /// The wire `type` tag of a schema-2 frame.
    pub fn type_name(&self) -> &'static str {
        match self {
            Frame::Accepted { .. } => "accepted",
            Frame::Phase { .. } => "phase",
            Frame::Partial { .. } => "partial",
            Frame::Notice { .. } => "notice",
            Frame::Result { .. } => "result",
            Frame::Error { .. } => "error",
        }
    }
}

/// Render one frame as one wire line (sans newline). Schema 1 renders
/// only terminal frames — no `type`, no `seq`, the legacy envelope
/// byte-for-byte. Schema 2 stamps every frame with its type and the
/// per-response sequence number.
pub fn render_frame(schema: u32, id: &str, seq: u64, frame: &Frame) -> String {
    if schema == ONESHOT_SCHEMA_VERSION {
        let (ok, cached, fragment) = match frame {
            Frame::Result {
                ok,
                cached,
                fragment,
            } => (*ok, *cached, fragment.clone()),
            Frame::Error { fragment } => (false, false, fragment.clone()),
            // Non-terminal frames have no schema-1 form; the one-shot
            // path never writes them. A defensive render keeps this
            // function total.
            other => (
                false,
                false,
                error_fragment(&format!(
                    "internal: `{}` frame in a one-shot response",
                    other.type_name()
                )),
            ),
        };
        return format!(
            "{{\"schema\":{schema},\"id\":\"{}\",\"ok\":{ok},\"cached\":{cached},{fragment}}}",
            json_escape(id)
        );
    }
    let body = match frame {
        Frame::Accepted { queue_depth } => format!("\"queue_depth\":{queue_depth}"),
        Frame::Phase {
            phase,
            start_ticks,
            end_ticks,
        } => format!(
            "\"phase\":\"{}\",\"start_ticks\":{start_ticks},\"end_ticks\":{end_ticks}",
            json_escape(phase)
        ),
        Frame::Partial { fragment } => fragment.clone(),
        Frame::Notice { notice } => format!("\"notice\":\"{}\"", json_escape(notice)),
        Frame::Result {
            ok,
            cached,
            fragment,
        } => format!("\"ok\":{ok},\"cached\":{cached},{fragment}"),
        Frame::Error { fragment } => format!("\"ok\":false,\"cached\":false,{fragment}"),
    };
    format!(
        "{{\"schema\":{schema},\"type\":\"{}\",\"id\":\"{}\",\"seq\":{seq},{body}}}",
        frame.type_name(),
        json_escape(id)
    )
}

/// The legacy one-shot envelope: a degenerate single-`result` render.
fn envelope(id: &str, ok: bool, cached: bool, fragment: &str) -> String {
    render_frame(
        ONESHOT_SCHEMA_VERSION,
        id,
        0,
        &Frame::Result {
            ok,
            cached,
            fragment: fragment.to_string(),
        },
    )
}

/// An error response line (bad request, queue full, draining, ...).
fn error_line(id: &str, error: &str) -> String {
    envelope(
        id,
        false,
        false,
        &format!("\"error\":\"{}\"", json_escape(error)),
    )
}

/// An error payload *fragment* (for replies routed through the job
/// queue, which the connection handler wraps in an envelope itself).
fn error_fragment(error: &str) -> String {
    format!("\"error\":\"{}\"", json_escape(error))
}

// ---------------------------------------------------------------------
// Request resolution
// ---------------------------------------------------------------------

/// A request resolved to runnable work plus its cache identity.
pub struct ResolvedJob {
    /// Display name for the report.
    pub app: String,
    /// Short identifier.
    pub slug: String,
    /// Canonical source text — the content half of the [`CacheKey`]. For
    /// registry apps this is the full generated HTML page (scale baked
    /// in), so registry and inline requests for the same program share an
    /// entry.
    pub source: String,
    /// The supervised work closure.
    pub work: JobWork,
    /// Whether an `Ok` result may be stored. Fault-injected requests are
    /// not cacheable: their `attempts` count differs from a clean run, so
    /// storing them would leak injection artifacts into clean hits.
    pub cacheable: bool,
}

/// Maps a request to a [`ResolvedJob`]. The daemon supplies one that
/// knows the workload registry; [`source_resolver`] handles raw-source
/// requests only (`ceres-core` cannot depend on the workloads crate).
pub type Resolver =
    Arc<dyn Fn(&AnalysisRequest, &AnalyzeOptions) -> Result<ResolvedJob, String> + Send + Sync>;

/// Build the supervised work closure for analyzing raw source text: its
/// own `WebServer → instrument → Interp → Engine` stack per attempt,
/// exactly like a fleet job. Sources starting with `<` are served as
/// HTML (inline scripts extracted); anything else as plain JavaScript.
pub fn source_work(app: String, slug: String, source: String, opts: AnalyzeOptions) -> JobWork {
    Arc::new(move |worker, _attempt| {
        let start = std::time::Instant::now();
        let mut server = WebServer::new();
        let doc = if source.trim_start().starts_with('<') {
            Document::Html(source.clone())
        } else {
            Document::Js(source.clone())
        };
        server.publish("request.html", doc);
        let run = analyze(
            &server,
            "request.html",
            opts.clone(),
            Box::new(|_, _| Ok(())),
        )
        .map_err(|c| JobError::from_control(&c))?;
        let mut report = AppReport::from_run(&app, &slug, opts.mode, &run);
        report.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        report.worker = worker;
        Ok(report)
    })
}

/// Wrap `inner` with an injected fault (`panic` | `hang` | `error` |
/// `crash`), mirroring the fleet's seeded harness: `panic` unwinds every
/// attempt, `hang` spins the interpreter until the tick watchdog fires,
/// `error` reports a transient failure on the first attempt and then
/// lets the real work run — exercising panic isolation, watchdog
/// cancellation, and retry respectively. `crash` aborts the worker
/// *process* and therefore only bites under the process backend (a
/// worker process calls `abort` before reaching this closure); on the
/// in-process backend the closure below fails the job cleanly instead
/// of taking the daemon down.
pub fn inject_fault(
    kind: &str,
    slug: &str,
    policy: &FleetPolicy,
    inner: JobWork,
) -> Result<JobWork, String> {
    let slug = slug.to_string();
    let budget = policy.tick_budget.unwrap_or(HANG_FALLBACK_TICKS);
    match kind {
        "panic" => Ok(Arc::new(move |_, _| {
            panic!("injected fault: panic in {slug}")
        })),
        "hang" => Ok(Arc::new(move |_, _| {
            let mut interp = ceres_interp::Interp::new(2015);
            interp.max_ticks = Some(budget);
            match interp.eval_source("for (;;) {}") {
                Err(c) => Err(JobError::from_control(&c)),
                Ok(()) => Err(JobError::Fatal(
                    "injected hang terminated without tripping".to_string(),
                )),
            }
        })),
        "error" => Ok(Arc::new(move |worker, attempt| {
            if attempt == 1 {
                Err(JobError::Transient(format!(
                    "injected fault: transient error in {slug}"
                )))
            } else {
                inner(worker, attempt)
            }
        })),
        "crash" => Ok(Arc::new(move |_, _| {
            Err(JobError::Fatal(format!(
                "injected fault: crash in {slug} requires the process-worker \
                 backend (in-process jobs fail cleanly instead of aborting \
                 the daemon)"
            )))
        })),
        other => Err(format!(
            "unknown inject kind `{other}` (want panic|hang|error|crash)"
        )),
    }
}

/// A resolver for raw-source requests only (no workload registry):
/// rejects `app` requests. Used by core tests; the daemon layers the
/// registry on top of the same [`source_work`]/[`inject_fault`] pieces.
pub fn source_resolver(policy: FleetPolicy) -> Resolver {
    Arc::new(move |req, opts| {
        if req.app.is_some() {
            return Err("this server has no workload registry; send `source`".to_string());
        }
        let source = req
            .source
            .clone()
            .ok_or_else(|| "request needs `app` or `source`".to_string())?;
        let slug = "inline".to_string();
        let mut work = source_work(
            "inline".to_string(),
            slug.clone(),
            source.clone(),
            opts.clone(),
        );
        let cacheable = req.inject.is_none();
        if let Some(kind) = &req.inject {
            work = inject_fault(kind, &slug, &policy, work)?;
        }
        Ok(ResolvedJob {
            app: "inline".to_string(),
            slug,
            source,
            work,
            cacheable,
        })
    })
}

/// Build [`AnalyzeOptions`] from a request plus the server defaults.
/// Exposed so the daemon's resolver and the server core agree on exactly
/// one mapping (and tests can construct the matching [`CacheKey`]).
pub fn request_options(
    req: &AnalysisRequest,
    config: &ServeConfig,
) -> Result<AnalyzeOptions, String> {
    let mode = match &req.mode {
        Some(m) => parse_mode(m)?,
        None => config.default_mode,
    };
    let mut b = AnalyzeOptions::builder()
        .mode(mode)
        .seed(req.seed.unwrap_or(config.default_seed))
        .focus(req.focus.map(ceres_ast::LoopId))
        .max_ticks(req.max_ticks.or(config.policy.tick_budget))
        .wall_budget(config.policy.wall_budget.checked_div(2));
    if let Some(me) = req.max_events {
        b = b.max_events(me as usize);
    }
    Ok(b.build())
}

/// Build the result fragment for a finished job. `Ok` outcomes carry
/// the canonical report + deterministic single-run metrics; failures
/// carry the status label and detail. Compact JSON throughout — the
/// protocol is line-delimited. Shared verbatim by the in-process
/// backend and [`crate::supervisor::worker_serve_stdio`], which is what
/// keeps envelopes byte-identical across execution backends.
pub fn result_fragment(key: &CacheKey, outcome: &AppOutcome) -> (bool, String) {
    let head = format!(
        "\"key\":\"{}\",\"app\":\"{}\",\"slug\":\"{}\",\"status\":\"{}\",\"attempts\":{}",
        key.fingerprint(),
        json_escape(&outcome.app),
        json_escape(&outcome.slug),
        json_escape(&outcome.status.label()),
        outcome.attempts,
    );
    match &outcome.report {
        Some(report) => {
            let canonical = report.canonical();
            let metrics = FleetMetrics::single(
                &canonical.app,
                &canonical.slug,
                &canonical.mode,
                &canonical.obs,
                true,
            );
            let report_json = serde_json::to_string(&canonical).expect("AppReport serializes");
            let metrics_json = serde_json::to_string(&metrics).expect("FleetMetrics serializes");
            (
                true,
                format!("{head},\"report\":{report_json},\"metrics\":{metrics_json}"),
            )
        }
        None => {
            let detail = outcome.status.detail().unwrap_or("");
            (
                false,
                format!("{head},\"error\":\"{}\"", json_escape(detail)),
            )
        }
    }
}

/// Map a pipeline progress event to its streamed frame, if it has one.
/// The parse stage already emitted `parse`/`rewrite` (the exec stage
/// re-lowers from source and would re-record them), and sub-spans like
/// `interp.compile` are an implementation detail — so the back half of
/// the stream carries `interp`/`analyze`/`report` phases plus the
/// `partial` timing row. Shared by the in-process sink and the worker
/// process's stdout emitter, which keeps both backends' streams
/// identical.
pub(crate) fn frame_for_progress(p: &crate::obs::Progress) -> Option<Frame> {
    match p {
        crate::obs::Progress::Phase(span) => match span.phase.as_str() {
            "interp" | "analyze" | "report" => Some(Frame::Phase {
                phase: span.phase.clone(),
                start_ticks: span.start_ticks,
                end_ticks: span.end_ticks,
            }),
            _ => None,
        },
        crate::obs::Progress::Partial(fragment) => Some(Frame::Partial {
            fragment: fragment.clone(),
        }),
    }
}

/// Wrap a job's work so each attempt runs with a progress sink that
/// forwards phase/partial frames to the client's reply channel. The
/// sink is installed *inside* the closure — i.e. on the supervised
/// runner thread, where the pipeline's recording points fire — and the
/// guard uninstalls it even when the attempt panics. Retried attempts
/// re-emit their frames; `seq` stays monotonic because the connection
/// handler stamps it at write time.
fn streamed_work(inner: JobWork, reply: mpsc::Sender<Frame>) -> JobWork {
    // `Sender` is `Send` but not `Sync`; `JobWork` must be both.
    let reply = Mutex::new(reply);
    Arc::new(move |worker, attempt| {
        let tx = relock(&reply).clone();
        let _guard = crate::obs::install_progress_sink(Box::new(move |p| {
            if let Some(frame) = frame_for_progress(p) {
                let _ = tx.send(frame);
            }
        }));
        inner(worker, attempt)
    })
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// Server knobs. `Default` gives a loopback-friendly test configuration
/// (in-process workers, ephemeral spill, memory-only cache); the daemon
/// overrides from its flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker slots executing the interp/analyze back half of queued
    /// jobs (threads, or — with [`ServeConfig::worker_spec`] set —
    /// worker processes, one per slot).
    pub workers: usize,
    /// Parse-stage threads: the pipeline front half (resolve +
    /// parse/rewrite + early frames) runs here, overlapping the next
    /// job's parse with the previous job's interp.
    pub parse_workers: usize,
    /// In-memory job-ring capacity; overflow spills to disk.
    pub queue_capacity: usize,
    /// Result-cache capacity, in entries (split across shards).
    pub cache_capacity: usize,
    /// Number of cache shards (each with its own lock and FIFO window).
    pub cache_shards: usize,
    /// Cache persistence directory. `Some` ⇒ write-through shard files
    /// + load-on-start; `None` ⇒ memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Spill-queue directory. `Some` ⇒ the backlog survives restarts
    /// (and is replayed on start); `None` ⇒ an ephemeral per-process
    /// temp directory, deleted on clean shutdown.
    pub spill_dir: Option<PathBuf>,
    /// How to spawn worker processes. `Some` ⇒ process-isolated
    /// execution with supervised restart; `None` ⇒ in-process threads.
    pub worker_spec: Option<WorkerSpec>,
    /// Supervision policy for every served job.
    pub policy: FleetPolicy,
    /// Mode used when a request omits `mode`.
    pub default_mode: Mode,
    /// Seed used when a request omits `seed`.
    pub default_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            parse_workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_shards: 8,
            cache_dir: None,
            spill_dir: None,
            worker_spec: None,
            policy: FleetPolicy::default(),
            default_mode: Mode::LoopProfile,
            default_seed: 2015,
        }
    }
}

/// One admitted unit of work awaiting the parse stage: a self-contained
/// wire-format job spec (also the spill payload), whether the client
/// asked for the streaming protocol, and where to send frames. Replayed
/// spill jobs have no reply channel — their results go to the cache
/// only.
struct QueuedJob {
    wire: String,
    stream: bool,
    reply: Option<mpsc::Sender<Frame>>,
}

/// A job past the parse stage, holding a slot in the bounded exec
/// queue: the original spec (the exec backend re-lowers from it), the
/// resolved [`PreparedJob`], and the client channel.
struct ExecJob {
    wire: String,
    stream: bool,
    reply: Option<mpsc::Sender<Frame>>,
    prepared: PreparedJob,
}

/// A client parked on a spilled job: its frame channel plus whether it
/// asked for the streaming protocol.
struct Waiter {
    reply: mpsc::Sender<Frame>,
    stream: bool,
}

/// Queue state under the mutex: the bounded admission ring, the
/// stage-1→stage-2 handoff queue, the disk-backed overflow, reply
/// channels for spilled jobs (keyed by spill seq), and the
/// open/draining latch.
struct QueueState {
    memory: VecDeque<QueuedJob>,
    /// Parsed jobs waiting for an interp slot, bounded by
    /// `queue_capacity` (parse workers block while it is full, so the
    /// front stage cannot run unboundedly ahead of the back stage).
    exec: VecDeque<ExecJob>,
    /// Jobs currently inside the parse stage (popped from the ring or
    /// spill but not yet in `exec`): exec workers must not exit during
    /// drain while this is non-zero.
    parsing: usize,
    spill: Option<SpillQueue>,
    /// True when the spill directory was operator-chosen (backlog
    /// survives restarts); false for the ephemeral default.
    spill_persistent: bool,
    waiters: HashMap<u64, Waiter>,
    /// False once drain begins: workers exit when the ring is empty.
    open: bool,
}

/// Everything shared between the accept loop, connection handlers, and
/// workers.
struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: ShardedCache,
    counters: Mutex<ServeCounters>,
    draining: AtomicBool,
    config: ServeConfig,
    resolver: Resolver,
    addr: SocketAddr,
}

/// Poison-proof lock (a panicking thread must not wedge the server).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn bump(&self, f: impl FnOnce(&mut ServeCounters)) {
        f(&mut relock(&self.counters));
    }
}

/// Handle to a running server: the bound address plus the threads to
/// join. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`] or send a `shutdown` op.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// A cheap, cloneable, `Send` drain trigger split off a
/// [`ServerHandle`], for signal watchers and other threads that must be
/// able to start a graceful drain while the main thread blocks in
/// [`ServerHandle::join`].
#[derive(Clone)]
pub struct DrainHandle {
    shared: Arc<Shared>,
}

impl DrainHandle {
    /// Begin a graceful drain (idempotent; returns immediately).
    pub fn request_drain(&self) {
        begin_drain(&self.shared);
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Snapshot of the serving counters.
    pub fn counters(&self) -> ServeCounters {
        *relock(&self.shared.counters)
    }

    /// Begin a graceful drain without blocking (safe from a signal
    /// watcher thread); pair with [`ServerHandle::join`].
    pub fn request_drain(&self) {
        begin_drain(&self.shared);
    }

    /// Split off a cloneable [`DrainHandle`] for another thread.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Begin a graceful drain and wait for it to complete: stop
    /// accepting, reject new analyze requests, finish in-flight work,
    /// flush the queued tail to the spill file, then join all threads.
    pub fn shutdown(mut self) {
        begin_drain(&self.shared);
        self.join_threads();
    }

    /// Wait until a client-initiated `shutdown` op (or
    /// [`ServerHandle::request_drain`]) drains the server.
    pub fn join(mut self) -> ServeCounters {
        self.join_threads();
        *relock(&self.shared.counters)
    }

    fn join_threads(&mut self) {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Flip the server into draining mode: latch the flag, close the queue,
/// flush the unstarted tail to the spill file (answering those clients
/// explicitly — accepted jobs are never silently dropped), and poke the
/// accept loop awake with a throwaway self-connection.
fn begin_drain(shared: &Arc<Shared>) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    let mut flushed = 0u64;
    {
        let mut q = relock(&shared.queue);
        q.open = false;
        let persistent = q.spill_persistent;
        let tail: Vec<QueuedJob> = q.memory.drain(..).collect();
        for job in tail {
            let persisted = match q.spill.as_mut() {
                Some(spill) => spill.push(&job.wire).is_ok(),
                None => false,
            };
            if persisted {
                flushed += 1;
            }
            if let Some(reply) = job.reply {
                if job.stream {
                    let _ = reply.send(Frame::Notice {
                        notice: "draining: flushing the queued tail".to_string(),
                    });
                }
                let _ = reply.send(Frame::Error {
                    fragment: drain_flush_fragment(persisted && persistent),
                });
            }
        }
        // Jobs already spilled stay in the segment file; answer their
        // waiting clients the same way. Jobs already past the parse
        // stage (the exec queue) count as started: they run to
        // completion and answer normally.
        let waiters: Vec<Waiter> = q.waiters.drain().map(|(_, w)| w).collect();
        for w in waiters {
            if w.stream {
                let _ = w.reply.send(Frame::Notice {
                    notice: "draining: flushing the queued tail".to_string(),
                });
            }
            let _ = w.reply.send(Frame::Error {
                fragment: drain_flush_fragment(persistent),
            });
        }
    }
    shared.bump(|c| c.jobs_flushed_on_drain += flushed);
    shared.available.notify_all();
    // Unblock `accept()`; the loop re-checks `draining` per connection.
    let _ = TcpStream::connect(shared.addr);
}

/// The explicit answer a queued-but-unstarted client gets at drain time.
fn drain_flush_fragment(persisted: bool) -> String {
    if persisted {
        error_fragment(
            "draining: job flushed to the spill queue; it will run after \
             restart — retry then for a cache hit",
        )
    } else {
        error_fragment("draining: job not started; retry")
    }
}

/// Start serving on `listener` (bind it yourself; `127.0.0.1:0` works
/// for tests). Spawns the accept loop and `config.workers` job workers,
/// then returns immediately. A persistent spill directory with a
/// backlog is replayed immediately: those jobs run and their results
/// land in the cache, so the clients that lost them can retry into warm
/// hits.
pub fn serve(listener: TcpListener, config: ServeConfig, resolver: Resolver) -> ServerHandle {
    let addr = listener.local_addr().expect("listener has a local addr");
    let cache = ShardedCache::open(
        config.cache_capacity,
        config.cache_shards,
        config.cache_dir.as_deref(),
    )
    .unwrap_or_else(|e| {
        eprintln!(
            "jsceresd: cache dir {} unusable ({e}); falling back to memory-only cache",
            config
                .cache_dir
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        );
        ShardedCache::open(config.cache_capacity, config.cache_shards, None)
            .expect("memory-only cache cannot fail")
    });
    let spill_persistent = config.spill_dir.is_some();
    let spill_path = config
        .spill_dir
        .clone()
        .unwrap_or_else(|| crate::spill::ephemeral_dir("spill"));
    let spill = match SpillQueue::open(&spill_path, !spill_persistent) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!(
                "jsceresd: spill dir {} unusable ({e}); falling back to reject-at-bound admission",
                spill_path.display()
            );
            None
        }
    };
    let replayed = spill.as_ref().map(|s| s.stats().replayed).unwrap_or(0);

    let shared = Arc::new(Shared {
        queue: Mutex::new(QueueState {
            memory: VecDeque::new(),
            exec: VecDeque::new(),
            parsing: 0,
            spill,
            spill_persistent,
            waiters: HashMap::new(),
            open: true,
        }),
        available: Condvar::new(),
        cache,
        counters: Mutex::new(ServeCounters {
            spill_replayed: replayed,
            ..ServeCounters::default()
        }),
        draining: AtomicBool::new(false),
        config: config.clone(),
        resolver,
        addr,
    });

    let mut workers: Vec<_> = (0..config.workers.max(1))
        .map(|worker_id| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("jsceresd-worker-{worker_id}"))
                .spawn(move || exec_loop(&shared, worker_id))
                .expect("spawn worker")
        })
        .collect();
    for parse_id in 0..config.parse_workers.max(1) {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("jsceresd-parse-{parse_id}"))
                .spawn(move || parse_loop(&shared))
                .expect("spawn parse worker"),
        );
    }

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("jsceresd-accept".to_string())
            .spawn(move || accept_loop(listener, &shared))
            .expect("spawn accept loop")
    };

    // If a replayed backlog is waiting, wake the workers for it.
    if replayed > 0 {
        shared.available.notify_all();
    }

    ServerHandle {
        shared,
        accept: Some(accept),
        workers,
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        if let Ok(h) = std::thread::Builder::new()
            .name("jsceresd-conn".to_string())
            .spawn(move || handle_connection(stream, &shared))
        {
            handlers.push(h);
        }
    }
    // Drain: wait for every connection handler to write its last
    // response and hang up (their read loops poll `draining`).
    for h in handlers {
        let _ = h.join();
    }
}

/// Pull the next admitted job into the parse stage: the in-memory ring
/// first, then the spill file (strict FIFO — arrivals go to the spill
/// whenever it is non-empty, so ring-then-spill pop order preserves
/// admission order). Bumps `parsing` so exec workers know a job is in
/// flight between the queues.
fn next_job(shared: &Arc<Shared>) -> Option<QueuedJob> {
    let mut q = relock(&shared.queue);
    loop {
        if let Some(job) = q.memory.pop_front() {
            q.parsing += 1;
            return Some(job);
        }
        if !q.open {
            return None;
        }
        if let Some(spill) = q.spill.as_mut() {
            if let Some((seq, wire)) = spill.pop() {
                let (reply, stream) = match q.waiters.remove(&seq) {
                    Some(w) => (Some(w.reply), w.stream),
                    None => (None, false),
                };
                q.parsing += 1;
                return Some(QueuedJob {
                    wire,
                    stream,
                    reply,
                });
            }
        }
        q = shared
            .available
            .wait(q)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Parse + resolve a queued wire spec back into runnable work. (The
/// spec was validated at admission; failures here are replay-era drift,
/// e.g. a registry app renamed between restarts.)
struct PreparedJob {
    key: CacheKey,
    cacheable: bool,
    /// Canonical source + mode, kept so the parse stage can run the
    /// pipeline front half ([`crate::pipeline::prepare_source`]).
    source: String,
    mode: Mode,
    job: FleetJob,
}

fn prepare_job(shared: &Arc<Shared>, wire: &str) -> Result<PreparedJob, String> {
    let req: AnalysisRequest =
        serde_json::from_str(wire).map_err(|e| format!("bad queued job spec: {e}"))?;
    let opts = request_options(&req, &shared.config)?;
    let resolved = (shared.resolver)(&req, &opts)?;
    let key = CacheKey::of(&resolved.source, &opts, req.scale.unwrap_or(1));
    Ok(PreparedJob {
        key,
        cacheable: resolved.cacheable,
        source: resolved.source,
        mode: opts.mode,
        job: FleetJob {
            app: resolved.app,
            slug: resolved.slug,
            work: resolved.work,
        },
    })
}

/// Pipeline stage 1 (one thread of the parse pool): pull admitted jobs
/// and run [`stage_parse`] on each. Exits when the queue closes and the
/// ring is empty.
fn parse_loop(shared: &Arc<Shared>) {
    while let Some(item) = next_job(shared) {
        stage_parse(shared, item);
        // This parse slot is free: wake exec workers (their drain exit
        // condition watches `parsing`) and anything else blocked on the
        // queues.
        relock(&shared.queue).parsing -= 1;
        shared.available.notify_all();
    }
}

/// Resolve one job and run its parse/rewrite front half, then hand it
/// to the exec queue — or fail it here, before it can occupy an interp
/// slot. Streaming jobs get their early `phase` frames from this stage;
/// an unparseable streaming job is rejected with a terminal `error`
/// without ever touching the back stage.
fn stage_parse(shared: &Arc<Shared>, item: QueuedJob) {
    let prepared = match prepare_job(shared, &item.wire) {
        Ok(p) => p,
        Err(e) => {
            shared.bump(|c| c.jobs_failed += 1);
            if let Some(reply) = item.reply {
                let _ = reply.send(Frame::Error {
                    fragment: error_fragment(&e),
                });
            }
            return;
        }
    };
    // One-shot jobs skip the front half (the exec stage re-parses
    // internally anyway, and their failure bytes must stay identical to
    // the pre-pipeline server); streaming jobs pay a microseconds-scale
    // double parse to get early frames and early rejection.
    if item.stream {
        match crate::pipeline::prepare_source(&prepared.source, prepared.mode) {
            Ok(front) => {
                if let Some(reply) = &item.reply {
                    for span in &front.spans {
                        let _ = reply.send(Frame::Phase {
                            phase: span.phase.clone(),
                            start_ticks: span.start_ticks,
                            end_ticks: span.end_ticks,
                        });
                    }
                }
            }
            Err(e) => {
                shared.bump(|c| c.jobs_failed += 1);
                if let Some(reply) = item.reply {
                    let _ = reply.send(Frame::Error {
                        fragment: format!(
                            "\"key\":\"{}\",\"app\":\"{}\",\"slug\":\"{}\",\
                             \"status\":\"failed\",\"attempts\":0,\"error\":\"{}\"",
                            prepared.key.fingerprint(),
                            json_escape(&prepared.job.app),
                            json_escape(&prepared.job.slug),
                            json_escape(&e),
                        ),
                    });
                }
                return;
            }
        }
    }
    enqueue_exec(
        shared,
        ExecJob {
            wire: item.wire,
            stream: item.stream,
            reply: item.reply,
            prepared,
        },
    );
}

/// Hand a parsed job to the exec queue, blocking while it is at
/// capacity (backpressure: the parse stage cannot run unboundedly ahead
/// of the interp stage). During drain the bound is waived so in-flight
/// parses always land.
fn enqueue_exec(shared: &Arc<Shared>, job: ExecJob) {
    let mut q = relock(&shared.queue);
    while q.open && q.exec.len() >= shared.config.queue_capacity {
        q = shared
            .available
            .wait(q)
            .unwrap_or_else(PoisonError::into_inner);
    }
    q.exec.push_back(job);
    drop(q);
    shared.available.notify_all();
}

/// Pull the next parsed job for an interp slot. During drain, exec
/// workers outlive the parse stage until it has fully flushed into the
/// exec queue — a job past admission is never silently dropped.
fn next_exec_job(shared: &Arc<Shared>) -> Option<ExecJob> {
    let mut q = relock(&shared.queue);
    loop {
        if let Some(job) = q.exec.pop_front() {
            drop(q);
            // A capacity slot opened: wake blocked parse workers.
            shared.available.notify_all();
            return Some(job);
        }
        if !q.open && q.parsing == 0 && q.memory.is_empty() {
            return None;
        }
        q = shared
            .available
            .wait(q)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Pipeline stage 2 (one thread per interp slot): run parsed jobs on
/// this worker's backend and send each client its terminal frame.
fn exec_loop(shared: &Arc<Shared>, worker_id: usize) {
    let mut slot = shared.config.worker_spec.clone().map(WorkerSlot::new);
    while let Some(job) = next_exec_job(shared) {
        let (ok, fragment, ticks) = execute_job(shared, worker_id, slot.as_mut(), &job);
        shared.bump(|c| {
            c.interp_ticks += ticks;
            if ok {
                c.jobs_ok += 1;
            } else {
                c.jobs_failed += 1;
            }
        });
        if let Some(reply) = &job.reply {
            let frame = if ok {
                Frame::Result {
                    ok: true,
                    cached: false,
                    fragment,
                }
            } else {
                Frame::Error { fragment }
            };
            let _ = reply.send(frame);
        }
    }
    if let Some(s) = slot.as_mut() {
        s.shutdown();
    }
}

/// Run one parsed job on this worker's backend and return
/// `(ok, fragment, ticks)` with the fragment already deduplicated
/// through the cache (first-writer-wins) when cacheable. Streaming
/// jobs run with a frame path back to the client: the process backend
/// forwards the worker pipe's frame lines, the in-process backend
/// installs a progress sink on the runner thread.
fn execute_job(
    shared: &Arc<Shared>,
    worker_id: usize,
    slot: Option<&mut WorkerSlot>,
    job: &ExecJob,
) -> (bool, String, u64) {
    let prepared = &job.prepared;
    let (ok, fragment, ticks) = match slot {
        // Process backend: ship the job line to this slot's worker
        // process; a dead worker is restarted with bounded backoff.
        Some(slot) => {
            let streaming = job.stream && job.reply.is_some();
            let (outcome, restarts) = slot.run(&job.wire, &mut |frame| {
                if streaming {
                    if let Some(reply) = &job.reply {
                        let _ = reply.send(frame);
                    }
                }
            });
            if restarts > 0 {
                shared.bump(|c| c.worker_restarts += restarts);
            }
            match outcome {
                SlotOutcome::Done(resp) => (resp.ok, resp.fragment, resp.ticks),
                SlotOutcome::Crashed { attempts } => (
                    false,
                    format!(
                        "\"key\":\"{}\",\"app\":\"{}\",\"slug\":\"{}\",\
                         \"status\":\"worker-crashed\",\"attempts\":{attempts},\
                         \"error\":\"worker process died while running this job; \
                         a fresh worker was started\"",
                        prepared.key.fingerprint(),
                        json_escape(&prepared.job.app),
                        json_escape(&prepared.job.slug),
                    ),
                    0,
                ),
                SlotOutcome::Unavailable(e) => (
                    false,
                    format!(
                        "\"key\":\"{}\",\"app\":\"{}\",\"slug\":\"{}\",\
                         \"status\":\"failed\",\"attempts\":0,\"error\":\"{}\"",
                        prepared.key.fingerprint(),
                        json_escape(&prepared.job.app),
                        json_escape(&prepared.job.slug),
                        json_escape(&e),
                    ),
                    0,
                ),
            }
        }
        // In-process backend: the original thread-pool path, with the
        // work wrapped in a streaming progress sink when the client
        // asked for frames.
        None => {
            let outcome = match (&job.reply, job.stream) {
                (Some(reply), true) => {
                    let streamed = FleetJob {
                        app: prepared.job.app.clone(),
                        slug: prepared.job.slug.clone(),
                        work: streamed_work(Arc::clone(&prepared.job.work), reply.clone()),
                    };
                    supervise(&streamed, worker_id, &shared.config.policy)
                }
                _ => supervise(&prepared.job, worker_id, &shared.config.policy),
            };
            let ticks = outcome
                .report
                .as_ref()
                .map(|r| r.obs.counters.interp_ticks)
                .unwrap_or(0);
            let (ok, fragment) = result_fragment(&prepared.key, &outcome);
            (ok, fragment, ticks)
        }
    };
    let fragment = if ok && prepared.cacheable {
        // First-writer-wins: concurrent cold misses on the same key
        // converge on one stored byte sequence (and, with persistence
        // on, one write-through line).
        shared.cache.insert_or_get(&prepared.key, fragment)
    } else {
        fragment
    };
    (ok, fragment, ticks)
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle poll: once draining, stop waiting for more input.
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        if handle_line(line.trim(), shared, &mut writer).is_err() {
            return;
        }
    }
}

/// Write one response line and flush (the protocol is line-delimited;
/// a streaming client acts on each frame as it lands).
fn write_line(out: &mut dyn Write, line: &str) -> std::io::Result<()> {
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// Dispatch one request line, writing one response line — or, for a
/// streaming analyze, a frame sequence — to `out`. Non-analyze ops are
/// one-shot by nature and always answer at [`ONESHOT_SCHEMA_VERSION`].
fn handle_line(line: &str, shared: &Arc<Shared>, out: &mut dyn Write) -> std::io::Result<()> {
    let req: AnalysisRequest = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => return write_line(out, &error_line("", &format!("bad request: {e}"))),
    };
    let id = req.id.clone().unwrap_or_default();
    let response = match req.op.as_deref().unwrap_or("analyze") {
        "ping" => envelope(&id, true, false, "\"op\":\"ping\""),
        "stats" => stats_line(&id, shared),
        "shutdown" => {
            begin_drain(shared);
            envelope(&id, true, false, "\"op\":\"shutdown\",\"draining\":true")
        }
        "analyze" => return handle_analyze(&req, &id, shared, out),
        other => error_line(&id, &format!("unknown op `{other}`")),
    };
    write_line(out, &response)
}

fn stats_line(id: &str, shared: &Arc<Shared>) -> String {
    let cache = shared.cache.stats();
    let mut counters = *relock(&shared.counters);
    // The eviction odometer lives in the cache shards; mirror the
    // aggregate into the counters snapshot for one-stop scraping.
    counters.cache_evictions = cache.total.evictions;
    let (queue_depth, exec_depth, spill) = {
        let q = relock(&shared.queue);
        (
            q.memory.len(),
            q.exec.len(),
            q.spill.as_ref().map(|s| s.stats()),
        )
    };
    let counters_json = serde_json::to_string(&counters).expect("ServeCounters serializes");
    let per_shard = cache
        .shards
        .iter()
        .map(|s| {
            format!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"len\":{}}}",
                s.hits, s.misses, s.evictions, s.len
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let spill_json = match spill {
        Some(s) => format!(
            "{{\"depth\":{},\"pushed\":{},\"replayed\":{},\"corrupt\":{},\"peak_depth\":{}}}",
            s.depth, s.pushed, s.replayed, s.corrupt, s.peak_depth
        ),
        None => "null".to_string(),
    };
    let backend = if shared.config.worker_spec.is_some() {
        "process"
    } else {
        "in-process"
    };
    envelope(
        id,
        true,
        false,
        &format!(
            "\"op\":\"stats\",\"stats_schema\":{SERVE_STATS_SCHEMA},\
             \"counters\":{counters_json},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"len\":{},\"capacity\":{},\
             \"shards\":{},\"persistent\":{},\"loaded\":{},\"load_corrupt\":{},\"persisted\":{},\
             \"per_shard\":[{per_shard}]}},\
             \"queue_depth\":{queue_depth},\"exec_depth\":{exec_depth},\"spill\":{spill_json},\
             \"workers\":{},\"backend\":\"{backend}\",\"draining\":{}",
            cache.total.hits,
            cache.total.misses,
            cache.total.evictions,
            cache.total.len,
            cache.total.capacity,
            cache.shards.len(),
            cache.persistent,
            cache.loaded,
            cache.load_corrupt,
            cache.persisted,
            shared.config.workers,
            shared.draining.load(Ordering::SeqCst),
        ),
    )
}

/// Writes the frames of one analyze response, stamping `seq` at write
/// time — the stamp and the write are one step on this thread, so the
/// sequence a client observes is gapless and monotonic no matter how
/// the stages interleaved behind the channel.
struct FrameWriter<'a> {
    out: &'a mut dyn Write,
    schema: u32,
    id: &'a str,
    seq: u64,
    /// Non-terminal frames written (feeds the `frames_streamed` counter).
    streamed: u64,
}

impl FrameWriter<'_> {
    fn send(&mut self, frame: &Frame) -> std::io::Result<()> {
        self.seq += 1;
        if !frame.is_terminal() {
            self.streamed += 1;
        }
        write_line(
            self.out,
            &render_frame(self.schema, self.id, self.seq, frame),
        )
    }
}

/// How admission classified one analyze request.
enum Admitted {
    Ring(u64),
    Spilled(u64),
    Rejected(String),
}

fn handle_analyze(
    req: &AnalysisRequest,
    id: &str,
    shared: &Arc<Shared>,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    let stream_mode = req.stream.unwrap_or(false);
    let schema = if stream_mode {
        API_SCHEMA_VERSION
    } else {
        ONESHOT_SCHEMA_VERSION
    };
    let mut fw = FrameWriter {
        out,
        schema,
        id,
        seq: 0,
        streamed: 0,
    };

    let opts = match request_options(req, &shared.config) {
        Ok(o) => o,
        Err(e) => {
            return fw.send(&Frame::Error {
                fragment: error_fragment(&e),
            })
        }
    };
    let resolved = match (shared.resolver)(req, &opts) {
        Ok(r) => r,
        Err(e) => {
            return fw.send(&Frame::Error {
                fragment: error_fragment(&e),
            })
        }
    };
    shared.bump(|c| {
        c.requests += 1;
        if stream_mode {
            c.streams += 1;
        }
    });
    let key = CacheKey::of(&resolved.source, &opts, req.scale.unwrap_or(1));

    // Fault-injected requests bypass the cache in both directions: a hit
    // would skip the very supervisor path the injection exists to
    // exercise, and storing the result would leak injection artifacts.
    if resolved.cacheable {
        if let Some(fragment) = shared.cache.lookup(&key) {
            shared.bump(|c| c.cache_hits += 1);
            // A warm hit needs no pipeline: the stream collapses to its
            // terminal frame (`accepted` always implies real work).
            return fw.send(&Frame::Result {
                ok: true,
                cached: true,
                fragment,
            });
        }
        shared.bump(|c| c.cache_misses += 1);
    }

    if shared.draining.load(Ordering::SeqCst) {
        shared.bump(|c| c.rejected_draining += 1);
        return fw.send(&Frame::Error {
            fragment: error_fragment("draining: not accepting new work"),
        });
    }

    let wire = request_wire_json(req, &opts);
    let (tx, rx) = mpsc::channel();
    let admitted = {
        let mut q = relock(&shared.queue);
        if !q.open {
            drop(q);
            shared.bump(|c| c.rejected_draining += 1);
            return fw.send(&Frame::Error {
                fragment: error_fragment("draining: not accepting new work"),
            });
        }
        // Strict FIFO admission: once anything is on disk, new arrivals
        // queue behind it.
        let spill_busy = q.spill.as_ref().map(|s| !s.is_empty()).unwrap_or(false);
        if q.memory.len() >= shared.config.queue_capacity || spill_busy {
            let pushed = q
                .spill
                .as_mut()
                .map(|spill| spill.push(&wire).map(|seq| (seq, spill.len() as u64)));
            match pushed {
                Some(Ok((seq, depth))) => {
                    q.waiters.insert(
                        seq,
                        Waiter {
                            reply: tx,
                            stream: stream_mode,
                        },
                    );
                    drop(q);
                    shared.bump(|c| {
                        c.jobs_spilled += 1;
                        c.spill_peak_depth = c.spill_peak_depth.max(depth);
                        if stream_mode {
                            c.spill_notices += 1;
                        }
                    });
                    Admitted::Spilled(depth)
                }
                Some(Err(e)) => {
                    drop(q);
                    Admitted::Rejected(format!(
                        "queue full and spill write failed ({e}): retry later"
                    ))
                }
                None => {
                    drop(q);
                    Admitted::Rejected("queue full: retry later".to_string())
                }
            }
        } else {
            q.memory.push_back(QueuedJob {
                wire,
                stream: stream_mode,
                reply: Some(tx),
            });
            let depth = q.memory.len() as u64;
            drop(q);
            shared.bump(|c| c.queue_peak_depth = c.queue_peak_depth.max(depth));
            Admitted::Ring(depth)
        }
    };
    shared.available.notify_all();

    match admitted {
        Admitted::Rejected(e) => {
            shared.bump(|c| c.rejected_queue_full += 1);
            return fw.send(&Frame::Error {
                fragment: error_fragment(&e),
            });
        }
        Admitted::Ring(depth) => {
            if stream_mode {
                fw.send(&Frame::Accepted { queue_depth: depth })?;
            }
        }
        Admitted::Spilled(depth) => {
            // The spill-time notice (not just at drain): a streaming
            // client learns immediately that its job went to disk.
            if stream_mode {
                fw.send(&Frame::Accepted {
                    queue_depth: shared.config.queue_capacity as u64 + depth,
                })?;
                fw.send(&Frame::Notice {
                    notice: format!(
                        "job spilled to disk at depth {depth}; it runs in \
                         admission order behind the in-memory ring"
                    ),
                })?;
            }
        }
    }

    loop {
        match rx.recv() {
            Ok(frame) => {
                let terminal = frame.is_terminal();
                if stream_mode || terminal {
                    fw.send(&frame)?;
                }
                if terminal {
                    break;
                }
            }
            Err(_) => {
                fw.send(&Frame::Error {
                    fragment: error_fragment("worker exited before finishing the job"),
                })?;
                break;
            }
        }
    }
    if fw.streamed > 0 {
        let streamed = fw.streamed;
        shared.bump(|c| c.frames_streamed += streamed);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn start(config: ServeConfig) -> ServerHandle {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let policy = config.policy.clone();
        serve(listener, config, source_resolver(policy))
    }

    fn roundtrip(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("response");
        response.trim_end().to_string()
    }

    #[test]
    fn ping_and_unknown_op() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();
        let pong = roundtrip(addr, r#"{"op":"ping","id":"p1"}"#);
        assert!(pong.contains("\"ok\":true"), "{pong}");
        assert!(pong.contains("\"id\":\"p1\""), "{pong}");
        assert!(
            pong.contains(&format!("\"schema\":{ONESHOT_SCHEMA_VERSION}")),
            "{pong}"
        );
        let bad = roundtrip(addr, r#"{"op":"never"}"#);
        assert!(bad.contains("\"ok\":false"), "{bad}");
        server.shutdown();
    }

    #[test]
    fn malformed_line_is_an_error_not_a_crash() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();
        let resp = roundtrip(addr, "this is not json");
        assert!(resp.contains("bad request"), "{resp}");
        // The server is still alive.
        let pong = roundtrip(addr, r#"{"op":"ping"}"#);
        assert!(pong.contains("\"ok\":true"), "{pong}");
        server.shutdown();
    }

    #[test]
    fn warm_hit_is_byte_identical_and_adds_no_ticks() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();
        let req = r#"{"id":"c","source":"var t = 0; for (var i = 0; i < 8; i++) { t += i; }","mode":"dependence","seed":7}"#;
        let cold = roundtrip(addr, req);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        assert!(cold.contains("\"cached\":false"), "{cold}");
        let ticks_after_cold = server.counters().interp_ticks;
        assert!(ticks_after_cold > 0, "cold run must interpret");

        let warm = roundtrip(addr, req);
        assert!(warm.contains("\"cached\":true"), "{warm}");
        // Byte-identity of everything after the request-specific prefix.
        let tail = |s: &str| s[s.find("\"key\":").expect("key field")..].to_string();
        assert_eq!(tail(&cold), tail(&warm), "payload must be byte-identical");
        assert_eq!(
            server.counters().interp_ticks,
            ticks_after_cold,
            "warm hit must not re-enter the interpreter"
        );
        assert_eq!(server.counters().cache_hits, 1);
        assert_eq!(server.counters().cache_misses, 1);
        server.shutdown();
    }

    #[test]
    fn different_options_miss_the_cache() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();
        let a = roundtrip(addr, r#"{"source":"var x = 1;","mode":"dependence"}"#);
        let b = roundtrip(addr, r#"{"source":"var x = 1;","mode":"loop-profile"}"#);
        let c = roundtrip(
            addr,
            r#"{"source":"var x = 1;","mode":"dependence","seed":9}"#,
        );
        for r in [&a, &b, &c] {
            assert!(r.contains("\"cached\":false"), "{r}");
        }
        assert_eq!(server.counters().cache_misses, 3);
        assert_eq!(server.counters().cache_hits, 0);
        server.shutdown();
    }

    #[test]
    fn injected_faults_exercise_the_supervisor_and_skip_the_cache() {
        let mut config = ServeConfig::default();
        config.policy.backoff = Duration::from_millis(1);
        let server = start(config);
        let addr = server.local_addr();

        // A panic is contained and reported, not fatal to the server.
        let p = roundtrip(addr, r#"{"source":"var x;","inject":"panic"}"#);
        assert!(p.contains("\"status\":\"panicked\""), "{p}");
        assert!(p.contains("\"ok\":false"), "{p}");

        // A transient error clears on retry; the result is real but must
        // not be cached (attempts differ from a clean run).
        let e = roundtrip(addr, r#"{"source":"var x;","inject":"error"}"#);
        assert!(e.contains("\"status\":\"ok\""), "{e}");
        assert!(e.contains("\"attempts\":2"), "{e}");
        let clean = roundtrip(addr, r#"{"source":"var x;"}"#);
        assert!(
            clean.contains("\"cached\":false"),
            "injected result leaked: {clean}"
        );
        assert!(clean.contains("\"attempts\":1"), "{clean}");

        // And the reverse leak: a warm cache entry must not short-circuit
        // a later injected request — the fault has to actually run.
        let e2 = roundtrip(addr, r#"{"source":"var x;","inject":"error"}"#);
        assert!(e2.contains("\"cached\":false"), "{e2}");
        assert!(e2.contains("\"attempts\":2"), "{e2}");

        // `crash` on the in-process backend fails the job cleanly
        // instead of aborting the daemon.
        let c = roundtrip(addr, r#"{"source":"var x;","inject":"crash"}"#);
        assert!(c.contains("\"ok\":false"), "{c}");
        assert!(c.contains("process-worker"), "{c}");

        assert_eq!(server.counters().jobs_failed, 2);
        assert_eq!(server.counters().jobs_ok, 3);
        server.shutdown();
    }

    #[test]
    fn concurrent_identical_requests_converge_on_one_payload() {
        let server = start(ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        let req = r#"{"source":"var s = 0; for (var i = 0; i < 5; i++) { s += i; }","mode":"dependence"}"#;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let req = req.to_string();
                std::thread::spawn(move || roundtrip(addr, &req))
            })
            .collect();
        let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let tail = |s: &str| s[s.find("\"key\":").expect("key field")..].to_string();
        let first = tail(&responses[0]);
        for r in &responses {
            assert!(r.contains("\"ok\":true"), "{r}");
            assert_eq!(tail(r), first, "all clients must see identical payloads");
        }
        server.shutdown();
    }

    #[test]
    fn overflow_spills_to_disk_and_every_client_still_gets_its_answer() {
        // A 1-worker, 2-slot ring with a burst of 8 jobs: at least some
        // must overflow to the spill file, and every client must still
        // get a real (non-rejected) response.
        let server = start(ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                // Distinct sources: no cache short-circuits.
                let req = format!(
                    r#"{{"id":"burst-{i}","source":"var b{i} = 0; for (var i = 0; i < {n}; i++) {{ b{i} += i; }}","mode":"dependence"}}"#,
                    n = 50 + i
                );
                std::thread::spawn(move || roundtrip(addr, &req))
            })
            .collect();
        for h in handles {
            let r = h.join().unwrap();
            assert!(r.contains("\"ok\":true"), "{r}");
            assert!(!r.contains("queue full"), "spill must absorb bursts: {r}");
        }
        let c = server.counters();
        assert!(
            c.jobs_spilled > 0,
            "burst of 8 into a ring of 2 must spill: {c:?}"
        );
        assert_eq!(c.jobs_ok, 8);
        assert_eq!(c.rejected_queue_full, 0);
        server.shutdown();
    }

    #[test]
    fn stats_reports_the_current_schema_with_spill_and_shards() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();
        let stats = roundtrip(addr, r#"{"op":"stats","id":"s"}"#);
        assert!(
            stats.contains(&format!("\"stats_schema\":{SERVE_STATS_SCHEMA}")),
            "{stats}"
        );
        for field in [
            "\"worker_restarts\":0",
            "\"jobs_spilled\":0",
            "\"streams\":0",
            "\"frames_streamed\":0",
            "\"spill_notices\":0",
            "\"exec_depth\":0",
            "\"spill\":{\"depth\":0",
            "\"per_shard\":[",
            "\"backend\":\"in-process\"",
        ] {
            assert!(stats.contains(field), "missing {field}: {stats}");
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_in_flight_work_and_rejects_new() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();

        // Park a slow-ish job, then shut down while it may still be
        // queued or running; its client must still get a definitive
        // answer (a result if it was in flight, an explicit drain notice
        // if it was still queued — never silence).
        let slow = std::thread::spawn(move || {
            roundtrip(
                addr,
                r#"{"id":"slow","source":"var t = 0; for (var i = 0; i < 2000; i++) { t += i; }"}"#,
            )
        });
        // Give the slow request a moment to enqueue before draining.
        std::thread::sleep(Duration::from_millis(50));
        let bye = roundtrip(addr, r#"{"op":"shutdown"}"#);
        assert!(bye.contains("\"draining\":true"), "{bye}");

        let slow_response = slow.join().unwrap();
        assert!(
            slow_response.contains("\"ok\":true") || slow_response.contains("draining"),
            "in-flight client must get a definitive answer: {slow_response}"
        );
        let counters = server.join();
        // New connections are refused or reset after the drain; either
        // way the server threads have all exited by now.
        assert!(counters.requests >= 1);
    }

    #[test]
    fn request_wire_json_round_trips_and_pins_options() {
        let config = ServeConfig::default();
        let req: AnalysisRequest = serde_json::from_str(
            r#"{"id":"x","source":"var q = 1;","mode":"dep","scale":2,"inject":"error"}"#,
        )
        .unwrap();
        let opts = request_options(&req, &config).unwrap();
        let wire = request_wire_json(&req, &opts);
        // The wire spec drops request-identity fields and makes every
        // option explicit.
        assert!(!wire.contains("\"id\""), "{wire}");
        assert!(wire.contains("\"mode\":\"dependence\""), "{wire}");
        assert!(
            wire.contains(&format!("\"seed\":{}", config.default_seed)),
            "{wire}"
        );
        assert!(wire.contains("\"scale\":2"), "{wire}");
        assert!(wire.contains("\"inject\":\"error\""), "{wire}");
        // And it round-trips through the ordinary request parser onto
        // the same cache key.
        let parsed: AnalysisRequest = serde_json::from_str(&wire).unwrap();
        let opts2 = request_options(&parsed, &config).unwrap();
        let k1 = CacheKey::of("var q = 1;", &opts, req.scale.unwrap_or(1));
        let k2 = CacheKey::of("var q = 1;", &opts2, parsed.scale.unwrap_or(1));
        assert_eq!(k1.fingerprint(), k2.fingerprint());
    }
}
