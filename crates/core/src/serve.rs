//! `jsceresd`: the persistent analysis service.
//!
//! Four PRs in, every analysis was still a one-shot CLI invocation that
//! re-parsed, re-instrumented, and re-interpreted from scratch. This
//! module turns the pipeline into a long-running server — std-only
//! (`std::net` + the same thread-per-worker pattern the fleet uses, no
//! async runtime) — with three load-bearing properties:
//!
//! 1. **A stable wire surface.** Clients send one line-delimited JSON
//!    [`AnalysisRequest`] per request over TCP; every response line is a
//!    JSON envelope stamped with [`crate::fleet::API_SCHEMA_VERSION`].
//!    The request fields map 1:1 onto the [`AnalyzeOptions`] builder, so the
//!    daemon, `jsceres`, and `repro fleet` all speak the same options
//!    vocabulary.
//! 2. **A content-addressed result cache.** Each analyze request is keyed
//!    by [`crate::cache::CacheKey`] — SHA-256 of the canonical source ×
//!    mode × seed × focus × budgets — and a warm hit returns the stored
//!    report + metrics **byte-identically** without re-entering the
//!    interpreter (the `stats` op exposes a cumulative interp-tick
//!    odometer precisely so tests can prove a hit added zero ticks).
//! 3. **Supervised execution.** Every cache miss becomes a
//!    [`FleetJob`] pushed onto a *bounded* queue (full ⇒ immediate
//!    `queue full` rejection, not unbounded memory) and run through
//!    [`crate::fleet::supervise`] — the same retry/watchdog/panic
//!    isolation the fleet gives batch runs.
//!
//! Shutdown is a graceful drain: a `shutdown` op (or
//! [`ServerHandle::shutdown`]) stops the accept loop and rejects new
//! analyze requests, but every job already queued or in flight runs to
//! completion and its client gets its response before the workers exit.
//!
//! Responses always use the canonical (deterministic) view of reports and
//! metrics: a content-addressed cache makes wall-clock noise observable
//! (a warm hit would otherwise return some *other* run's timings), so the
//! served artifact is defined to be the part that is a pure function of
//! the request. See `docs/SERVING.md` for the protocol reference.

#![deny(missing_docs)]

use crate::cache::{CacheKey, ResultCache};
use crate::fleet::{
    supervise, AppOutcome, AppReport, FleetJob, FleetPolicy, JobError, JobWork, API_SCHEMA_VERSION,
};
use crate::obs::{FleetMetrics, ServeCounters};
use crate::pipeline::{analyze, AnalyzeOptions, Document, WebServer};
use ceres_instrument::Mode;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Tick budget for an injected hang when the policy does not set one
/// (mirrors the fleet harness): long enough for any real request, short
/// enough that the watchdog trips quickly.
const HANG_FALLBACK_TICKS: u64 = 2_000_000;

/// How often an idle connection handler wakes up to check for drain.
const READ_POLL: Duration = Duration::from_millis(200);

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

/// One request line. Every field is optional on the wire; `op` defaults
/// to `"analyze"` and the analysis fields default per [`ServeConfig`].
/// The analysis fields mirror the [`AnalyzeOptions`] builder one-to-one.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalysisRequest {
    /// `"analyze"` (default), `"ping"`, `"stats"`, or `"shutdown"`.
    pub op: Option<String>,
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<String>,
    /// Registry workload slug to analyze (mutually exclusive with
    /// `source`).
    pub app: Option<String>,
    /// Raw JavaScript (or HTML with inline scripts) to analyze.
    pub source: Option<String>,
    /// Instrumentation mode: `lightweight`, `loop-profile`, `dependence`.
    pub mode: Option<String>,
    /// Virtual-clock seed.
    pub seed: Option<u64>,
    /// Dependence-mode focus loop id.
    pub focus: Option<u32>,
    /// Event-processing cap.
    pub max_events: Option<u64>,
    /// Deterministic watchdog tick budget.
    pub max_ticks: Option<u64>,
    /// Registry workload scale factor.
    pub scale: Option<u32>,
    /// Fault to inject into this request's job (`panic`, `hang`, or
    /// `error`), exercising the supervisor; injected requests are never
    /// cached.
    pub inject: Option<String>,
}

/// Parse a mode name as accepted on the CLI and the wire. The single
/// source of truth — the shared bin args module delegates here.
pub fn parse_mode(s: &str) -> Result<Mode, String> {
    match s {
        "light" | "lightweight" | "lw" => Ok(Mode::Lightweight),
        "loop" | "loops" | "profile" | "loop-profile" => Ok(Mode::LoopProfile),
        "dep" | "deps" | "dependence" => Ok(Mode::Dependence),
        other => Err(format!(
            "unknown mode `{other}` (want lightweight|loop-profile|dependence)"
        )),
    }
}

/// Minimal JSON string escaping for hand-assembled envelope fields.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Assemble a response envelope around a payload fragment. The fragment
/// (everything after `cached`) is exactly what the cache stores, so a
/// warm hit is byte-identical in every field that describes the result;
/// only `id` and `cached` — which describe the *request* — may differ.
fn envelope(id: &str, ok: bool, cached: bool, fragment: &str) -> String {
    format!(
        "{{\"schema\":{API_SCHEMA_VERSION},\"id\":\"{}\",\"ok\":{ok},\"cached\":{cached},{fragment}}}",
        json_escape(id)
    )
}

/// An error response line (bad request, queue full, draining, ...).
fn error_line(id: &str, error: &str) -> String {
    envelope(
        id,
        false,
        false,
        &format!("\"error\":\"{}\"", json_escape(error)),
    )
}

// ---------------------------------------------------------------------
// Request resolution
// ---------------------------------------------------------------------

/// A request resolved to runnable work plus its cache identity.
pub struct ResolvedJob {
    /// Display name for the report.
    pub app: String,
    /// Short identifier.
    pub slug: String,
    /// Canonical source text — the content half of the [`CacheKey`]. For
    /// registry apps this is the full generated HTML page (scale baked
    /// in), so registry and inline requests for the same program share an
    /// entry.
    pub source: String,
    /// The supervised work closure.
    pub work: JobWork,
    /// Whether an `Ok` result may be stored. Fault-injected requests are
    /// not cacheable: their `attempts` count differs from a clean run, so
    /// storing them would leak injection artifacts into clean hits.
    pub cacheable: bool,
}

/// Maps a request to a [`ResolvedJob`]. The daemon supplies one that
/// knows the workload registry; [`source_resolver`] handles raw-source
/// requests only (`ceres-core` cannot depend on the workloads crate).
pub type Resolver =
    Arc<dyn Fn(&AnalysisRequest, &AnalyzeOptions) -> Result<ResolvedJob, String> + Send + Sync>;

/// Build the supervised work closure for analyzing raw source text: its
/// own `WebServer → instrument → Interp → Engine` stack per attempt,
/// exactly like a fleet job. Sources starting with `<` are served as
/// HTML (inline scripts extracted); anything else as plain JavaScript.
pub fn source_work(app: String, slug: String, source: String, opts: AnalyzeOptions) -> JobWork {
    Arc::new(move |worker, _attempt| {
        let start = std::time::Instant::now();
        let mut server = WebServer::new();
        let doc = if source.trim_start().starts_with('<') {
            Document::Html(source.clone())
        } else {
            Document::Js(source.clone())
        };
        server.publish("request.html", doc);
        let run = analyze(
            &server,
            "request.html",
            opts.clone(),
            Box::new(|_, _| Ok(())),
        )
        .map_err(|c| JobError::from_control(&c))?;
        let mut report = AppReport::from_run(&app, &slug, opts.mode, &run);
        report.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        report.worker = worker;
        Ok(report)
    })
}

/// Wrap `inner` with an injected fault (`panic` | `hang` | `error`),
/// mirroring the fleet's seeded harness: `panic` unwinds every attempt,
/// `hang` spins the interpreter until the tick watchdog fires, `error`
/// reports a transient failure on the first attempt and then lets the
/// real work run — exercising panic isolation, watchdog cancellation,
/// and retry respectively.
pub fn inject_fault(
    kind: &str,
    slug: &str,
    policy: &FleetPolicy,
    inner: JobWork,
) -> Result<JobWork, String> {
    let slug = slug.to_string();
    let budget = policy.tick_budget.unwrap_or(HANG_FALLBACK_TICKS);
    match kind {
        "panic" => Ok(Arc::new(move |_, _| {
            panic!("injected fault: panic in {slug}")
        })),
        "hang" => Ok(Arc::new(move |_, _| {
            let mut interp = ceres_interp::Interp::new(2015);
            interp.max_ticks = Some(budget);
            match interp.eval_source("for (;;) {}") {
                Err(c) => Err(JobError::from_control(&c)),
                Ok(()) => Err(JobError::Fatal(
                    "injected hang terminated without tripping".to_string(),
                )),
            }
        })),
        "error" => Ok(Arc::new(move |worker, attempt| {
            if attempt == 1 {
                Err(JobError::Transient(format!(
                    "injected fault: transient error in {slug}"
                )))
            } else {
                inner(worker, attempt)
            }
        })),
        other => Err(format!(
            "unknown inject kind `{other}` (want panic|hang|error)"
        )),
    }
}

/// A resolver for raw-source requests only (no workload registry):
/// rejects `app` requests. Used by core tests; the daemon layers the
/// registry on top of the same [`source_work`]/[`inject_fault`] pieces.
pub fn source_resolver(policy: FleetPolicy) -> Resolver {
    Arc::new(move |req, opts| {
        if req.app.is_some() {
            return Err("this server has no workload registry; send `source`".to_string());
        }
        let source = req
            .source
            .clone()
            .ok_or_else(|| "request needs `app` or `source`".to_string())?;
        let slug = "inline".to_string();
        let mut work = source_work(
            "inline".to_string(),
            slug.clone(),
            source.clone(),
            opts.clone(),
        );
        let cacheable = req.inject.is_none();
        if let Some(kind) = &req.inject {
            work = inject_fault(kind, &slug, &policy, work)?;
        }
        Ok(ResolvedJob {
            app: "inline".to_string(),
            slug,
            source,
            work,
            cacheable,
        })
    })
}

/// Build [`AnalyzeOptions`] from a request plus the server defaults.
/// Exposed so the daemon's resolver and the server core agree on exactly
/// one mapping (and tests can construct the matching [`CacheKey`]).
pub fn request_options(
    req: &AnalysisRequest,
    config: &ServeConfig,
) -> Result<AnalyzeOptions, String> {
    let mode = match &req.mode {
        Some(m) => parse_mode(m)?,
        None => config.default_mode,
    };
    let mut b = AnalyzeOptions::builder()
        .mode(mode)
        .seed(req.seed.unwrap_or(config.default_seed))
        .focus(req.focus.map(ceres_ast::LoopId))
        .max_ticks(req.max_ticks.or(config.policy.tick_budget))
        .wall_budget(config.policy.wall_budget.checked_div(2));
    if let Some(me) = req.max_events {
        b = b.max_events(me as usize);
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// Server knobs. `Default` gives a loopback-friendly test configuration;
/// the daemon overrides from its flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queued jobs.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects immediately.
    pub queue_capacity: usize,
    /// Result-cache capacity, in entries.
    pub cache_capacity: usize,
    /// Supervision policy for every served job.
    pub policy: FleetPolicy,
    /// Mode used when a request omits `mode`.
    pub default_mode: Mode,
    /// Seed used when a request omits `seed`.
    pub default_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            policy: FleetPolicy::default(),
            default_mode: Mode::LoopProfile,
            default_seed: 2015,
        }
    }
}

/// One queued unit of work: the supervised job, where to store the
/// result, and where to send the response fragment.
struct QueuedJob {
    job: FleetJob,
    key: CacheKey,
    cacheable: bool,
    reply: mpsc::Sender<(bool, String)>,
}

/// Queue state under the mutex: jobs plus the open/draining latch.
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    /// False once drain begins: workers exit when the queue is empty.
    open: bool,
}

/// Everything shared between the accept loop, connection handlers, and
/// workers.
struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: Mutex<ResultCache>,
    counters: Mutex<ServeCounters>,
    draining: AtomicBool,
    config: ServeConfig,
    resolver: Resolver,
    addr: SocketAddr,
}

/// Poison-proof lock (a panicking thread must not wedge the server).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn bump(&self, f: impl FnOnce(&mut ServeCounters)) {
        f(&mut relock(&self.counters));
    }

    /// Build the result fragment for a finished job. `Ok` outcomes carry
    /// the canonical report + deterministic single-run metrics; failures
    /// carry the status label and detail. Compact JSON throughout — the
    /// protocol is line-delimited.
    fn result_fragment(&self, key: &CacheKey, outcome: &AppOutcome) -> (bool, String) {
        let head = format!(
            "\"key\":\"{}\",\"app\":\"{}\",\"slug\":\"{}\",\"status\":\"{}\",\"attempts\":{}",
            key.fingerprint(),
            json_escape(&outcome.app),
            json_escape(&outcome.slug),
            json_escape(&outcome.status.label()),
            outcome.attempts,
        );
        match &outcome.report {
            Some(report) => {
                let canonical = report.canonical();
                let metrics = FleetMetrics::single(
                    &canonical.app,
                    &canonical.slug,
                    &canonical.mode,
                    &canonical.obs,
                    true,
                );
                let report_json = serde_json::to_string(&canonical).expect("AppReport serializes");
                let metrics_json =
                    serde_json::to_string(&metrics).expect("FleetMetrics serializes");
                (
                    true,
                    format!("{head},\"report\":{report_json},\"metrics\":{metrics_json}"),
                )
            }
            None => {
                let detail = outcome.status.detail().unwrap_or("");
                (
                    false,
                    format!("{head},\"error\":\"{}\"", json_escape(detail)),
                )
            }
        }
    }
}

/// Handle to a running server: the bound address plus the threads to
/// join. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`] or send a `shutdown` op.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Snapshot of the serving counters.
    pub fn counters(&self) -> ServeCounters {
        *relock(&self.shared.counters)
    }

    /// Begin a graceful drain and wait for it to complete: stop
    /// accepting, reject new analyze requests, finish everything queued
    /// or in flight, then join all threads.
    pub fn shutdown(mut self) {
        begin_drain(&self.shared);
        self.join_threads();
    }

    /// Wait until a client-initiated `shutdown` op drains the server.
    pub fn join(mut self) -> ServeCounters {
        self.join_threads();
        *relock(&self.shared.counters)
    }

    fn join_threads(&mut self) {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Flip the server into draining mode: latch the flag, close the queue
/// (workers exit once it is empty), and poke the accept loop awake with
/// a throwaway self-connection.
fn begin_drain(shared: &Arc<Shared>) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return; // already draining
    }
    {
        let mut q = relock(&shared.queue);
        q.open = false;
    }
    shared.available.notify_all();
    // Unblock `accept()`; the loop re-checks `draining` per connection.
    let _ = TcpStream::connect(shared.addr);
}

/// Start serving on `listener` (bind it yourself; `127.0.0.1:0` works
/// for tests). Spawns the accept loop and `config.workers` job workers,
/// then returns immediately.
pub fn serve(listener: TcpListener, config: ServeConfig, resolver: Resolver) -> ServerHandle {
    let addr = listener.local_addr().expect("listener has a local addr");
    let shared = Arc::new(Shared {
        queue: Mutex::new(QueueState {
            jobs: VecDeque::new(),
            open: true,
        }),
        available: Condvar::new(),
        cache: Mutex::new(ResultCache::new(config.cache_capacity)),
        counters: Mutex::new(ServeCounters::default()),
        draining: AtomicBool::new(false),
        config: config.clone(),
        resolver,
        addr,
    });

    let workers = (0..config.workers.max(1))
        .map(|worker_id| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("jsceresd-worker-{worker_id}"))
                .spawn(move || worker_loop(&shared, worker_id))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("jsceresd-accept".to_string())
            .spawn(move || accept_loop(listener, &shared))
            .expect("spawn accept loop")
    };

    ServerHandle {
        shared,
        accept: Some(accept),
        workers,
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        if let Ok(h) = std::thread::Builder::new()
            .name("jsceresd-conn".to_string())
            .spawn(move || handle_connection(stream, &shared))
        {
            handlers.push(h);
        }
    }
    // Drain: wait for every connection handler to write its last
    // response and hang up (their read loops poll `draining`).
    for h in handlers {
        let _ = h.join();
    }
}

fn worker_loop(shared: &Arc<Shared>, worker_id: usize) {
    loop {
        let item = {
            let mut q = relock(&shared.queue);
            loop {
                if let Some(item) = q.jobs.pop_front() {
                    break Some(item);
                }
                if !q.open {
                    break None;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(item) = item else { break };
        let outcome = supervise(&item.job, worker_id, &shared.config.policy);
        let ticks = outcome
            .report
            .as_ref()
            .map(|r| r.obs.counters.interp_ticks)
            .unwrap_or(0);
        let (ok, fragment) = shared.result_fragment(&item.key, &outcome);
        let fragment = if ok && item.cacheable {
            // First-writer-wins: concurrent cold misses on the same key
            // converge on one stored byte sequence.
            relock(&shared.cache).insert_or_get(&item.key, fragment)
        } else {
            fragment
        };
        shared.bump(|c| {
            c.interp_ticks += ticks;
            if ok {
                c.jobs_ok += 1;
            } else {
                c.jobs_failed += 1;
            }
        });
        let _ = item.reply.send((ok, fragment));
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle poll: once draining, stop waiting for more input.
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(line.trim(), shared);
        if writer
            .write_all(format!("{response}\n").as_bytes())
            .is_err()
        {
            return;
        }
        let _ = writer.flush();
    }
}

/// Dispatch one request line to one response line.
fn handle_line(line: &str, shared: &Arc<Shared>) -> String {
    let req: AnalysisRequest = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => return error_line("", &format!("bad request: {e}")),
    };
    let id = req.id.clone().unwrap_or_default();
    match req.op.as_deref().unwrap_or("analyze") {
        "ping" => envelope(&id, true, false, "\"op\":\"ping\""),
        "stats" => stats_line(&id, shared),
        "shutdown" => {
            begin_drain(shared);
            envelope(&id, true, false, "\"op\":\"shutdown\",\"draining\":true")
        }
        "analyze" => handle_analyze(&req, &id, shared),
        other => error_line(&id, &format!("unknown op `{other}`")),
    }
}

fn stats_line(id: &str, shared: &Arc<Shared>) -> String {
    let counters = *relock(&shared.counters);
    let cache = relock(&shared.cache).stats();
    let queue_depth = relock(&shared.queue).jobs.len();
    let counters_json = serde_json::to_string(&counters).expect("ServeCounters serializes");
    envelope(
        id,
        true,
        false,
        &format!(
            "\"op\":\"stats\",\"counters\":{counters_json},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"len\":{},\"capacity\":{}}},\
             \"queue_depth\":{queue_depth},\"workers\":{},\"draining\":{}",
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.len,
            cache.capacity,
            shared.config.workers,
            shared.draining.load(Ordering::SeqCst),
        ),
    )
}

fn handle_analyze(req: &AnalysisRequest, id: &str, shared: &Arc<Shared>) -> String {
    let opts = match request_options(req, &shared.config) {
        Ok(o) => o,
        Err(e) => return error_line(id, &e),
    };
    let resolved = match (shared.resolver)(req, &opts) {
        Ok(r) => r,
        Err(e) => return error_line(id, &e),
    };
    shared.bump(|c| c.requests += 1);
    let key = CacheKey::of(&resolved.source, &opts, req.scale.unwrap_or(1));

    // Fault-injected requests bypass the cache in both directions: a hit
    // would skip the very supervisor path the injection exists to
    // exercise, and storing the result would leak injection artifacts.
    if resolved.cacheable {
        if let Some(fragment) = relock(&shared.cache).lookup(&key) {
            shared.bump(|c| c.cache_hits += 1);
            return envelope(id, true, true, &fragment);
        }
        shared.bump(|c| c.cache_misses += 1);
    }

    if shared.draining.load(Ordering::SeqCst) {
        shared.bump(|c| c.rejected_draining += 1);
        return error_line(id, "draining: not accepting new work");
    }

    let (tx, rx) = mpsc::channel();
    {
        let mut q = relock(&shared.queue);
        if !q.open {
            drop(q);
            shared.bump(|c| c.rejected_draining += 1);
            return error_line(id, "draining: not accepting new work");
        }
        if q.jobs.len() >= shared.config.queue_capacity {
            drop(q);
            shared.bump(|c| c.rejected_queue_full += 1);
            return error_line(id, "queue full: retry later");
        }
        q.jobs.push_back(QueuedJob {
            job: FleetJob {
                app: resolved.app,
                slug: resolved.slug,
                work: resolved.work,
            },
            key,
            cacheable: resolved.cacheable,
            reply: tx,
        });
        let depth = q.jobs.len() as u64;
        drop(q);
        shared.bump(|c| c.queue_peak_depth = c.queue_peak_depth.max(depth));
    }
    shared.available.notify_one();

    match rx.recv() {
        Ok((ok, fragment)) => envelope(id, ok, false, &fragment),
        Err(_) => error_line(id, "worker exited before finishing the job"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn start(config: ServeConfig) -> ServerHandle {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let policy = config.policy.clone();
        serve(listener, config, source_resolver(policy))
    }

    fn roundtrip(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("response");
        response.trim_end().to_string()
    }

    #[test]
    fn ping_and_unknown_op() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();
        let pong = roundtrip(addr, r#"{"op":"ping","id":"p1"}"#);
        assert!(pong.contains("\"ok\":true"), "{pong}");
        assert!(pong.contains("\"id\":\"p1\""), "{pong}");
        assert!(
            pong.contains(&format!("\"schema\":{API_SCHEMA_VERSION}")),
            "{pong}"
        );
        let bad = roundtrip(addr, r#"{"op":"never"}"#);
        assert!(bad.contains("\"ok\":false"), "{bad}");
        server.shutdown();
    }

    #[test]
    fn malformed_line_is_an_error_not_a_crash() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();
        let resp = roundtrip(addr, "this is not json");
        assert!(resp.contains("bad request"), "{resp}");
        // The server is still alive.
        let pong = roundtrip(addr, r#"{"op":"ping"}"#);
        assert!(pong.contains("\"ok\":true"), "{pong}");
        server.shutdown();
    }

    #[test]
    fn warm_hit_is_byte_identical_and_adds_no_ticks() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();
        let req = r#"{"id":"c","source":"var t = 0; for (var i = 0; i < 8; i++) { t += i; }","mode":"dependence","seed":7}"#;
        let cold = roundtrip(addr, req);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        assert!(cold.contains("\"cached\":false"), "{cold}");
        let ticks_after_cold = server.counters().interp_ticks;
        assert!(ticks_after_cold > 0, "cold run must interpret");

        let warm = roundtrip(addr, req);
        assert!(warm.contains("\"cached\":true"), "{warm}");
        // Byte-identity of everything after the request-specific prefix.
        let tail = |s: &str| s[s.find("\"key\":").expect("key field")..].to_string();
        assert_eq!(tail(&cold), tail(&warm), "payload must be byte-identical");
        assert_eq!(
            server.counters().interp_ticks,
            ticks_after_cold,
            "warm hit must not re-enter the interpreter"
        );
        assert_eq!(server.counters().cache_hits, 1);
        assert_eq!(server.counters().cache_misses, 1);
        server.shutdown();
    }

    #[test]
    fn different_options_miss_the_cache() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();
        let a = roundtrip(addr, r#"{"source":"var x = 1;","mode":"dependence"}"#);
        let b = roundtrip(addr, r#"{"source":"var x = 1;","mode":"loop-profile"}"#);
        let c = roundtrip(
            addr,
            r#"{"source":"var x = 1;","mode":"dependence","seed":9}"#,
        );
        for r in [&a, &b, &c] {
            assert!(r.contains("\"cached\":false"), "{r}");
        }
        assert_eq!(server.counters().cache_misses, 3);
        assert_eq!(server.counters().cache_hits, 0);
        server.shutdown();
    }

    #[test]
    fn injected_faults_exercise_the_supervisor_and_skip_the_cache() {
        let mut config = ServeConfig::default();
        config.policy.backoff = Duration::from_millis(1);
        let server = start(config);
        let addr = server.local_addr();

        // A panic is contained and reported, not fatal to the server.
        let p = roundtrip(addr, r#"{"source":"var x;","inject":"panic"}"#);
        assert!(p.contains("\"status\":\"panicked\""), "{p}");
        assert!(p.contains("\"ok\":false"), "{p}");

        // A transient error clears on retry; the result is real but must
        // not be cached (attempts differ from a clean run).
        let e = roundtrip(addr, r#"{"source":"var x;","inject":"error"}"#);
        assert!(e.contains("\"status\":\"ok\""), "{e}");
        assert!(e.contains("\"attempts\":2"), "{e}");
        let clean = roundtrip(addr, r#"{"source":"var x;"}"#);
        assert!(
            clean.contains("\"cached\":false"),
            "injected result leaked: {clean}"
        );
        assert!(clean.contains("\"attempts\":1"), "{clean}");

        // And the reverse leak: a warm cache entry must not short-circuit
        // a later injected request — the fault has to actually run.
        let e2 = roundtrip(addr, r#"{"source":"var x;","inject":"error"}"#);
        assert!(e2.contains("\"cached\":false"), "{e2}");
        assert!(e2.contains("\"attempts\":2"), "{e2}");

        assert_eq!(server.counters().jobs_failed, 1);
        assert_eq!(server.counters().jobs_ok, 3);
        server.shutdown();
    }

    #[test]
    fn concurrent_identical_requests_converge_on_one_payload() {
        let server = start(ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        });
        let addr = server.local_addr();
        let req = r#"{"source":"var s = 0; for (var i = 0; i < 5; i++) { s += i; }","mode":"dependence"}"#;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let req = req.to_string();
                std::thread::spawn(move || roundtrip(addr, &req))
            })
            .collect();
        let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let tail = |s: &str| s[s.find("\"key\":").expect("key field")..].to_string();
        let first = tail(&responses[0]);
        for r in &responses {
            assert!(r.contains("\"ok\":true"), "{r}");
            assert_eq!(tail(r), first, "all clients must see identical payloads");
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_in_flight_work_and_rejects_new() {
        let server = start(ServeConfig::default());
        let addr = server.local_addr();

        // Park a slow-ish job, then shut down while it may still be
        // queued or running; its client must still get a real response.
        let slow = std::thread::spawn(move || {
            roundtrip(
                addr,
                r#"{"id":"slow","source":"var t = 0; for (var i = 0; i < 2000; i++) { t += i; }"}"#,
            )
        });
        // Give the slow request a moment to enqueue before draining.
        std::thread::sleep(Duration::from_millis(50));
        let bye = roundtrip(addr, r#"{"op":"shutdown"}"#);
        assert!(bye.contains("\"draining\":true"), "{bye}");

        let slow_response = slow.join().unwrap();
        assert!(
            slow_response.contains("\"ok\":true") || slow_response.contains("draining"),
            "in-flight client must get a definitive answer: {slow_response}"
        );
        let counters = server.join();
        // New connections are refused or reset after the drain; either
        // way the server threads have all exited by now.
        assert!(counters.requests >= 1);
    }
}
