//! The JS-CERES analysis engine.
//!
//! One [`Engine`] instance backs one instrumented run. The `__ceres_*` host
//! functions registered by [`attach_engine`] feed it: loop enter/iter/exit
//! maintain the characterization stack and per-loop statistics; the
//! dependence hooks maintain stamps, snapshots and warnings; tagged host
//! objects (DOM/Canvas/WebGL) are attributed to the loops open at access
//! time via the interpreter's [`Monitor`].

use crate::stack::{
    characterize_write, empty_stamp, flow_dependence, is_problematic, Characterization, StackEntry,
    Stamp,
};
use crate::welford::Welford;
use ceres_ast::{LoopId, LoopInfo};
use ceres_instrument::{hooks, Mode};
use ceres_interp::{ops, CallCtx, Interp, JsResult, Monitor, Value};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;

/// Per-syntactic-loop statistics (paper Sec. 3.2).
#[derive(Debug, Clone, Default)]
pub struct LoopRecord {
    /// "the number of times it is encountered at runtime".
    pub instances: u64,
    /// Trip count per instance (total/avg/variance via Welford).
    pub trips: Welford,
    /// Running time per instance, in virtual-clock ticks (includes nested
    /// loops, as in the paper's loop-nest accounting).
    pub time_ticks: Welford,
    /// Set when recursion re-entered this loop before it exited; the paper
    /// "raises a warning, and discards the analysis results for the
    /// affected loop nest".
    pub recursion_tainted: bool,
}

/// Kinds of dependence warnings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WarningKind {
    /// (a) write to a variable declared outside the current iteration.
    VarWrite,
    /// (b) write to a property of an object shared across iterations.
    SharedPropWrite,
    /// (c) read of a property written in a different iteration (flow/RAW).
    FlowRead,
    /// Extension: write-after-write on the same property location observed
    /// across iterations (output dependence evidence).
    WawWrite,
    /// Recursion grew the loop stack; results for the nest are discarded.
    Recursion,
}

impl WarningKind {
    pub fn describe(&self) -> &'static str {
        match self {
            WarningKind::VarWrite => "write to variable declared outside the loop iteration",
            WarningKind::SharedPropWrite => "write to property of object shared between iterations",
            WarningKind::FlowRead => "read of property written in a different iteration (flow)",
            WarningKind::WawWrite => "repeated write to the same property location (output)",
            WarningKind::Recursion => "recursive call re-entered the loop; nest results discarded",
        }
    }
}

/// One (deduplicated) dependence warning.
#[derive(Debug, Clone)]
pub struct Warning {
    pub kind: WarningKind,
    /// Human-readable subject: `p`, `com.x`, `data[*]`, `bodies[]`, …
    pub subject: String,
    pub characterization: Characterization,
    /// Write-op spelling for variable writes ("=", "+=", "++", "init", …).
    pub op: Option<String>,
    /// The top-level loop open when the warning fired (Table 3 nest).
    pub nest_root: LoopId,
    /// How many dynamic accesses collapsed into this warning.
    pub count: u64,
}

/// Key-diversity statistics per written subject; used by the difficulty
/// classifier to tell disjoint writes (`data[i]`, distinct `i` per
/// iteration) from conflicting ones (`com.x` every iteration).
#[derive(Debug, Clone, Default)]
pub struct SubjectStats {
    pub writes: u64,
    /// Innermost (loop, instance) the current window belongs to.
    ctx: Option<(LoopId, u64)>,
    ctx_writes: u64,
    ctx_locations: HashSet<(u64, String)>,
    /// Sum of per-instance disjointness ratios and window count.
    ratio_sum: f64,
    windows: u64,
}

const KEYSET_CAP: usize = 4096;

impl SubjectStats {
    fn record(&mut self, obj_id: u64, key: &str, ctx: Option<(LoopId, u64)>) {
        self.writes += 1;
        if self.ctx != ctx {
            self.fold_window();
            self.ctx = ctx;
        }
        self.ctx_writes += 1;
        if self.ctx_locations.len() < KEYSET_CAP {
            self.ctx_locations.insert((obj_id, key.to_string()));
        }
    }

    fn fold_window(&mut self) {
        if self.ctx_writes > 0 {
            self.ratio_sum += (self.ctx_locations.len() as f64 / self.ctx_writes as f64).min(1.0);
            self.windows += 1;
        }
        self.ctx_writes = 0;
        self.ctx_locations.clear();
    }

    /// Mean, over innermost loop *instances*, of the fraction of writes
    /// that hit a distinct location within that instance. 1.0 ⇒ each
    /// iteration writes its own location (`out[i] = …`, or one field of a
    /// per-iteration object); near 0 ⇒ every iteration hits the same
    /// location (`acc.v = …`).
    pub fn disjointness(&self) -> f64 {
        let mut ratio_sum = self.ratio_sum;
        let mut windows = self.windows;
        if self.ctx_writes > 0 {
            ratio_sum += (self.ctx_locations.len() as f64 / self.ctx_writes as f64).min(1.0);
            windows += 1;
        }
        if windows == 0 {
            1.0
        } else {
            ratio_sum / windows as f64
        }
    }
}

/// The engine state shared by all hooks of one run.
pub struct Engine {
    pub mode: Mode,
    /// Loop id → source info (kind, line), from the instrumentation pass.
    pub loops: HashMap<LoopId, LoopInfo>,

    // --- observability (ceres_core::obs) ---
    /// Per-hook invocation counts for this run.
    pub tally: hooks::HookTally,
    /// Pushes onto the characterization stack (loop entries, including
    /// recursive re-entries).
    pub stack_pushes: u64,

    // --- characterization stack ---
    stack: Vec<StackEntry>,
    start_ticks: Vec<u64>,
    instance_counters: HashMap<LoopId, u64>,

    // --- loop profiling ---
    pub records: HashMap<LoopId, LoopRecord>,
    /// loop → top-level loop of the nest it ran inside.
    pub nest_root: HashMap<LoopId, LoopId>,

    // --- lightweight profiling ---
    lw_open: u64,
    lw_start: u64,
    /// Total ticks with ≥1 loop open (the paper's "time spent in loops").
    pub lw_loop_ticks: u64,

    // --- dependence analysis ---
    /// Restrict recording to nests containing this loop (the paper's
    /// "focus on a specific loop").
    pub focus: Option<LoopId>,
    binding_stamps: HashMap<u64, Stamp>,
    object_stamps: HashMap<u64, Stamp>,
    write_snapshots: HashMap<(u64, String), Stamp>,
    pub warnings: Vec<Warning>,
    warning_index: HashMap<(WarningKind, String, String), usize>,
    // key: (kind, subject|op, rendered characterization)
    pub subject_stats: HashMap<String, SubjectStats>,

    // --- runtime type observation (paper Sec. 2.4 / 4.2) ---
    /// (display name, binding id) → set of runtime types written *inside
    /// loops*. Keyed per binding so unrelated locals that share a name in
    /// different functions don't alias; a key with more than one type
    /// (ignoring undefined/null, per the paper's definition) is
    /// polymorphic. Property subjects use binding id 0.
    pub observed_types: HashMap<(String, u64), BTreeSet<&'static str>>,

    // --- task-parallelism limit study (Fortuna et al. baseline) ---
    /// Completed tasks in execution order.
    pub tasks: Vec<crate::tasks::TaskRecord>,
    task_depth: usize,

    // --- DOM attribution ---
    /// loop id → host-object tags accessed while it was open.
    pub dom_by_loop: HashMap<LoopId, BTreeSet<&'static str>>,
    /// Host accesses observed with no loop open.
    pub dom_outside_loops: u64,
}

impl Engine {
    pub fn new(mode: Mode, loops: Vec<LoopInfo>) -> Engine {
        Engine {
            mode,
            loops: loops.into_iter().map(|l| (l.id, l)).collect(),
            tally: hooks::HookTally::new(),
            stack_pushes: 0,
            stack: Vec::new(),
            start_ticks: Vec::new(),
            instance_counters: HashMap::new(),
            records: HashMap::new(),
            nest_root: HashMap::new(),
            lw_open: 0,
            lw_start: 0,
            lw_loop_ticks: 0,
            focus: None,
            binding_stamps: HashMap::new(),
            object_stamps: HashMap::new(),
            write_snapshots: HashMap::new(),
            warnings: Vec::new(),
            warning_index: HashMap::new(),
            subject_stats: HashMap::new(),
            observed_types: HashMap::new(),
            tasks: Vec::new(),
            task_depth: 0,
            dom_by_loop: HashMap::new(),
            dom_outside_loops: 0,
        }
    }

    /// Current stack as a stamp.
    fn stamp(&self) -> Stamp {
        Rc::from(self.stack.as_slice())
    }

    /// Is dependence recording active right now (inside a loop; inside the
    /// focused nest when a focus is set)?
    fn recording(&self) -> bool {
        if self.stack.is_empty() {
            return false;
        }
        match self.focus {
            None => true,
            Some(f) => self.stack.iter().any(|e| e.loop_id == f),
        }
    }

    // ---------------- loop hooks ----------------

    fn lw_enter(&mut self, now: u64) {
        if self.lw_open == 0 {
            self.lw_start = now;
        }
        self.lw_open += 1;
    }

    fn lw_exit(&mut self, now: u64) {
        if self.lw_open > 0 {
            self.lw_open -= 1;
            if self.lw_open == 0 {
                self.lw_loop_ticks += now - self.lw_start;
            }
        }
    }

    fn loop_enter(&mut self, id: LoopId, now: u64) {
        // Recursion detection (paper Sec. 3.3): same syntactic loop opened
        // again before it closed.
        if self.stack.iter().any(|e| e.loop_id == id) {
            let root = self.stack.first().map(|e| e.loop_id).unwrap_or(id);
            self.records.entry(id).or_default().recursion_tainted = true;
            self.records.entry(root).or_default().recursion_tainted = true;
            self.push_warning(Warning {
                kind: WarningKind::Recursion,
                subject: self
                    .loops
                    .get(&id)
                    .map(|l| l.display_name())
                    .unwrap_or_else(|| format!("{id}")),
                characterization: Vec::new(),
                op: None,
                nest_root: root,
                count: 1,
            });
        }
        let counter = self.instance_counters.entry(id).or_insert(0);
        *counter += 1;
        let instance = *counter;
        self.nest_root
            .entry(id)
            .or_insert_with(|| self.stack.first().map(|e| e.loop_id).unwrap_or(id));
        self.stack.push(StackEntry {
            loop_id: id,
            instance,
            iteration: 0,
        });
        self.stack_pushes += 1;
        self.start_ticks.push(now);
        // Lightweight totals also work in the richer modes so Table 2 can be
        // cross-checked against loop-profile runs.
        self.lw_enter(now);
    }

    fn iter(&mut self, id: LoopId) {
        // The hook sits at the top of the loop body, so the innermost open
        // loop is (in well-formed programs) the one being iterated. Scan
        // from the top for robustness under recursion taint.
        if let Some(e) = self.stack.iter_mut().rev().find(|e| e.loop_id == id) {
            e.iteration += 1;
        }
    }

    fn loop_exit(&mut self, id: LoopId, now: u64) {
        // Pop until we find the entry (robust under abnormal unwinding).
        while let Some(top) = self.stack.pop() {
            let start = self.start_ticks.pop().unwrap_or(now);
            let rec = self.records.entry(top.loop_id).or_default();
            rec.instances += 1;
            rec.trips.add(top.iteration as f64);
            rec.time_ticks.add((now - start) as f64);
            self.lw_exit(now);
            if top.loop_id == id {
                break;
            }
        }
    }

    // ---------------- dependence hooks ----------------

    fn stamp_binding(&mut self, binding_id: u64) {
        self.binding_stamps.insert(binding_id, self.stamp());
    }

    fn stamp_object(&mut self, obj_id: u64) {
        self.object_stamps.insert(obj_id, self.stamp());
    }

    fn push_warning(&mut self, w: Warning) {
        let render_key: String = w
            .characterization
            .iter()
            .map(|l| format!("{}:{:?}{:?}", l.loop_id, l.instance, l.iteration))
            .collect();
        let key = (
            w.kind,
            format!("{}|{}", w.subject, w.op.as_deref().unwrap_or("")),
            render_key,
        );
        match self.warning_index.get(&key) {
            Some(&i) => self.warnings[i].count += w.count,
            None => {
                self.warning_index.insert(key, self.warnings.len());
                self.warnings.push(w);
            }
        }
    }

    fn var_write(&mut self, binding_id: Option<u64>, name: &str, op: &str) {
        if !self.recording() {
            return;
        }
        let stamp = binding_id
            .and_then(|id| self.binding_stamps.get(&id).cloned())
            .unwrap_or_else(
                // Unstamped binding (implicit global, host-provided):
                // conservatively "created before all loops".
                empty_stamp,
            );
        let c = characterize_write(&stamp, &self.stack);
        if is_problematic(&c) {
            let root = self.stack[0].loop_id;
            self.push_warning(Warning {
                kind: WarningKind::VarWrite,
                subject: name.to_string(),
                characterization: c,
                op: Some(op.to_string()),
                nest_root: root,
                count: 1,
            });
        }
    }

    /// Property write: returns whether it was recorded (used by tests).
    #[allow(clippy::too_many_arguments)]
    fn prop_write(&mut self, obj_id: u64, key: &str, base: Option<(&str, Option<u64>)>, op: &str) {
        if !self.recording() {
            return;
        }
        let subject = subject_name(base.map(|b| b.0), key);
        // Effective stamp: of the object's creation stamp and the base
        // variable's binding stamp, take the one matching the *current*
        // stack deeper — i.e. the freshest context the location is reachable
        // from. This is what reproduces the paper's Fig. 6 output: `p.vX`
        // characterizes through `p`'s per-activation binding (stamped inside
        // the while), not through the particle object (created during
        // setup, before any of the open loops). See DESIGN.md §4.
        let obj_stamp = self
            .object_stamps
            .get(&obj_id)
            .cloned()
            .unwrap_or_else(empty_stamp);
        let base_stamp = base
            .and_then(|(_, id)| id)
            .and_then(|id| self.binding_stamps.get(&id).cloned());
        let eff = match base_stamp {
            Some(b)
                if matched_prefix_len(&b, &self.stack)
                    > matched_prefix_len(&obj_stamp, &self.stack) =>
            {
                b
            }
            _ => obj_stamp,
        };
        let c = characterize_write(&eff, &self.stack);
        let root = self.stack[0].loop_id;
        let ctx = self.stack.last().map(|e| (e.loop_id, e.instance));
        self.subject_stats
            .entry(subject.clone())
            .or_default()
            .record(obj_id, key, ctx);
        if is_problematic(&c) {
            self.push_warning(Warning {
                kind: WarningKind::SharedPropWrite,
                subject: subject.clone(),
                characterization: c,
                op: Some(op.to_string()),
                nest_root: root,
                count: 1,
            });
        }
        // Output-dependence evidence: same location written in another
        // iteration we are still inside of.
        let snap_key = (obj_id, key.to_string());
        if let Some(prev) = self.write_snapshots.get(&snap_key) {
            if let Some(c) = flow_dependence(prev, &self.stack) {
                self.push_warning(Warning {
                    kind: WarningKind::WawWrite,
                    subject,
                    characterization: c,
                    op: None,
                    nest_root: root,
                    count: 1,
                });
            }
        }
        self.write_snapshots.insert(snap_key, self.stamp());
    }

    fn prop_read(&mut self, obj_id: u64, key: &str, base: Option<&str>) {
        if !self.recording() {
            return;
        }
        let snap_key = (obj_id, key.to_string());
        if let Some(snapshot) = self.write_snapshots.get(&snap_key) {
            if let Some(c) = flow_dependence(snapshot, &self.stack) {
                let root = self.stack[0].loop_id;
                self.push_warning(Warning {
                    kind: WarningKind::FlowRead,
                    subject: subject_name(base, key),
                    characterization: c,
                    op: None,
                    nest_root: root,
                    count: 1,
                });
            }
        }
    }

    /// Record the runtime type written to `subject` (only inside loops —
    /// the paper inspects "polymorphic variable accesses … within the
    /// computationally-intensive loops").
    fn observe_type(&mut self, subject: &str, binding: u64, value: &Value) {
        if self.stack.is_empty() {
            return;
        }
        // The paper: "We do not consider a variable polymorphic if it
        // changes between defined, undefined, and null."
        let ty = match value {
            Value::Undefined | Value::Null => return,
            v => v.type_of(),
        };
        self.observed_types
            .entry((subject.to_string(), binding))
            .or_default()
            .insert(ty);
    }

    /// Subjects observed with more than one runtime type inside loops.
    pub fn polymorphic_subjects(&self) -> Vec<(String, Vec<&'static str>)> {
        let mut out: Vec<(String, Vec<&'static str>)> = self
            .observed_types
            .iter()
            .filter(|(_, tys)| tys.len() > 1)
            .map(|((s, _), tys)| (s.clone(), tys.iter().copied().collect()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Open a task (nested opens fold into the outermost).
    pub fn begin_task(&mut self, label: &str, now_ticks: u64) {
        self.task_depth += 1;
        if self.task_depth == 1 {
            self.tasks.push(crate::tasks::TaskRecord {
                label: label.to_string(),
                start_ticks: now_ticks,
                end_ticks: now_ticks,
                reads: std::collections::HashSet::new(),
                writes: std::collections::HashSet::new(),
            });
        }
    }

    /// Close the innermost task.
    pub fn end_task(&mut self, now_ticks: u64) {
        if self.task_depth > 0 {
            self.task_depth -= 1;
            if self.task_depth == 0 {
                if let Some(t) = self.tasks.last_mut() {
                    t.end_ticks = now_ticks;
                }
            }
        }
    }

    fn task_read(&mut self, location: u64) {
        if self.task_depth > 0 {
            if let Some(t) = self.tasks.last_mut() {
                t.reads.insert(location);
            }
        }
    }

    fn task_write(&mut self, location: u64) {
        if self.task_depth > 0 {
            if let Some(t) = self.tasks.last_mut() {
                t.writes.insert(location);
            }
        }
    }

    fn host_access_inner(&mut self, tag: &'static str) {
        if self.stack.is_empty() {
            self.dom_outside_loops += 1;
            return;
        }
        for e in &self.stack {
            self.dom_by_loop.entry(e.loop_id).or_default().insert(tag);
        }
    }

    // ---------------- results ----------------

    /// Depth of the open-loop stack (diagnostics).
    pub fn open_loops(&self) -> usize {
        self.stack.len()
    }

    /// Warnings attributed to the nest rooted at `root`.
    pub fn warnings_for_nest(&self, root: LoopId) -> Vec<&Warning> {
        self.warnings
            .iter()
            .filter(|w| w.nest_root == root)
            .collect()
    }
}

/// How many leading levels of `stamp` match `current` exactly (same loop,
/// instance, and iteration).
fn matched_prefix_len(stamp: &[StackEntry], current: &[StackEntry]) -> usize {
    stamp
        .iter()
        .zip(current)
        .take_while(|(s, c)| {
            s.loop_id == c.loop_id && s.instance == c.instance && s.iteration == c.iteration
        })
        .count()
}

/// Compose a warning subject: `p.vX`, `data[*]`, `com.x`, or `*.x` when the
/// base expression was not a variable. Numeric keys collapse to `[*]` so
/// index sweeps produce one subject.
fn subject_name(base: Option<&str>, key: &str) -> String {
    let base = base.unwrap_or("*");
    if key.parse::<f64>().is_ok() {
        format!("{base}[*]")
    } else {
        format!("{base}.{key}")
    }
}

/// Wrapper implementing the interpreter's [`Monitor`] for DOM attribution.
struct EngineMonitor(Rc<std::cell::RefCell<Engine>>);

impl Monitor for EngineMonitor {
    fn host_access(&self, tag: &'static str, _op: &str) {
        // May be called re-entrantly from hooks only *after* they dropped
        // their borrow (hook discipline: compute, drop, call interp).
        if let Ok(mut eng) = self.0.try_borrow_mut() {
            eng.host_access_inner(tag);
        }
    }

    fn task_begin(&self, label: &str, now_ticks: u64) {
        if let Ok(mut eng) = self.0.try_borrow_mut() {
            eng.begin_task(label, now_ticks);
        }
    }

    fn task_end(&self, now_ticks: u64) {
        if let Ok(mut eng) = self.0.try_borrow_mut() {
            eng.end_task(now_ticks);
        }
    }
}

/// Shared engine handle.
pub type EngineRef = Rc<std::cell::RefCell<Engine>>;

/// Create an engine for `mode`, register every `__ceres_*` hook and the DOM
/// monitor on `interp`, and return the shared handle.
pub fn attach_engine(interp: &mut Interp, mode: Mode, loops: Vec<LoopInfo>) -> EngineRef {
    let engine: EngineRef = Rc::new(std::cell::RefCell::new(Engine::new(mode, loops)));

    interp.monitor = Some(Rc::new(EngineMonitor(engine.clone())));

    let arg = |args: &[Value], i: usize| args.get(i).cloned().unwrap_or(Value::Undefined);
    let key_of = |v: &Value| ops::to_string(v);
    let opt_str = |v: &Value| match v {
        Value::Str(s) => Some(s.to_string()),
        _ => None,
    };

    // Tally indices are resolved once here; each hook then bumps its
    // counter with a single array add (the obs layer must not perturb the
    // overhead ledger it measures).
    let idx = hooks::hook_index;

    // --- lightweight ---
    {
        let eng = engine.clone();
        let i = idx(hooks::LW_ENTER);
        interp.register_native(hooks::LW_ENTER, move |interp, _ctx, _args| {
            let now = interp.clock.now_ticks();
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            e.lw_enter(now);
            Ok(Value::Undefined)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::LW_EXIT);
        interp.register_native(hooks::LW_EXIT, move |interp, _ctx, _args| {
            let now = interp.clock.now_ticks();
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            e.lw_exit(now);
            Ok(Value::Undefined)
        });
    }

    // --- loop profiling ---
    {
        let eng = engine.clone();
        let i = idx(hooks::LOOP_ENTER);
        interp.register_native(hooks::LOOP_ENTER, move |interp, _ctx, args| {
            let id = LoopId(ops::to_number(&arg(args, 0)) as u32);
            let now = interp.clock.now_ticks();
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            e.loop_enter(id, now);
            Ok(Value::Undefined)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::ITER);
        interp.register_native(hooks::ITER, move |_interp, _ctx, args| {
            let id = LoopId(ops::to_number(&arg(args, 0)) as u32);
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            e.iter(id);
            Ok(Value::Undefined)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::LOOP_EXIT);
        interp.register_native(hooks::LOOP_EXIT, move |interp, _ctx, args| {
            let id = LoopId(ops::to_number(&arg(args, 0)) as u32);
            let now = interp.clock.now_ticks();
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            e.loop_exit(id, now);
            Ok(Value::Undefined)
        });
    }

    // --- dependence ---
    {
        let eng = engine.clone();
        let i = idx(hooks::DECLVARS);
        interp.register_native(hooks::DECLVARS, move |interp, ctx, args| {
            // Stamping bindings copies the loop stack per name.
            interp.clock.tick(2 * args.len() as u64);
            eng.borrow_mut().tally.bump(i);
            let Some(scope) = &ctx.caller_scope else {
                return Ok(Value::Undefined);
            };
            let mut eng = eng.borrow_mut();
            for a in args {
                if let Value::Str(name) = a {
                    if let Some(b) = scope.lookup(name) {
                        let id = b.borrow().id;
                        eng.stamp_binding(id);
                    }
                }
            }
            Ok(Value::Undefined)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::WRVAR);
        interp.register_native(hooks::WRVAR, move |interp, ctx, args| {
            // Scope lookup + stamp diff against the current stack.
            interp.clock.tick(8);
            eng.borrow_mut().tally.bump(i);
            let name = key_of(&arg(args, 0));
            let op = opt_str(&arg(args, 1)).unwrap_or_else(|| "=".to_string());
            let binding_id = ctx
                .caller_scope
                .as_ref()
                .and_then(|s| s.lookup(&name))
                .map(|b| b.borrow().id);
            let mut e = eng.borrow_mut();
            if let Some(id) = binding_id {
                e.task_write(crate::tasks::binding_location(id));
            }
            e.var_write(binding_id, &name, &op);
            // When the rewriter threads the assigned value through the
            // hook (3-argument form), observe its runtime type and pass
            // it along unchanged.
            if args.len() > 2 {
                let value = arg(args, 2);
                e.observe_type(&name, binding_id.unwrap_or(0), &value);
                return Ok(value);
            }
            Ok(Value::Undefined)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::WRAP);
        interp.register_native(hooks::WRAP, move |interp, _ctx, args| {
            // The Proxy wrap: snapshot the loop stack for the new object.
            interp.clock.tick(4);
            let v = arg(args, 0);
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            if let Value::Object(o) = &v {
                e.stamp_object(o.id());
            }
            Ok(v)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::GETPROP);
        interp.register_native(hooks::GETPROP, move |interp, _ctx, args| {
            // Snapshot lookup + flow-dependence diff.
            interp.clock.tick(6);
            let obj = arg(args, 0);
            let key = key_of(&arg(args, 1));
            let base = opt_str(&arg(args, 2));
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            if let Value::Object(o) = &obj {
                e.task_read(crate::tasks::object_location(o.id()));
                e.prop_read(o.id(), &key, base.as_deref());
            }
            drop(e);
            interp.get_property(&obj, &key)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::SETPROP);
        interp.register_native(hooks::SETPROP, move |interp, ctx, args| {
            // Effective-stamp diff, WAW check, snapshot update.
            interp.clock.tick(10);
            eng.borrow_mut().tally.bump(i);
            let obj = arg(args, 0);
            let key = key_of(&arg(args, 1));
            let value = arg(args, 2);
            let base = opt_str(&arg(args, 3));
            record_prop_write(&eng, ctx, &obj, &key, base.as_deref(), "=");
            eng.borrow_mut()
                .observe_type(&subject_name(base.as_deref(), &key), 0, &value);
            interp.set_property(&obj, &key, value.clone())?;
            Ok(value)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::SETPROP2);
        interp.register_native(hooks::SETPROP2, move |interp, ctx, args| {
            // Read check + write check + compound evaluation.
            interp.clock.tick(14);
            eng.borrow_mut().tally.bump(i);
            let obj = arg(args, 0);
            let key = key_of(&arg(args, 1));
            let op = key_of(&arg(args, 2));
            let value = arg(args, 3);
            let base = opt_str(&arg(args, 4));
            // Compound assignment reads the old value first.
            if let Value::Object(o) = &obj {
                eng.borrow_mut().prop_read(o.id(), &key, base.as_deref());
            }
            let old = interp.get_property(&obj, &key)?;
            let new = apply_binop(&op, &old, &value);
            record_prop_write(&eng, ctx, &obj, &key, base.as_deref(), &op);
            interp.set_property(&obj, &key, new.clone())?;
            Ok(new)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::UPDATE_PROP);
        interp.register_native(hooks::UPDATE_PROP, move |interp, ctx, args| {
            interp.clock.tick(12);
            eng.borrow_mut().tally.bump(i);
            let obj = arg(args, 0);
            let key = key_of(&arg(args, 1));
            let delta = ops::to_number(&arg(args, 2));
            let prefix = ops::to_number(&arg(args, 3)) != 0.0;
            let base = opt_str(&arg(args, 4));
            if let Value::Object(o) = &obj {
                eng.borrow_mut().prop_read(o.id(), &key, base.as_deref());
            }
            let old = ops::to_number(&interp.get_property(&obj, &key)?);
            let new = old + delta;
            record_prop_write(&eng, ctx, &obj, &key, base.as_deref(), "++");
            interp.set_property(&obj, &key, Value::Num(new))?;
            Ok(Value::Num(if prefix { new } else { old }))
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::MCALL);
        interp.register_native(hooks::MCALL, move |interp, ctx, args| {
            interp.clock.tick(8);
            eng.borrow_mut().tally.bump(i);
            let obj = arg(args, 0);
            let key = key_of(&arg(args, 1));
            let base = opt_str(&arg(args, 2));
            let call_args: Vec<Value> = args.iter().skip(3).cloned().collect();
            if let Value::Object(o) = &obj {
                let mut e = eng.borrow_mut();
                e.task_read(crate::tasks::object_location(o.id()));
                e.prop_read(o.id(), &key, base.as_deref());
                // Array-mutating methods are element writes in disguise:
                // `results.push(x)` inside a loop is an output dependence on
                // the shared array.
                if o.is_array() && MUTATING_ARRAY_METHODS.contains(&key.as_str()) {
                    e.task_write(crate::tasks::object_location(o.id()));
                    e.prop_write(
                        o.id(),
                        "<elements>",
                        base.as_deref().map(|b| (b, None)),
                        "push",
                    );
                }
            }
            // Resolve the binding id for the base variable (for the
            // effective-stamp refinement) before calling out.
            let f = interp.get_property(&obj, &key)?;
            interp.call_value(&f, obj, &call_args, ctx.caller_scope.clone())
        });
    }

    engine
}

/// Array methods that mutate the receiver's elements.
const MUTATING_ARRAY_METHODS: &[&str] = &[
    "push", "pop", "shift", "unshift", "splice", "sort", "reverse",
];

/// Shared write-recording path for SETPROP/SETPROP2/UPDATE_PROP.
fn record_prop_write(
    eng: &EngineRef,
    ctx: &CallCtx,
    obj: &Value,
    key: &str,
    base: Option<&str>,
    op: &str,
) {
    let Value::Object(o) = obj else { return };
    let base_with_id = base.map(|name| {
        let id = ctx
            .caller_scope
            .as_ref()
            .and_then(|s| s.lookup(name))
            .map(|b| b.borrow().id);
        (name, id)
    });
    let mut e = eng.borrow_mut();
    e.task_write(crate::tasks::object_location(o.id()));
    e.prop_write(o.id(), key, base_with_id, op);
}

/// Evaluate `old op value` for compound property assignment.
fn apply_binop(op: &str, old: &Value, value: &Value) -> Value {
    use ceres_interp::ops::*;
    match op {
        "+" => js_add(old, value),
        "-" => Value::Num(to_number(old) - to_number(value)),
        "*" => Value::Num(to_number(old) * to_number(value)),
        "/" => Value::Num(to_number(old) / to_number(value)),
        "%" => Value::Num(to_number(old) % to_number(value)),
        "<<" => Value::Num((to_int32(old) << (to_uint32(value) & 31)) as f64),
        ">>" => Value::Num((to_int32(old) >> (to_uint32(value) & 31)) as f64),
        ">>>" => Value::Num((to_uint32(old) >> (to_uint32(value) & 31)) as f64),
        "&" => Value::Num((to_int32(old) & to_int32(value)) as f64),
        "|" => Value::Num((to_int32(old) | to_int32(value)) as f64),
        "^" => Value::Num((to_int32(old) ^ to_int32(value)) as f64),
        _ => js_add(old, value),
    }
}

/// Run `source` under `mode` on a fresh interpreter with DOM installed;
/// convenience used by tests, examples, and the pipeline.
pub fn run_instrumented(source: &str, mode: Mode, seed: u64) -> JsResult<(Interp, EngineRef)> {
    let (instrumented, loops) = ceres_instrument::instrument_source(source, mode)
        .map_err(|e| ceres_interp::Control::Fatal(format!("instrumentation parse error: {e}")))?;
    let mut interp = Interp::new(seed);
    ceres_dom::install_dom(&mut interp);
    let engine = attach_engine(&mut interp, mode, loops);
    interp.eval_source(&instrumented)?;
    Ok((interp, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::render;

    fn run(src: &str, mode: Mode) -> (Interp, EngineRef) {
        run_instrumented(src, mode, 42).unwrap_or_else(|e| panic!("run failed: {e:?}"))
    }

    #[test]
    fn lightweight_counts_loop_time() {
        let (interp, eng) = run(
            "var s = 0;\n\
             for (var i = 0; i < 1000; i++) { s += i; }\n\
             var t = 0;\n\
             for (var j = 0; j < 10; j++) { t += j; }",
            Mode::Lightweight,
        );
        let eng = eng.borrow();
        assert!(eng.lw_loop_ticks > 0);
        assert!(eng.lw_loop_ticks < interp.clock.now_ticks());
        // The 1000-iteration loop dominates: loop time is most of total.
        assert!(eng.lw_loop_ticks as f64 > 0.8 * interp.clock.now_ticks() as f64);
    }

    #[test]
    fn loop_profile_counts_instances_and_trips() {
        let (_interp, eng) = run(
            "function work(n) {\n\
               var s = 0;\n\
               for (var i = 0; i < n; i++) { s += i; }\n\
               return s;\n\
             }\n\
             for (var r = 0; r < 5; r++) { work(10); }",
            Mode::LoopProfile,
        );
        let eng = eng.borrow();
        // Loop 1 = the inner for (source order), loop 2 = the outer for.
        let inner = &eng.records[&LoopId(1)];
        let outer = &eng.records[&LoopId(2)];
        assert_eq!(inner.instances, 5);
        assert_eq!(inner.trips.mean(), 10.0);
        assert_eq!(inner.trips.total(), 50.0);
        assert_eq!(outer.instances, 1);
        assert_eq!(outer.trips.mean(), 5.0);
        // Outer nest time includes inner time.
        assert!(outer.time_ticks.total() >= inner.time_ticks.total());
        // Nest attribution: inner ran inside outer.
        assert_eq!(eng.nest_root[&LoopId(1)], LoopId(2));
        assert_eq!(eng.nest_root[&LoopId(2)], LoopId(2));
    }

    #[test]
    fn trip_variance_via_welford() {
        let (_interp, eng) = run(
            "for (var r = 1; r <= 4; r++) {\n\
               for (var i = 0; i < r * 10; i++) { }\n\
             }",
            Mode::LoopProfile,
        );
        let eng = eng.borrow();
        let inner = &eng.records[&LoopId(2)];
        assert_eq!(inner.instances, 4);
        assert_eq!(inner.trips.mean(), 25.0); // (10+20+30+40)/4
        assert!((inner.trips.stddev() - 125.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn break_and_return_still_record_exits() {
        let (_interp, eng) = run(
            "function f() {\n\
               for (var i = 0; i < 100; i++) {\n\
                 if (i === 3) { return i; }\n\
               }\n\
             }\n\
             f();\n\
             for (var j = 0; j < 100; j++) { if (j === 5) { break; } }",
            Mode::LoopProfile,
        );
        let eng = eng.borrow();
        assert_eq!(eng.open_loops(), 0, "stack must unwind cleanly");
        let f_loop = &eng.records[&LoopId(1)];
        let b_loop = &eng.records[&LoopId(2)];
        assert_eq!(f_loop.instances, 1);
        assert_eq!(f_loop.trips.mean(), 4.0); // iterations 1..=4 entered
        assert_eq!(b_loop.instances, 1);
        assert_eq!(b_loop.trips.mean(), 6.0);
    }

    #[test]
    fn recursion_detected_and_tainted() {
        let (_interp, eng) = run(
            "function rec(n) {\n\
               var s = 0;\n\
               for (var i = 0; i < 2; i++) {\n\
                 if (n > 0) { s += rec(n - 1); }\n\
               }\n\
               return s;\n\
             }\n\
             rec(3);",
            Mode::LoopProfile,
        );
        let eng = eng.borrow();
        assert!(eng.records[&LoopId(1)].recursion_tainted);
        assert!(eng
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::Recursion));
    }

    #[test]
    fn fig6_nbody_warnings() {
        // The paper's Fig. 6 program, with a concrete setup and 3 steps.
        let src = r#"
var dT = 0.01;
var bodies = [];
var setup;
for (setup = 0; setup < 4; setup++) {
  bodies.push({ x: setup, y: 0, vX: 0, vY: 0, fX: 1, fY: 1, m: 1 });
}
function Particle() { this.x = 0; this.y = 0; this.m = 0; }
function computeForces() { }
function step() {
  computeForces();
  var com = new Particle();
  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];
    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;
    p.x += p.vX * dT;
    p.y += p.vY * dT;
    com.m = com.m + p.m;
    com.x = (com.x * com.m + p.x * p.m) / (com.m + p.m);
    com.y = (com.y * com.m + p.y * p.m) / (com.m + p.m);
  }
  return com;
}
var steps = 0;
while (steps < 3) {
  var com = step();
  steps++;
}
"#;
        let (_interp, eng) = run(src, Mode::Dependence);
        let eng = eng.borrow();
        let loops = &eng.loops;

        // Loop ids in source order: 1 = setup for, 2 = the step() for,
        // 3 = the while.
        let find = |kind: WarningKind, subject: &str| {
            eng.warnings
                .iter()
                .find(|w| w.kind == kind && w.subject == subject)
                .unwrap_or_else(|| {
                    panic!(
                        "missing {kind:?} for {subject}; have: {:?}",
                        eng.warnings
                            .iter()
                            .map(|w| format!("{:?} {}", w.kind, w.subject))
                            .collect::<Vec<_>>()
                    )
                })
        };

        // (a) write to variable p: while ok ok -> for ok dependence.
        let wp = find(WarningKind::VarWrite, "p");
        let rendered = render(&wp.characterization, loops);
        assert!(
            rendered.starts_with("while(") && rendered.contains("ok ok -> for("),
            "unexpected characterization: {rendered}"
        );
        assert!(rendered.ends_with("ok dependence"), "{rendered}");

        // (b) writes to properties of p and com share the same shape.
        for subject in ["p.vX", "p.vY", "p.x", "p.y", "com.m", "com.x", "com.y"] {
            let w = find(WarningKind::SharedPropWrite, subject);
            let r = render(&w.characterization, loops);
            assert!(
                r.contains("ok ok -> for(") && r.ends_with("ok dependence"),
                "{subject}: {r}"
            );
        }

        // (c) flow reads of com.x / com.y / com.m.
        for subject in ["com.m", "com.x", "com.y"] {
            let w = find(WarningKind::FlowRead, subject);
            let r = render(&w.characterization, loops);
            assert!(
                r.contains("ok ok -> for(") && r.ends_with("ok dependence"),
                "flow {subject}: {r}"
            );
        }

        // The induction variable i is recorded as a var write with ++
        // (the `var i = 0` init is a separate "init" warning).
        assert!(eng.warnings.iter().any(|w| w.kind == WarningKind::VarWrite
            && w.subject == "i"
            && w.op.as_deref() == Some("++")));
    }

    #[test]
    fn private_iteration_locals_produce_no_warnings() {
        let (_interp, eng) = run(
            "function f(v) { var t = { s: 0 }; t.s = v * 2; return t.s; }\n\
             var out = 0;\n\
             for (var i = 0; i < 10; i++) { out += f(i); }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        // t is created and written entirely within one iteration: no
        // SharedPropWrite warning for t.s.
        assert!(
            !eng.warnings
                .iter()
                .any(|w| w.kind == WarningKind::SharedPropWrite && w.subject == "t.s"),
            "t.s wrongly flagged: {:?}",
            eng.warnings
        );
        // out is a reduction accumulator: flagged with op "+=".
        let w = eng
            .warnings
            .iter()
            .find(|w| w.kind == WarningKind::VarWrite && w.subject == "out")
            .expect("out flagged");
        assert_eq!(w.op.as_deref(), Some("+="));
    }

    #[test]
    fn disjoint_index_writes_have_high_disjointness() {
        let (_interp, eng) = run(
            "var data = new Float32Array(64);\n\
             for (var i = 0; i < 64; i++) { data[i] = i * 2; }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        let stats = eng.subject_stats.get("data[*]").expect("stats for data[*]");
        assert_eq!(stats.writes, 64);
        // one window, 64 writes to 64 distinct locations
        assert!(
            stats.disjointness() > 0.9,
            "disjointness {}",
            stats.disjointness()
        );
        // Conflicting writes to one field: low disjointness.
        let (_interp, eng) = run(
            "var acc = { v: 0 };\n\
             for (var i = 0; i < 64; i++) { acc.v = acc.v + i; }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        let stats = eng.subject_stats.get("acc.v").expect("stats for acc.v");
        assert!(
            stats.disjointness() < 0.1,
            "disjointness {}",
            stats.disjointness()
        );
        // And the read side is a flow dependence.
        assert!(eng
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::FlowRead && w.subject == "acc.v"));
    }

    #[test]
    fn array_push_in_loop_is_output_dependence() {
        let (_interp, eng) = run(
            "var results = [];\n\
             for (var i = 0; i < 8; i++) { results.push(i * i); }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        assert!(
            eng.warnings.iter().any(
                |w| w.kind == WarningKind::SharedPropWrite && w.subject == "results.<elements>"
            ),
            "push not flagged: {:?}",
            eng.warnings
                .iter()
                .map(|w| (w.kind, w.subject.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn focus_limits_recording_to_one_nest() {
        let src = "var a = { v: 0 };\n\
                   var b = { v: 0 };\n\
                   for (var i = 0; i < 4; i++) { a.v += i; }\n\
                   for (var j = 0; j < 4; j++) { b.v += j; }";
        // Focused on loop 2 (the second for): only b.v warnings appear.
        let (instrumented, loops) =
            ceres_instrument::instrument_source(src, Mode::Dependence).unwrap();
        let mut interp = Interp::new(42);
        ceres_dom::install_dom(&mut interp);
        let engine = attach_engine(&mut interp, Mode::Dependence, loops);
        engine.borrow_mut().focus = Some(LoopId(2));
        interp.eval_source(&instrumented).unwrap();
        let eng = engine.borrow();
        assert!(eng.warnings.iter().any(|w| w.subject == "b.v"));
        assert!(!eng.warnings.iter().any(|w| w.subject == "a.v"));
    }

    #[test]
    fn dom_accesses_attributed_to_open_loops() {
        let (_interp, eng) = run(
            "var el = document.getElementById(\"out\");\n\
             for (var i = 0; i < 5; i++) { el.innerHTML = \"i\" + i; }\n\
             for (var j = 0; j < 5; j++) { var x = j * 2; }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        assert!(eng
            .dom_by_loop
            .get(&LoopId(1))
            .map(|t| t.contains("dom"))
            .unwrap_or(false));
        assert!(!eng.dom_by_loop.contains_key(&LoopId(2)));
    }

    #[test]
    fn warnings_deduplicate_with_counts() {
        let (_interp, eng) = run(
            "var g = 0;\n\
             for (var i = 0; i < 50; i++) { g = i; }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        let w: Vec<_> = eng
            .warnings
            .iter()
            .filter(|w| w.kind == WarningKind::VarWrite && w.subject == "g")
            .collect();
        assert_eq!(w.len(), 1, "deduplicated");
        assert_eq!(w[0].count, 50);
    }

    #[test]
    fn mcall_preserves_receiver_semantics() {
        let (interp, _eng) = run(
            "var counter = { n: 0, bump: function () { this.n += 1; return this.n; } };\n\
             for (var i = 0; i < 3; i++) { counter.bump(); }\n\
             console.log(counter.n);",
            Mode::Dependence,
        );
        assert_eq!(interp.console, vec!["3"]);
    }

    #[test]
    fn instrumented_programs_compute_same_results() {
        // Semantics preservation: the same program, all four ways.
        let src = "var out = [];\n\
                   function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }\n\
                   for (var i = 0; i < 8; i++) { out.push(fib(i)); }\n\
                   console.log(out.join(\",\"));";
        let expected = "0,1,1,2,3,5,8,13";
        let mut plain = Interp::new(42);
        plain.eval_source(src).unwrap();
        assert_eq!(plain.console, vec![expected]);
        for mode in [Mode::Lightweight, Mode::LoopProfile, Mode::Dependence] {
            let (interp, _eng) = run(src, mode);
            assert_eq!(interp.console, vec![expected], "{mode:?}");
        }
    }
}

#[cfg(test)]
mod polymorphism_tests {
    use crate::engine::run_instrumented;
    use ceres_instrument::Mode;

    #[test]
    fn polymorphic_variable_in_loop_is_detected() {
        let (_interp, eng) = run_instrumented(
            "var x = 0;\n\
             var i;\n\
             for (i = 0; i < 6; i++) {\n\
               x = i % 2 === 0 ? i : \"s\" + i;\n\
             }",
            Mode::Dependence,
            1,
        )
        .unwrap();
        let eng = eng.borrow();
        let poly = eng.polymorphic_subjects();
        assert!(
            poly.iter()
                .any(|(s, tys)| s == "x" && tys.contains(&"number") && tys.contains(&"string")),
            "{poly:?}"
        );
    }

    #[test]
    fn monomorphic_and_nullable_variables_are_not_flagged() {
        let (_interp, eng) = run_instrumented(
            "var n = 0;\n\
             var maybe = null;\n\
             var i;\n\
             for (i = 0; i < 6; i++) {\n\
               n = i * 2;\n\
               maybe = i % 2 === 0 ? null : undefined;\n\
             }",
            Mode::Dependence,
            1,
        )
        .unwrap();
        let eng = eng.borrow();
        let poly = eng.polymorphic_subjects();
        assert!(poly.is_empty(), "{poly:?}");
        // n was observed, with exactly one type.
        let n_types: Vec<usize> = eng
            .observed_types
            .iter()
            .filter(|((name, _), _)| name == "n")
            .map(|(_, tys)| tys.len())
            .collect();
        assert_eq!(n_types, vec![1]);
    }

    #[test]
    fn polymorphic_property_is_detected() {
        let (_interp, eng) = run_instrumented(
            "var o = { v: 0 };\n\
             var i;\n\
             for (i = 0; i < 4; i++) {\n\
               o.v = i === 2 ? function () { return 1; } : i;\n\
             }",
            Mode::Dependence,
            1,
        )
        .unwrap();
        let eng = eng.borrow();
        let poly = eng.polymorphic_subjects();
        assert!(
            poly.iter()
                .any(|(s, tys)| s == "o.v" && tys.contains(&"function")),
            "{poly:?}"
        );
    }

    #[test]
    fn writes_outside_loops_are_not_observed() {
        let (_interp, eng) =
            run_instrumented("var a = 1;\na = \"str\";\na = true;", Mode::Dependence, 1).unwrap();
        let eng = eng.borrow();
        assert!(eng.polymorphic_subjects().is_empty());
    }
}
