//! The JS-CERES analysis engine.
//!
//! One [`Engine`] instance backs one instrumented run. The `__ceres_*` host
//! functions registered by [`attach_engine`] feed it: loop enter/iter/exit
//! maintain the characterization stack and per-loop statistics; the
//! dependence hooks maintain stamps, snapshots and warnings; tagged host
//! objects (DOM/Canvas/WebGL) are attributed to the loops open at access
//! time via the interpreter's [`Monitor`].
//!
//! # Hot-path design (see `docs/PERFORMANCE.md`)
//!
//! The dependence hooks fire per property access, so everything they touch
//! is keyed by interned [`Sym`]s and small `Copy` ids rather than owned
//! strings:
//!
//! * loop stamps live in an interned table (`stamps`); side tables store
//!   `u32` stamp ids, and the stamp for the current stack is built at most
//!   once per stack mutation instead of once per write;
//! * accesses are recorded as fixed-size [`hooks::AccessEvent`]s in a
//!   batch buffer and drained at ordering barriers (loop enter/iter/exit,
//!   task begin/end, buffer full) — hook closures only append;
//! * characterizations are computed as per-loop bitsets ([`CharBits`]) and
//!   expanded into rendered [`Characterization`]s only when a *new*
//!   deduplicated warning is materialized.

use crate::stack::{
    characterize_write, characterize_write_bits, empty_stamp, flow_dependence,
    flow_dependence_bits, is_problematic, CharBits, Characterization, StackEntry, Stamp,
    CHAR_BITS_MAX_DEPTH,
};
use crate::welford::Welford;
use ceres_ast::{LoopId, LoopInfo};
use ceres_instrument::{
    hooks::{self, AccessEvent, AccessKind},
    Mode,
};
use ceres_interp::intern::{self, FxHashMap, FxHashSet, Sym};
use ceres_interp::{ops, CallCtx, Interp, JsResult, Monitor, Value};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// Per-syntactic-loop statistics (paper Sec. 3.2).
#[derive(Debug, Clone, Default)]
pub struct LoopRecord {
    /// "the number of times it is encountered at runtime".
    pub instances: u64,
    /// Trip count per instance (total/avg/variance via Welford).
    pub trips: Welford,
    /// Running time per instance, in virtual-clock ticks (includes nested
    /// loops, as in the paper's loop-nest accounting).
    pub time_ticks: Welford,
    /// Set when recursion re-entered this loop before it exited; the paper
    /// "raises a warning, and discards the analysis results for the
    /// affected loop nest".
    pub recursion_tainted: bool,
}

/// Kinds of dependence warnings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WarningKind {
    /// (a) write to a variable declared outside the current iteration.
    VarWrite,
    /// (b) write to a property of an object shared across iterations.
    SharedPropWrite,
    /// (c) read of a property written in a different iteration (flow/RAW).
    FlowRead,
    /// Extension: write-after-write on the same property location observed
    /// across iterations (output dependence evidence).
    WawWrite,
    /// Recursion grew the loop stack; results for the nest are discarded.
    Recursion,
}

impl WarningKind {
    pub fn describe(&self) -> &'static str {
        match self {
            WarningKind::VarWrite => "write to variable declared outside the loop iteration",
            WarningKind::SharedPropWrite => "write to property of object shared between iterations",
            WarningKind::FlowRead => "read of property written in a different iteration (flow)",
            WarningKind::WawWrite => "repeated write to the same property location (output)",
            WarningKind::Recursion => "recursive call re-entered the loop; nest results discarded",
        }
    }
}

/// One (deduplicated) dependence warning.
#[derive(Debug, Clone)]
pub struct Warning {
    pub kind: WarningKind,
    /// Human-readable subject: `p`, `com.x`, `data[*]`, `bodies[]`, …
    pub subject: String,
    pub characterization: Characterization,
    /// Write-op spelling for variable writes ("=", "+=", "++", "init", …).
    pub op: Option<String>,
    /// The top-level loop open when the warning fired (Table 3 nest).
    pub nest_root: LoopId,
    /// How many dynamic accesses collapsed into this warning.
    pub count: u64,
}

/// Key-diversity statistics per written subject; used by the difficulty
/// classifier to tell disjoint writes (`data[i]`, distinct `i` per
/// iteration) from conflicting ones (`com.x` every iteration).
#[derive(Debug, Clone, Default)]
pub struct SubjectStats {
    pub writes: u64,
    /// Innermost (loop, instance) the current window belongs to.
    ctx: Option<(LoopId, u64)>,
    ctx_writes: u64,
    ctx_locations: FxHashSet<(u64, Sym)>,
    /// Sum of per-instance disjointness ratios and window count.
    ratio_sum: f64,
    windows: u64,
}

const KEYSET_CAP: usize = 4096;

impl SubjectStats {
    fn record(&mut self, obj_id: u64, key: Sym, ctx: Option<(LoopId, u64)>) {
        self.writes += 1;
        if self.ctx != ctx {
            self.fold_window();
            self.ctx = ctx;
        }
        self.ctx_writes += 1;
        if self.ctx_locations.len() < KEYSET_CAP {
            self.ctx_locations.insert((obj_id, key));
        }
    }

    fn fold_window(&mut self) {
        if self.ctx_writes > 0 {
            self.ratio_sum += (self.ctx_locations.len() as f64 / self.ctx_writes as f64).min(1.0);
            self.windows += 1;
        }
        self.ctx_writes = 0;
        self.ctx_locations.clear();
    }

    /// Mean, over innermost loop *instances*, of the fraction of writes
    /// that hit a distinct location within that instance. 1.0 ⇒ each
    /// iteration writes its own location (`out[i] = …`, or one field of a
    /// per-iteration object); near 0 ⇒ every iteration hits the same
    /// location (`acc.v = …`).
    pub fn disjointness(&self) -> f64 {
        let mut ratio_sum = self.ratio_sum;
        let mut windows = self.windows;
        if self.ctx_writes > 0 {
            ratio_sum += (self.ctx_locations.len() as f64 / self.ctx_writes as f64).min(1.0);
            windows += 1;
        }
        if windows == 0 {
            1.0
        } else {
            ratio_sum / windows as f64
        }
    }
}

/// The engine state shared by all hooks of one run.
pub struct Engine {
    pub mode: Mode,
    /// Loop id → source info (kind, line), from the instrumentation pass.
    pub loops: HashMap<LoopId, LoopInfo>,

    // --- observability (ceres_core::obs) ---
    /// Per-hook invocation counts for this run.
    pub tally: hooks::HookTally,
    /// Pushes onto the characterization stack (loop entries, including
    /// recursive re-entries).
    pub stack_pushes: u64,

    // --- characterization stack ---
    stack: Vec<StackEntry>,
    start_ticks: Vec<u64>,
    instance_counters: FxHashMap<LoopId, u64>,

    // --- loop profiling ---
    pub records: HashMap<LoopId, LoopRecord>,
    /// loop → top-level loop of the nest it ran inside.
    pub nest_root: HashMap<LoopId, LoopId>,

    // --- lightweight profiling ---
    lw_open: u64,
    lw_start: u64,
    /// Total ticks with ≥1 loop open (the paper's "time spent in loops").
    pub lw_loop_ticks: u64,

    // --- dependence analysis ---
    /// Restrict recording to nests containing this loop (the paper's
    /// "focus on a specific loop").
    pub focus: Option<LoopId>,
    /// Interned loop-stack stamps. Entry 0 is the empty stamp; events and
    /// all side tables refer to stamps by `u32` index.
    stamps: Vec<Stamp>,
    /// Cached id of the stamp for the *current* stack, invalidated on
    /// every stack mutation — one stamp allocation per stack epoch, not
    /// one per access.
    cur_stamp: Option<u32>,
    binding_stamps: FxHashMap<u64, u32>,
    object_stamps: FxHashMap<u64, u32>,
    write_snapshots: FxHashMap<(u64, Sym), u32>,
    pub warnings: Vec<Warning>,
    /// (kind, subject, op) → indices of materialized warnings with that
    /// key; candidates are distinguished by characterization (usually 1).
    warning_index: FxHashMap<(WarningKind, Sym, Sym), Vec<usize>>,
    /// (base, key) → composed subject (`p.vX`, `data[*]`) cache, so the
    /// `format!` runs once per distinct pair, not per access.
    subject_cache: FxHashMap<(Sym, Sym), Sym>,
    pub subject_stats: FxHashMap<Sym, SubjectStats>,

    // --- runtime type observation (paper Sec. 2.4 / 4.2) ---
    /// (subject, binding id) → set of runtime types written *inside
    /// loops*. Keyed per binding so unrelated locals that share a name in
    /// different functions don't alias; a key with more than one type
    /// (ignoring undefined/null, per the paper's definition) is
    /// polymorphic. Property subjects use binding id 0.
    pub observed_types: FxHashMap<(Sym, u64), BTreeSet<&'static str>>,

    // --- task-parallelism limit study (Fortuna et al. baseline) ---
    /// Completed tasks in execution order.
    pub tasks: Vec<crate::tasks::TaskRecord>,
    task_depth: usize,

    // --- DOM attribution ---
    /// loop id → host-object tags accessed while it was open.
    pub dom_by_loop: HashMap<LoopId, BTreeSet<&'static str>>,
    /// Host accesses observed with no loop open.
    pub dom_outside_loops: u64,
}

impl Engine {
    pub fn new(mode: Mode, loops: Vec<LoopInfo>) -> Engine {
        Engine {
            mode,
            loops: loops.into_iter().map(|l| (l.id, l)).collect(),
            tally: hooks::HookTally::new(),
            stack_pushes: 0,
            stack: Vec::new(),
            start_ticks: Vec::new(),
            instance_counters: FxHashMap::default(),
            records: HashMap::new(),
            nest_root: HashMap::new(),
            lw_open: 0,
            lw_start: 0,
            lw_loop_ticks: 0,
            focus: None,
            stamps: vec![empty_stamp()],
            cur_stamp: Some(0),
            binding_stamps: FxHashMap::default(),
            object_stamps: FxHashMap::default(),
            write_snapshots: FxHashMap::default(),
            warnings: Vec::new(),
            warning_index: FxHashMap::default(),
            subject_cache: FxHashMap::default(),
            subject_stats: FxHashMap::default(),
            observed_types: FxHashMap::default(),
            tasks: Vec::new(),
            task_depth: 0,
            dom_by_loop: HashMap::new(),
            dom_outside_loops: 0,
        }
    }

    /// Id of the stamp for the current stack, building (and caching) the
    /// table entry on first use after a stack mutation.
    pub fn current_stamp_id(&mut self) -> u32 {
        if self.stack.is_empty() {
            return 0;
        }
        if let Some(id) = self.cur_stamp {
            return id;
        }
        let id = self.stamps.len() as u32;
        self.stamps.push(Rc::from(self.stack.as_slice()));
        self.cur_stamp = Some(id);
        id
    }

    /// Was dependence recording active for an access under `entries`
    /// (inside a loop; inside the focused nest when a focus is set)?
    fn recording_at(&self, entries: &[StackEntry]) -> bool {
        if entries.is_empty() {
            return false;
        }
        match self.focus {
            None => true,
            Some(f) => entries.iter().any(|e| e.loop_id == f),
        }
    }

    // ---------------- event batching ----------------

    /// Record one access. Events are processed synchronously: every event
    /// carries its access-time stamp id and the analysis maps it touches
    /// are mutated only by events (in program order) and by the loop/task
    /// hooks, which were already ordering barriers — so immediate
    /// processing is observably identical to the batch-and-drain scheme
    /// this replaces, minus the queue round-trip per access.
    pub fn push_event(&mut self, ev: AccessEvent) {
        self.process_event(&ev);
    }

    /// Former batch-drain barrier; processing is synchronous now, so the
    /// barrier call sites (loop hooks, task begin/end, end of run) have
    /// nothing left to drain.
    pub fn flush_events(&mut self) {}

    fn process_event(&mut self, ev: &AccessEvent) {
        match ev.kind {
            AccessKind::BindingStamp => {
                self.binding_stamps.insert(ev.target, ev.stamp);
            }
            AccessKind::ObjStamp => {
                self.object_stamps.insert(ev.target, ev.stamp);
            }
            AccessKind::VarWrite => {
                if ev.binding != 0 {
                    self.task_write(crate::tasks::binding_location(ev.binding));
                }
                self.var_write(ev);
            }
            AccessKind::PropRead => {
                self.task_read(crate::tasks::object_location(ev.target));
                self.prop_read(ev);
            }
            AccessKind::PropReadCompound => self.prop_read(ev),
            AccessKind::PropWrite => {
                self.task_write(crate::tasks::object_location(ev.target));
                self.prop_write(ev);
            }
        }
    }

    // ---------------- loop hooks ----------------

    fn lw_enter(&mut self, now: u64) {
        if self.lw_open == 0 {
            self.lw_start = now;
        }
        self.lw_open += 1;
    }

    fn lw_exit(&mut self, now: u64) {
        if self.lw_open > 0 {
            self.lw_open -= 1;
            if self.lw_open == 0 {
                self.lw_loop_ticks += now - self.lw_start;
            }
        }
    }

    fn loop_enter(&mut self, id: LoopId, now: u64) {
        self.flush_events();
        // Recursion detection (paper Sec. 3.3): same syntactic loop opened
        // again before it closed.
        if self.stack.iter().any(|e| e.loop_id == id) {
            let root = self.stack.first().map(|e| e.loop_id).unwrap_or(id);
            self.records.entry(id).or_default().recursion_tainted = true;
            self.records.entry(root).or_default().recursion_tainted = true;
            let name = self
                .loops
                .get(&id)
                .map(|l| l.display_name())
                .unwrap_or_else(|| format!("{id}"));
            self.push_warning_vec(
                WarningKind::Recursion,
                intern::intern(&name),
                Sym::NONE,
                Vec::new(),
                root,
            );
        }
        let counter = self.instance_counters.entry(id).or_insert(0);
        *counter += 1;
        let instance = *counter;
        self.nest_root
            .entry(id)
            .or_insert_with(|| self.stack.first().map(|e| e.loop_id).unwrap_or(id));
        self.stack.push(StackEntry {
            loop_id: id,
            instance,
            iteration: 0,
        });
        self.cur_stamp = None;
        self.stack_pushes += 1;
        self.start_ticks.push(now);
        // Lightweight totals also work in the richer modes so Table 2 can be
        // cross-checked against loop-profile runs.
        self.lw_enter(now);
    }

    fn iter(&mut self, id: LoopId) {
        self.flush_events();
        // The hook sits at the top of the loop body, so the innermost open
        // loop is (in well-formed programs) the one being iterated. Scan
        // from the top for robustness under recursion taint.
        if let Some(e) = self.stack.iter_mut().rev().find(|e| e.loop_id == id) {
            e.iteration += 1;
            self.cur_stamp = None;
        }
    }

    fn loop_exit(&mut self, id: LoopId, now: u64) {
        self.flush_events();
        // Pop until we find the entry (robust under abnormal unwinding).
        while let Some(top) = self.stack.pop() {
            self.cur_stamp = None;
            let start = self.start_ticks.pop().unwrap_or(now);
            let rec = self.records.entry(top.loop_id).or_default();
            rec.instances += 1;
            rec.trips.add(top.iteration as f64);
            rec.time_ticks.add((now - start) as f64);
            self.lw_exit(now);
            if top.loop_id == id {
                break;
            }
        }
    }

    // ---------------- dependence processing ----------------

    /// Compose (and cache) a warning subject: `p.vX`, `data[*]`, `com.x`,
    /// or `*.x` when the base expression was not a variable. Numeric keys
    /// collapse to `[*]` so index sweeps produce one subject.
    fn subject_sym(&mut self, base: Sym, key: Sym) -> Sym {
        if let Some(&s) = self.subject_cache.get(&(base, key)) {
            return s;
        }
        let base_str: Rc<str> = if base.is_none() {
            Rc::from("*")
        } else {
            intern::resolve(base)
        };
        let s = if key.is_numeric() {
            intern::intern(&format!("{base_str}[*]"))
        } else {
            intern::intern(&format!("{base_str}.{}", intern::resolve(key)))
        };
        self.subject_cache.insert((base, key), s);
        s
    }

    /// Entries of the stamp table entry `id`.
    fn stamp_entries(&self, id: u32) -> Stamp {
        self.stamps[id as usize].clone()
    }

    /// Deduplicate-or-materialize a warning from its compact form. The
    /// dedup key is (kind, subject, op) plus the characterization, which
    /// is compared level-by-level against candidates without allocating.
    fn push_warning_bits(
        &mut self,
        kind: WarningKind,
        subject: Sym,
        op: Sym,
        bits: CharBits,
        cur: &[StackEntry],
        root: LoopId,
    ) {
        let key = (kind, subject, op);
        if let Some(cands) = self.warning_index.get(&key) {
            for &i in cands {
                if bits.matches(&self.warnings[i].characterization, cur) {
                    self.warnings[i].count += 1;
                    return;
                }
            }
        }
        let w = Warning {
            kind,
            subject: intern::resolve(subject).to_string(),
            characterization: bits.expand(cur),
            op: op.is_some().then(|| intern::resolve(op).to_string()),
            nest_root: root,
            count: 1,
        };
        self.warning_index
            .entry(key)
            .or_default()
            .push(self.warnings.len());
        self.warnings.push(w);
    }

    /// [`Engine::push_warning_bits`] for already-materialized
    /// characterizations (recursion warnings, >64-deep stacks).
    fn push_warning_vec(
        &mut self,
        kind: WarningKind,
        subject: Sym,
        op: Sym,
        c: Characterization,
        root: LoopId,
    ) {
        let key = (kind, subject, op);
        if let Some(cands) = self.warning_index.get(&key) {
            for &i in cands {
                if self.warnings[i].characterization == c {
                    self.warnings[i].count += 1;
                    return;
                }
            }
        }
        let w = Warning {
            kind,
            subject: intern::resolve(subject).to_string(),
            characterization: c,
            op: op.is_some().then(|| intern::resolve(op).to_string()),
            nest_root: root,
            count: 1,
        };
        self.warning_index
            .entry(key)
            .or_default()
            .push(self.warnings.len());
        self.warnings.push(w);
    }

    fn var_write(&mut self, ev: &AccessEvent) {
        let cur = self.stamp_entries(ev.stamp);
        if !self.recording_at(&cur) {
            return;
        }
        // Unstamped binding (implicit global, host-provided):
        // conservatively "created before all loops" (the empty stamp).
        let stamp = match self.binding_stamps.get(&ev.binding) {
            Some(&sid) if ev.binding != 0 => self.stamp_entries(sid),
            _ => self.stamp_entries(0),
        };
        let root = cur[0].loop_id;
        if cur.len() <= CHAR_BITS_MAX_DEPTH {
            let bits = characterize_write_bits(&stamp, &cur);
            if bits.problematic() {
                self.push_warning_bits(WarningKind::VarWrite, ev.key, ev.op, bits, &cur, root);
            }
        } else {
            let c = characterize_write(&stamp, &cur);
            if is_problematic(&c) {
                self.push_warning_vec(WarningKind::VarWrite, ev.key, ev.op, c, root);
            }
        }
    }

    fn prop_write(&mut self, ev: &AccessEvent) {
        let cur = self.stamp_entries(ev.stamp);
        if !self.recording_at(&cur) {
            return;
        }
        let subject = self.subject_sym(ev.base, ev.key);
        // Effective stamp: of the object's creation stamp and the base
        // variable's binding stamp, take the one matching the *current*
        // stack deeper — i.e. the freshest context the location is reachable
        // from. This is what reproduces the paper's Fig. 6 output: `p.vX`
        // characterizes through `p`'s per-activation binding (stamped inside
        // the while), not through the particle object (created during
        // setup, before any of the open loops). See DESIGN.md §4.
        let obj_stamp = match self.object_stamps.get(&ev.target) {
            Some(&sid) => self.stamp_entries(sid),
            None => self.stamp_entries(0),
        };
        let base_stamp = if ev.binding != 0 {
            self.binding_stamps
                .get(&ev.binding)
                .map(|&sid| self.stamp_entries(sid))
        } else {
            None
        };
        let eff = match base_stamp {
            Some(b) if matched_prefix_len(&b, &cur) > matched_prefix_len(&obj_stamp, &cur) => b,
            _ => obj_stamp,
        };
        let root = cur[0].loop_id;
        let ctx = cur.last().map(|e| (e.loop_id, e.instance));
        self.subject_stats
            .entry(subject)
            .or_default()
            .record(ev.target, ev.key, ctx);
        // Output-dependence evidence: same location written in another
        // iteration we are still inside of. One table probe both fetches
        // the previous write's stamp and records this one.
        let prev = match self.write_snapshots.entry((ev.target, ev.key)) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                Some(self.stamps[std::mem::replace(o.get_mut(), ev.stamp) as usize].clone())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(ev.stamp);
                None
            }
        };
        if cur.len() <= CHAR_BITS_MAX_DEPTH {
            let bits = characterize_write_bits(&eff, &cur);
            if bits.problematic() {
                self.push_warning_bits(
                    WarningKind::SharedPropWrite,
                    subject,
                    ev.op,
                    bits,
                    &cur,
                    root,
                );
            }
            if let Some(prev) = prev {
                if let Some(bits) = flow_dependence_bits(&prev, &cur) {
                    self.push_warning_bits(
                        WarningKind::WawWrite,
                        subject,
                        Sym::NONE,
                        bits,
                        &cur,
                        root,
                    );
                }
            }
        } else {
            let c = characterize_write(&eff, &cur);
            if is_problematic(&c) {
                self.push_warning_vec(WarningKind::SharedPropWrite, subject, ev.op, c, root);
            }
            if let Some(prev) = prev {
                if let Some(c) = flow_dependence(&prev, &cur) {
                    self.push_warning_vec(WarningKind::WawWrite, subject, Sym::NONE, c, root);
                }
            }
        }
    }

    fn prop_read(&mut self, ev: &AccessEvent) {
        let cur = self.stamp_entries(ev.stamp);
        if !self.recording_at(&cur) {
            return;
        }
        let Some(&snap) = self.write_snapshots.get(&(ev.target, ev.key)) else {
            return;
        };
        let snapshot = self.stamp_entries(snap);
        let root = cur[0].loop_id;
        if cur.len() <= CHAR_BITS_MAX_DEPTH {
            if let Some(bits) = flow_dependence_bits(&snapshot, &cur) {
                let subject = self.subject_sym(ev.base, ev.key);
                self.push_warning_bits(WarningKind::FlowRead, subject, Sym::NONE, bits, &cur, root);
            }
        } else if let Some(c) = flow_dependence(&snapshot, &cur) {
            let subject = self.subject_sym(ev.base, ev.key);
            self.push_warning_vec(WarningKind::FlowRead, subject, Sym::NONE, c, root);
        }
    }

    /// Record the runtime type written to `subject` (only inside loops —
    /// the paper inspects "polymorphic variable accesses … within the
    /// computationally-intensive loops"). Called synchronously from the
    /// hooks: type observation is a set insert, insensitive to batching
    /// order.
    fn observe_type(&mut self, subject: Sym, binding: u64, value: &Value) {
        if self.stack.is_empty() {
            return;
        }
        // The paper: "We do not consider a variable polymorphic if it
        // changes between defined, undefined, and null."
        let ty = match value {
            Value::Undefined | Value::Null => return,
            v => v.type_of(),
        };
        self.observed_types
            .entry((subject, binding))
            .or_default()
            .insert(ty);
    }

    /// Subjects observed with more than one runtime type inside loops.
    pub fn polymorphic_subjects(&self) -> Vec<(String, Vec<&'static str>)> {
        let mut out: Vec<(String, Vec<&'static str>)> = self
            .observed_types
            .iter()
            .filter(|(_, tys)| tys.len() > 1)
            .map(|((s, _), tys)| {
                (
                    intern::resolve(*s).to_string(),
                    tys.iter().copied().collect(),
                )
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Key-diversity statistics for a rendered subject (`data[*]`,
    /// `com.x`), as the classifier and reports refer to subjects by text.
    pub fn subject_stats_for(&self, subject: &str) -> Option<&SubjectStats> {
        self.subject_stats.get(&intern::intern(subject))
    }

    /// Open a task (nested opens fold into the outermost).
    pub fn begin_task(&mut self, label: &str, now_ticks: u64) {
        self.flush_events();
        self.task_depth += 1;
        if self.task_depth == 1 {
            self.tasks.push(crate::tasks::TaskRecord {
                label: label.to_string(),
                start_ticks: now_ticks,
                end_ticks: now_ticks,
                reads: std::collections::HashSet::new(),
                writes: std::collections::HashSet::new(),
            });
        }
    }

    /// Close the innermost task.
    pub fn end_task(&mut self, now_ticks: u64) {
        self.flush_events();
        if self.task_depth > 0 {
            self.task_depth -= 1;
            if self.task_depth == 0 {
                if let Some(t) = self.tasks.last_mut() {
                    t.end_ticks = now_ticks;
                }
            }
        }
    }

    fn task_read(&mut self, location: u64) {
        if self.task_depth > 0 {
            if let Some(t) = self.tasks.last_mut() {
                t.reads.insert(location);
            }
        }
    }

    fn task_write(&mut self, location: u64) {
        if self.task_depth > 0 {
            if let Some(t) = self.tasks.last_mut() {
                t.writes.insert(location);
            }
        }
    }

    fn host_access_inner(&mut self, tag: &'static str) {
        if self.stack.is_empty() {
            self.dom_outside_loops += 1;
            return;
        }
        for e in &self.stack {
            self.dom_by_loop.entry(e.loop_id).or_default().insert(tag);
        }
    }

    // ---------------- results ----------------

    /// Depth of the open-loop stack (diagnostics).
    pub fn open_loops(&self) -> usize {
        self.stack.len()
    }

    /// Warnings attributed to the nest rooted at `root`.
    pub fn warnings_for_nest(&self, root: LoopId) -> Vec<&Warning> {
        self.warnings
            .iter()
            .filter(|w| w.nest_root == root)
            .collect()
    }
}

/// How many leading levels of `stamp` match `current` exactly (same loop,
/// instance, and iteration).
fn matched_prefix_len(stamp: &[StackEntry], current: &[StackEntry]) -> usize {
    stamp
        .iter()
        .zip(current)
        .take_while(|(s, c)| {
            s.loop_id == c.loop_id && s.instance == c.instance && s.iteration == c.iteration
        })
        .count()
}

/// Intern a property-key value: numbers take the inline fast path (no
/// allocation for array indices), strings reuse their `Rc` allocation.
fn sym_of_key(v: &Value) -> Sym {
    match v {
        Value::Num(n) => Sym::from_f64(*n).unwrap_or_else(|| intern::intern(&ops::to_string(v))),
        Value::Str(s) => intern::intern_rc(s),
        other => intern::intern(&ops::to_string(other)),
    }
}

/// Intern an optional base-variable name argument ([`Sym::NONE`] when the
/// rewriter passed `null`).
fn opt_sym(v: &Value) -> Sym {
    match v {
        Value::Str(s) => intern::intern_rc(s),
        _ => Sym::NONE,
    }
}

/// Wrapper implementing the interpreter's [`Monitor`] for DOM attribution.
struct EngineMonitor(Rc<std::cell::RefCell<Engine>>);

impl Monitor for EngineMonitor {
    fn host_access(&self, tag: &'static str, _op: &str) {
        // May be called re-entrantly from hooks only *after* they dropped
        // their borrow (hook discipline: compute, drop, call interp).
        if let Ok(mut eng) = self.0.try_borrow_mut() {
            eng.host_access_inner(tag);
        }
    }

    fn task_begin(&self, label: &str, now_ticks: u64) {
        if let Ok(mut eng) = self.0.try_borrow_mut() {
            eng.begin_task(label, now_ticks);
        }
    }

    fn task_end(&self, now_ticks: u64) {
        if let Ok(mut eng) = self.0.try_borrow_mut() {
            eng.end_task(now_ticks);
        }
    }
}

/// Shared engine handle.
pub type EngineRef = Rc<std::cell::RefCell<Engine>>;

/// Create an engine for `mode`, register every `__ceres_*` hook and the DOM
/// monitor on `interp`, and return the shared handle.
pub fn attach_engine(interp: &mut Interp, mode: Mode, loops: Vec<LoopInfo>) -> EngineRef {
    let engine: EngineRef = Rc::new(std::cell::RefCell::new(Engine::new(mode, loops)));

    interp.monitor = Some(Rc::new(EngineMonitor(engine.clone())));

    let arg = |args: &[Value], i: usize| args.get(i).cloned().unwrap_or(Value::Undefined);

    // Hot-path symbols interned once at registration time.
    let eq_sym = intern::intern("=");
    let inc_sym = intern::intern("++");
    let push_sym = intern::intern("push");
    let elements_sym = intern::intern("<elements>");
    let mutating_syms: Rc<[Sym]> = MUTATING_ARRAY_METHODS
        .iter()
        .map(|m| intern::intern(m))
        .collect();

    // Tally indices are resolved once here; each hook then bumps its
    // counter with a single array add (the obs layer must not perturb the
    // overhead ledger it measures).
    let idx = hooks::hook_index;

    // --- lightweight ---
    {
        let eng = engine.clone();
        let i = idx(hooks::LW_ENTER);
        interp.register_native(hooks::LW_ENTER, move |interp, _ctx, _args| {
            let now = interp.clock.now_ticks();
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            e.lw_enter(now);
            Ok(Value::Undefined)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::LW_EXIT);
        interp.register_native(hooks::LW_EXIT, move |interp, _ctx, _args| {
            let now = interp.clock.now_ticks();
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            e.lw_exit(now);
            Ok(Value::Undefined)
        });
    }

    // --- loop profiling ---
    {
        let eng = engine.clone();
        let i = idx(hooks::LOOP_ENTER);
        interp.register_native(hooks::LOOP_ENTER, move |interp, _ctx, args| {
            let id = LoopId(ops::to_number(&arg(args, 0)) as u32);
            let now = interp.clock.now_ticks();
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            e.loop_enter(id, now);
            Ok(Value::Undefined)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::ITER);
        interp.register_native(hooks::ITER, move |_interp, _ctx, args| {
            let id = LoopId(ops::to_number(args.first().unwrap_or(&Value::Undefined)) as u32);
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            e.iter(id);
            Ok(Value::Undefined)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::LOOP_EXIT);
        interp.register_native(hooks::LOOP_EXIT, move |interp, _ctx, args| {
            let id = LoopId(ops::to_number(&arg(args, 0)) as u32);
            let now = interp.clock.now_ticks();
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            e.loop_exit(id, now);
            Ok(Value::Undefined)
        });
    }

    // --- dependence ---
    {
        let eng = engine.clone();
        let i = idx(hooks::DECLVARS);
        interp.register_native(hooks::DECLVARS, move |interp, ctx, args| {
            // Stamping bindings copies the loop stack per name.
            interp.clock.tick(2 * args.len() as u64);
            eng.borrow_mut().tally.bump(i);
            let Some(scope) = &ctx.caller_scope else {
                return Ok(Value::Undefined);
            };
            let mut e = eng.borrow_mut();
            let stamp = e.current_stamp_id();
            for a in args {
                if let Value::Str(name) = a {
                    if let Some(b) = scope.lookup_sym(intern::intern_rc(name)) {
                        let id = b.borrow().id;
                        e.push_event(AccessEvent {
                            kind: AccessKind::BindingStamp,
                            target: id,
                            binding: 0,
                            key: Sym::NONE,
                            base: Sym::NONE,
                            op: Sym::NONE,
                            stamp,
                        });
                    }
                }
            }
            Ok(Value::Undefined)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::WRVAR);
        interp.register_native(hooks::WRVAR, move |interp, ctx, args| {
            // Scope lookup + queued stamp diff against the current stack.
            interp.clock.tick(8);
            let name = sym_of_key(args.first().unwrap_or(&Value::Undefined));
            let op = match args.get(1) {
                Some(Value::Str(s)) => intern::intern_rc(s),
                _ => eq_sym,
            };
            let binding_id = ctx
                .caller_scope
                .as_ref()
                .and_then(|s| s.lookup_sym(name))
                .map(|b| b.borrow().id);
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            let stamp = e.current_stamp_id();
            e.push_event(AccessEvent {
                kind: AccessKind::VarWrite,
                target: 0,
                binding: binding_id.unwrap_or(0),
                key: name,
                base: Sym::NONE,
                op,
                stamp,
            });
            // When the rewriter threads the assigned value through the
            // hook (3-argument form), observe its runtime type and pass
            // it along unchanged.
            if let Some(value) = args.get(2) {
                e.observe_type(name, binding_id.unwrap_or(0), value);
                return Ok(value.clone());
            }
            Ok(Value::Undefined)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::WRAP);
        interp.register_native(hooks::WRAP, move |interp, _ctx, args| {
            // The Proxy wrap: snapshot the loop stack for the new object.
            interp.clock.tick(4);
            let v = arg(args, 0);
            let mut e = eng.borrow_mut();
            e.tally.bump(i);
            if let Value::Object(o) = &v {
                let stamp = e.current_stamp_id();
                e.push_event(AccessEvent {
                    kind: AccessKind::ObjStamp,
                    target: o.id(),
                    binding: 0,
                    key: Sym::NONE,
                    base: Sym::NONE,
                    op: Sym::NONE,
                    stamp,
                });
            }
            Ok(v)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::GETPROP);
        interp.register_native(hooks::GETPROP, move |interp, _ctx, args| {
            // Snapshot lookup + queued flow-dependence diff.
            interp.clock.tick(6);
            let obj = args.first().unwrap_or(&Value::Undefined);
            let key = sym_of_key(args.get(1).unwrap_or(&Value::Undefined));
            let base = opt_sym(args.get(2).unwrap_or(&Value::Undefined));
            {
                let mut e = eng.borrow_mut();
                e.tally.bump(i);
                if let Value::Object(o) = obj {
                    let stamp = e.current_stamp_id();
                    e.push_event(AccessEvent {
                        kind: AccessKind::PropRead,
                        target: o.id(),
                        binding: 0,
                        key,
                        base,
                        op: Sym::NONE,
                        stamp,
                    });
                }
            }
            get_prop_fast(interp, obj, key)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::SETPROP);
        interp.register_native(hooks::SETPROP, move |interp, ctx, args| {
            // Effective-stamp diff, WAW check, snapshot update — queued.
            interp.clock.tick(10);
            eng.borrow_mut().tally.bump(i);
            let obj = args.first().unwrap_or(&Value::Undefined);
            let key = sym_of_key(args.get(1).unwrap_or(&Value::Undefined));
            let value = arg(args, 2);
            let base = opt_sym(args.get(3).unwrap_or(&Value::Undefined));
            record_prop_write(&eng, ctx, obj, key, base, eq_sym, Some(&value));
            set_prop_fast(interp, obj, key, value.clone())?;
            Ok(value)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::SETPROP2);
        interp.register_native(hooks::SETPROP2, move |interp, ctx, args| {
            // Read check + write check + compound evaluation.
            interp.clock.tick(14);
            eng.borrow_mut().tally.bump(i);
            let obj = arg(args, 0);
            let key = sym_of_key(&arg(args, 1));
            let op = sym_of_key(&arg(args, 2));
            let value = arg(args, 3);
            let base = opt_sym(&arg(args, 4));
            // Compound assignment reads the old value first.
            record_prop_read(&eng, &obj, key, base);
            let old = get_prop_fast(interp, &obj, key)?;
            let new = apply_binop(&intern::resolve(op), &old, &value);
            record_prop_write(&eng, ctx, &obj, key, base, op, None);
            set_prop_fast(interp, &obj, key, new.clone())?;
            Ok(new)
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::UPDATE_PROP);
        interp.register_native(hooks::UPDATE_PROP, move |interp, ctx, args| {
            interp.clock.tick(12);
            eng.borrow_mut().tally.bump(i);
            let obj = arg(args, 0);
            let key = sym_of_key(&arg(args, 1));
            let delta = ops::to_number(&arg(args, 2));
            let prefix = ops::to_number(&arg(args, 3)) != 0.0;
            let base = opt_sym(&arg(args, 4));
            record_prop_read(&eng, &obj, key, base);
            let old = ops::to_number(&get_prop_fast(interp, &obj, key)?);
            let new = old + delta;
            record_prop_write(&eng, ctx, &obj, key, base, inc_sym, None);
            set_prop_fast(interp, &obj, key, Value::Num(new))?;
            Ok(Value::Num(if prefix { new } else { old }))
        });
    }
    {
        let eng = engine.clone();
        let i = idx(hooks::MCALL);
        let mutating = mutating_syms.clone();
        interp.register_native(hooks::MCALL, move |interp, ctx, args| {
            interp.clock.tick(8);
            eng.borrow_mut().tally.bump(i);
            let obj = arg(args, 0);
            let key = sym_of_key(&arg(args, 1));
            let base = opt_sym(&arg(args, 2));
            let call_args = if args.len() > 3 { &args[3..] } else { &[][..] };
            if let Value::Object(o) = &obj {
                let mut e = eng.borrow_mut();
                let stamp = e.current_stamp_id();
                e.push_event(AccessEvent {
                    kind: AccessKind::PropRead,
                    target: o.id(),
                    binding: 0,
                    key,
                    base,
                    op: Sym::NONE,
                    stamp,
                });
                // Array-mutating methods are element writes in disguise:
                // `results.push(x)` inside a loop is an output dependence on
                // the shared array.
                if o.is_array() && mutating.contains(&key) {
                    e.push_event(AccessEvent {
                        kind: AccessKind::PropWrite,
                        target: o.id(),
                        binding: 0,
                        key: elements_sym,
                        base,
                        op: push_sym,
                        stamp,
                    });
                }
            }
            let f = get_prop_fast(interp, &obj, key)?;
            interp.call_value(&f, obj, call_args, ctx.caller_scope.clone())
        });
    }

    engine
}

/// Array methods that mutate the receiver's elements.
const MUTATING_ARRAY_METHODS: &[&str] = &[
    "push", "pop", "shift", "unshift", "splice", "sort", "reverse",
];

/// `obj[key]` through the interpreter, with an allocation-free fast path
/// for inline-numeric keys on untagged arrays (tagged objects must go
/// through [`Interp::get_property`] so the DOM monitor sees the access).
fn get_prop_fast(interp: &mut Interp, obj: &Value, key: Sym) -> JsResult {
    if let (Value::Object(o), Some(i)) = (obj, key.as_index()) {
        if o.tag().is_none() && o.is_array() {
            return Ok(o.array_get(i as usize).unwrap_or(Value::Undefined));
        }
    }
    interp.get_property_sym(obj, key)
}

/// `obj[key] = value` counterpart of [`get_prop_fast`].
fn set_prop_fast(interp: &mut Interp, obj: &Value, key: Sym, value: Value) -> JsResult<()> {
    if let (Value::Object(o), Some(i)) = (obj, key.as_index()) {
        if o.tag().is_none() && o.is_array() {
            o.array_set(i as usize, value);
            return Ok(());
        }
    }
    interp.set_property_sym(obj, key, value)
}

/// Queue the read half of a compound property access.
fn record_prop_read(eng: &EngineRef, obj: &Value, key: Sym, base: Sym) {
    let Value::Object(o) = obj else { return };
    let mut e = eng.borrow_mut();
    let stamp = e.current_stamp_id();
    e.push_event(AccessEvent {
        kind: AccessKind::PropReadCompound,
        target: o.id(),
        binding: 0,
        key,
        base,
        op: Sym::NONE,
        stamp,
    });
}

/// Shared write-recording path for SETPROP/SETPROP2/UPDATE_PROP: resolve
/// the base variable's binding id (for the effective-stamp refinement)
/// and queue the write event.
fn record_prop_write(
    eng: &EngineRef,
    ctx: &CallCtx,
    obj: &Value,
    key: Sym,
    base: Sym,
    op: Sym,
    observe: Option<&Value>,
) {
    let Value::Object(o) = obj else { return };
    let binding = if base.is_some() {
        ctx.caller_scope
            .as_ref()
            .and_then(|s| s.lookup_sym(base))
            .map(|b| b.borrow().id)
            .unwrap_or(0)
    } else {
        0
    };
    let mut e = eng.borrow_mut();
    let stamp = e.current_stamp_id();
    e.push_event(AccessEvent {
        kind: AccessKind::PropWrite,
        target: o.id(),
        binding,
        key,
        base,
        op,
        stamp,
    });
    // `__ceres_setprop` threads the assigned value through for type
    // observation; folding it here keeps the hook to one engine borrow.
    if let Some(value) = observe {
        let subject = e.subject_sym(base, key);
        e.observe_type(subject, 0, value);
    }
}

/// Evaluate `old op value` for compound property assignment.
fn apply_binop(op: &str, old: &Value, value: &Value) -> Value {
    use ceres_interp::ops::*;
    match op {
        "+" => js_add(old, value),
        "-" => Value::Num(to_number(old) - to_number(value)),
        "*" => Value::Num(to_number(old) * to_number(value)),
        "/" => Value::Num(to_number(old) / to_number(value)),
        "%" => Value::Num(to_number(old) % to_number(value)),
        "<<" => Value::Num((to_int32(old) << (to_uint32(value) & 31)) as f64),
        ">>" => Value::Num((to_int32(old) >> (to_uint32(value) & 31)) as f64),
        ">>>" => Value::Num((to_uint32(old) >> (to_uint32(value) & 31)) as f64),
        "&" => Value::Num((to_int32(old) & to_int32(value)) as f64),
        "|" => Value::Num((to_int32(old) | to_int32(value)) as f64),
        "^" => Value::Num((to_int32(old) ^ to_int32(value)) as f64),
        _ => js_add(old, value),
    }
}

/// Run `source` under `mode` on a fresh interpreter with DOM installed;
/// convenience used by tests, examples, and the pipeline.
pub fn run_instrumented(source: &str, mode: Mode, seed: u64) -> JsResult<(Interp, EngineRef)> {
    let (instrumented, loops) = ceres_instrument::instrument_source(source, mode)
        .map_err(|e| ceres_interp::Control::Fatal(format!("instrumentation parse error: {e}")))?;
    let mut interp = Interp::new(seed);
    ceres_dom::install_dom(&mut interp);
    let engine = attach_engine(&mut interp, mode, loops);
    let result = interp.eval_source(&instrumented);
    engine.borrow_mut().flush_events();
    result?;
    Ok((interp, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::render;

    fn run(src: &str, mode: Mode) -> (Interp, EngineRef) {
        run_instrumented(src, mode, 42).unwrap_or_else(|e| panic!("run failed: {e:?}"))
    }

    #[test]
    fn lightweight_counts_loop_time() {
        let (interp, eng) = run(
            "var s = 0;\n\
             for (var i = 0; i < 1000; i++) { s += i; }\n\
             var t = 0;\n\
             for (var j = 0; j < 10; j++) { t += j; }",
            Mode::Lightweight,
        );
        let eng = eng.borrow();
        assert!(eng.lw_loop_ticks > 0);
        assert!(eng.lw_loop_ticks < interp.clock.now_ticks());
        // The 1000-iteration loop dominates: loop time is most of total.
        assert!(eng.lw_loop_ticks as f64 > 0.8 * interp.clock.now_ticks() as f64);
    }

    #[test]
    fn loop_profile_counts_instances_and_trips() {
        let (_interp, eng) = run(
            "function work(n) {\n\
               var s = 0;\n\
               for (var i = 0; i < n; i++) { s += i; }\n\
               return s;\n\
             }\n\
             for (var r = 0; r < 5; r++) { work(10); }",
            Mode::LoopProfile,
        );
        let eng = eng.borrow();
        // Loop 1 = the inner for (source order), loop 2 = the outer for.
        let inner = &eng.records[&LoopId(1)];
        let outer = &eng.records[&LoopId(2)];
        assert_eq!(inner.instances, 5);
        assert_eq!(inner.trips.mean(), 10.0);
        assert_eq!(inner.trips.total(), 50.0);
        assert_eq!(outer.instances, 1);
        assert_eq!(outer.trips.mean(), 5.0);
        // Outer nest time includes inner time.
        assert!(outer.time_ticks.total() >= inner.time_ticks.total());
        // Nest attribution: inner ran inside outer.
        assert_eq!(eng.nest_root[&LoopId(1)], LoopId(2));
        assert_eq!(eng.nest_root[&LoopId(2)], LoopId(2));
    }

    #[test]
    fn trip_variance_via_welford() {
        let (_interp, eng) = run(
            "for (var r = 1; r <= 4; r++) {\n\
               for (var i = 0; i < r * 10; i++) { }\n\
             }",
            Mode::LoopProfile,
        );
        let eng = eng.borrow();
        let inner = &eng.records[&LoopId(2)];
        assert_eq!(inner.instances, 4);
        assert_eq!(inner.trips.mean(), 25.0); // (10+20+30+40)/4
        assert!((inner.trips.stddev() - 125.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn break_and_return_still_record_exits() {
        let (_interp, eng) = run(
            "function f() {\n\
               for (var i = 0; i < 100; i++) {\n\
                 if (i === 3) { return i; }\n\
               }\n\
             }\n\
             f();\n\
             for (var j = 0; j < 100; j++) { if (j === 5) { break; } }",
            Mode::LoopProfile,
        );
        let eng = eng.borrow();
        assert_eq!(eng.open_loops(), 0, "stack must unwind cleanly");
        let f_loop = &eng.records[&LoopId(1)];
        let b_loop = &eng.records[&LoopId(2)];
        assert_eq!(f_loop.instances, 1);
        assert_eq!(f_loop.trips.mean(), 4.0); // iterations 1..=4 entered
        assert_eq!(b_loop.instances, 1);
        assert_eq!(b_loop.trips.mean(), 6.0);
    }

    #[test]
    fn recursion_detected_and_tainted() {
        let (_interp, eng) = run(
            "function rec(n) {\n\
               var s = 0;\n\
               for (var i = 0; i < 2; i++) {\n\
                 if (n > 0) { s += rec(n - 1); }\n\
               }\n\
               return s;\n\
             }\n\
             rec(3);",
            Mode::LoopProfile,
        );
        let eng = eng.borrow();
        assert!(eng.records[&LoopId(1)].recursion_tainted);
        assert!(eng
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::Recursion));
    }

    #[test]
    fn fig6_nbody_warnings() {
        // The paper's Fig. 6 program, with a concrete setup and 3 steps.
        let src = r#"
var dT = 0.01;
var bodies = [];
var setup;
for (setup = 0; setup < 4; setup++) {
  bodies.push({ x: setup, y: 0, vX: 0, vY: 0, fX: 1, fY: 1, m: 1 });
}
function Particle() { this.x = 0; this.y = 0; this.m = 0; }
function computeForces() { }
function step() {
  computeForces();
  var com = new Particle();
  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];
    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;
    p.x += p.vX * dT;
    p.y += p.vY * dT;
    com.m = com.m + p.m;
    com.x = (com.x * com.m + p.x * p.m) / (com.m + p.m);
    com.y = (com.y * com.m + p.y * p.m) / (com.m + p.m);
  }
  return com;
}
var steps = 0;
while (steps < 3) {
  var com = step();
  steps++;
}
"#;
        let (_interp, eng) = run(src, Mode::Dependence);
        let eng = eng.borrow();
        let loops = &eng.loops;

        // Loop ids in source order: 1 = setup for, 2 = the step() for,
        // 3 = the while.
        let find = |kind: WarningKind, subject: &str| {
            eng.warnings
                .iter()
                .find(|w| w.kind == kind && w.subject == subject)
                .unwrap_or_else(|| {
                    panic!(
                        "missing {kind:?} for {subject}; have: {:?}",
                        eng.warnings
                            .iter()
                            .map(|w| format!("{:?} {}", w.kind, w.subject))
                            .collect::<Vec<_>>()
                    )
                })
        };

        // (a) write to variable p: while ok ok -> for ok dependence.
        let wp = find(WarningKind::VarWrite, "p");
        let rendered = render(&wp.characterization, loops);
        assert!(
            rendered.starts_with("while(") && rendered.contains("ok ok -> for("),
            "unexpected characterization: {rendered}"
        );
        assert!(rendered.ends_with("ok dependence"), "{rendered}");

        // (b) writes to properties of p and com share the same shape.
        for subject in ["p.vX", "p.vY", "p.x", "p.y", "com.m", "com.x", "com.y"] {
            let w = find(WarningKind::SharedPropWrite, subject);
            let r = render(&w.characterization, loops);
            assert!(
                r.contains("ok ok -> for(") && r.ends_with("ok dependence"),
                "{subject}: {r}"
            );
        }

        // (c) flow reads of com.x / com.y / com.m.
        for subject in ["com.m", "com.x", "com.y"] {
            let w = find(WarningKind::FlowRead, subject);
            let r = render(&w.characterization, loops);
            assert!(
                r.contains("ok ok -> for(") && r.ends_with("ok dependence"),
                "flow {subject}: {r}"
            );
        }

        // The induction variable i is recorded as a var write with ++
        // (the `var i = 0` init is a separate "init" warning).
        assert!(eng.warnings.iter().any(|w| w.kind == WarningKind::VarWrite
            && w.subject == "i"
            && w.op.as_deref() == Some("++")));
    }

    #[test]
    fn private_iteration_locals_produce_no_warnings() {
        let (_interp, eng) = run(
            "function f(v) { var t = { s: 0 }; t.s = v * 2; return t.s; }\n\
             var out = 0;\n\
             for (var i = 0; i < 10; i++) { out += f(i); }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        // t is created and written entirely within one iteration: no
        // SharedPropWrite warning for t.s.
        assert!(
            !eng.warnings
                .iter()
                .any(|w| w.kind == WarningKind::SharedPropWrite && w.subject == "t.s"),
            "t.s wrongly flagged: {:?}",
            eng.warnings
        );
        // out is a reduction accumulator: flagged with op "+=".
        let w = eng
            .warnings
            .iter()
            .find(|w| w.kind == WarningKind::VarWrite && w.subject == "out")
            .expect("out flagged");
        assert_eq!(w.op.as_deref(), Some("+="));
    }

    #[test]
    fn disjoint_index_writes_have_high_disjointness() {
        let (_interp, eng) = run(
            "var data = new Float32Array(64);\n\
             for (var i = 0; i < 64; i++) { data[i] = i * 2; }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        let stats = eng.subject_stats_for("data[*]").expect("stats for data[*]");
        assert_eq!(stats.writes, 64);
        // one window, 64 writes to 64 distinct locations
        assert!(
            stats.disjointness() > 0.9,
            "disjointness {}",
            stats.disjointness()
        );
        // Conflicting writes to one field: low disjointness.
        let (_interp, eng) = run(
            "var acc = { v: 0 };\n\
             for (var i = 0; i < 64; i++) { acc.v = acc.v + i; }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        let stats = eng.subject_stats_for("acc.v").expect("stats for acc.v");
        assert!(
            stats.disjointness() < 0.1,
            "disjointness {}",
            stats.disjointness()
        );
        // And the read side is a flow dependence.
        assert!(eng
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::FlowRead && w.subject == "acc.v"));
    }

    #[test]
    fn array_push_in_loop_is_output_dependence() {
        let (_interp, eng) = run(
            "var results = [];\n\
             for (var i = 0; i < 8; i++) { results.push(i * i); }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        assert!(
            eng.warnings.iter().any(
                |w| w.kind == WarningKind::SharedPropWrite && w.subject == "results.<elements>"
            ),
            "push not flagged: {:?}",
            eng.warnings
                .iter()
                .map(|w| (w.kind, w.subject.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn focus_limits_recording_to_one_nest() {
        let src = "var a = { v: 0 };\n\
                   var b = { v: 0 };\n\
                   for (var i = 0; i < 4; i++) { a.v += i; }\n\
                   for (var j = 0; j < 4; j++) { b.v += j; }";
        // Focused on loop 2 (the second for): only b.v warnings appear.
        let (instrumented, loops) =
            ceres_instrument::instrument_source(src, Mode::Dependence).unwrap();
        let mut interp = Interp::new(42);
        ceres_dom::install_dom(&mut interp);
        let engine = attach_engine(&mut interp, Mode::Dependence, loops);
        engine.borrow_mut().focus = Some(LoopId(2));
        interp.eval_source(&instrumented).unwrap();
        engine.borrow_mut().flush_events();
        let eng = engine.borrow();
        assert!(eng.warnings.iter().any(|w| w.subject == "b.v"));
        assert!(!eng.warnings.iter().any(|w| w.subject == "a.v"));
    }

    #[test]
    fn dom_accesses_attributed_to_open_loops() {
        let (_interp, eng) = run(
            "var el = document.getElementById(\"out\");\n\
             for (var i = 0; i < 5; i++) { el.innerHTML = \"i\" + i; }\n\
             for (var j = 0; j < 5; j++) { var x = j * 2; }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        assert!(eng
            .dom_by_loop
            .get(&LoopId(1))
            .map(|t| t.contains("dom"))
            .unwrap_or(false));
        assert!(!eng.dom_by_loop.contains_key(&LoopId(2)));
    }

    #[test]
    fn warnings_deduplicate_with_counts() {
        let (_interp, eng) = run(
            "var g = 0;\n\
             for (var i = 0; i < 50; i++) { g = i; }",
            Mode::Dependence,
        );
        let eng = eng.borrow();
        let w: Vec<_> = eng
            .warnings
            .iter()
            .filter(|w| w.kind == WarningKind::VarWrite && w.subject == "g")
            .collect();
        assert_eq!(w.len(), 1, "deduplicated");
        assert_eq!(w[0].count, 50);
    }

    #[test]
    fn events_drain_on_batch_overflow_mid_iteration() {
        // One iteration performs far more accesses than EVENT_BATCH; the
        // forced drain must preserve per-access stamps and dedup counts.
        let n = hooks::EVENT_BATCH * 3;
        let src = format!(
            "var g = 0;\n\
             var o = {{ v: 0 }};\n\
             for (var i = 0; i < 2; i++) {{\n\
               var j = 0;\n\
               while (j < {n}) {{ g = j; o.v = j; j++; }}\n\
             }}"
        );
        let (_interp, eng) = run(&src, Mode::Dependence);
        let eng = eng.borrow();
        let g = eng
            .warnings
            .iter()
            .find(|w| w.kind == WarningKind::VarWrite && w.subject == "g")
            .expect("g flagged");
        assert_eq!(g.count, 2 * n as u64);
        assert!(eng
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::SharedPropWrite && w.subject == "o.v"));
    }

    #[test]
    fn mcall_preserves_receiver_semantics() {
        let (interp, _eng) = run(
            "var counter = { n: 0, bump: function () { this.n += 1; return this.n; } };\n\
             for (var i = 0; i < 3; i++) { counter.bump(); }\n\
             console.log(counter.n);",
            Mode::Dependence,
        );
        assert_eq!(interp.console, vec!["3"]);
    }

    #[test]
    fn instrumented_programs_compute_same_results() {
        // Semantics preservation: the same program, all four ways.
        let src = "var out = [];\n\
                   function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }\n\
                   for (var i = 0; i < 8; i++) { out.push(fib(i)); }\n\
                   console.log(out.join(\",\"));";
        let expected = "0,1,1,2,3,5,8,13";
        let mut plain = Interp::new(42);
        plain.eval_source(src).unwrap();
        assert_eq!(plain.console, vec![expected]);
        for mode in [Mode::Lightweight, Mode::LoopProfile, Mode::Dependence] {
            let (interp, _eng) = run(src, mode);
            assert_eq!(interp.console, vec![expected], "{mode:?}");
        }
    }
}

#[cfg(test)]
mod polymorphism_tests {
    use crate::engine::run_instrumented;
    use ceres_instrument::Mode;
    use ceres_interp::intern;

    #[test]
    fn polymorphic_variable_in_loop_is_detected() {
        let (_interp, eng) = run_instrumented(
            "var x = 0;\n\
             var i;\n\
             for (i = 0; i < 6; i++) {\n\
               x = i % 2 === 0 ? i : \"s\" + i;\n\
             }",
            Mode::Dependence,
            1,
        )
        .unwrap();
        let eng = eng.borrow();
        let poly = eng.polymorphic_subjects();
        assert!(
            poly.iter()
                .any(|(s, tys)| s == "x" && tys.contains(&"number") && tys.contains(&"string")),
            "{poly:?}"
        );
    }

    #[test]
    fn monomorphic_and_nullable_variables_are_not_flagged() {
        let (_interp, eng) = run_instrumented(
            "var n = 0;\n\
             var maybe = null;\n\
             var i;\n\
             for (i = 0; i < 6; i++) {\n\
               n = i * 2;\n\
               maybe = i % 2 === 0 ? null : undefined;\n\
             }",
            Mode::Dependence,
            1,
        )
        .unwrap();
        let eng = eng.borrow();
        let poly = eng.polymorphic_subjects();
        assert!(poly.is_empty(), "{poly:?}");
        // n was observed, with exactly one type.
        let n_types: Vec<usize> = eng
            .observed_types
            .iter()
            .filter(|((name, _), _)| &*intern::resolve(*name) == "n")
            .map(|(_, tys)| tys.len())
            .collect();
        assert_eq!(n_types, vec![1]);
    }

    #[test]
    fn polymorphic_property_is_detected() {
        let (_interp, eng) = run_instrumented(
            "var o = { v: 0 };\n\
             var i;\n\
             for (i = 0; i < 4; i++) {\n\
               o.v = i === 2 ? function () { return 1; } : i;\n\
             }",
            Mode::Dependence,
            1,
        )
        .unwrap();
        let eng = eng.borrow();
        let poly = eng.polymorphic_subjects();
        assert!(
            poly.iter()
                .any(|(s, tys)| s == "o.v" && tys.contains(&"function")),
            "{poly:?}"
        );
    }

    #[test]
    fn writes_outside_loops_are_not_observed() {
        let (_interp, eng) =
            run_instrumented("var a = 1;\na = \"str\";\na = true;", Mode::Dependence, 1).unwrap();
        let eng = eng.borrow();
        assert!(eng.polymorphic_subjects().is_empty());
    }
}
