//! # ceres-core
//!
//! The JS-CERES profiling and runtime dependence-analysis engine — the
//! primary contribution of *"Are web applications ready for parallelism?"*
//! (Radoi, Herhut, Sreeram, Dig — PPoPP 2015), reproduced in Rust.
//!
//! JS-CERES answers two research questions about a web application:
//!
//! * **Q1 — how much latent data parallelism is available?** Measured by
//!   staged profiling: a lightweight open-loop counter bounds the time spent
//!   in loops (Table 2); per-loop instance/trip/time statistics with
//!   Welford variance identify the computationally intensive nests
//!   (Table 3, left half).
//! * **Q2 — what impedes parallelization?** A dependence analysis stamps
//!   every binding and object with the stack of open loops at creation,
//!   snapshots property writes, and characterizes each access as an
//!   `ok`/`dependence` triple list per loop level (Fig. 6); a classifier
//!   rolls the warnings up into control-flow divergence, DOM access, and
//!   dependence-breaking difficulty (Table 3, right half) plus Amdahl
//!   speedup bounds (Sec. 4.2).
//!
//! Module map:
//!
//! * [`welford`] — online mean/variance (paper's \[36\]);
//! * [`stack`] — characterization stacks, stamps, and the diff rules;
//! * [`engine`] — hook runtime wiring the instrumentation to the analysis;
//! * [`classify`] — Table 3 columns 5–8 and the Amdahl model;
//! * [`report`] — paper-style rendering + the local "github" repo;
//! * [`pipeline`] — the Fig. 5 proxy dataflow, end to end;
//! * [`fleet`] — the fault-tolerant thread-per-app fleet supervisor;
//! * [`mod@serve`] — the `jsceresd` serving core (sharded persistent cache,
//!   spill-to-disk admission, graceful drain);
//! * [`supervisor`] — process-isolated analysis workers with supervised
//!   restart;
//! * [`spill`] — the crash-safe disk-backed overflow queue;
//! * [`obs`] — phase-stamped tracing, counters, and the versioned
//!   `--metrics`/`--trace` surfaces.
//!
//! ```
//! use ceres_core::engine::run_instrumented;
//! use ceres_instrument::Mode;
//!
//! let (_interp, engine) = run_instrumented(
//!     "var total = 0;\n\
//!      for (var i = 0; i < 100; i++) { total += i; }",
//!     Mode::Dependence,
//!     42,
//! ).unwrap();
//! let engine = engine.borrow();
//! // `total` is an accumulator shared across iterations: flagged.
//! assert!(engine.warnings.iter().any(|w| w.subject == "total"));
//! ```

pub mod cache;
pub mod classify;
pub mod engine;
pub mod fleet;
pub mod obs;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod serve;
pub mod spill;
pub mod stack;
pub mod suggest;
pub mod supervisor;
pub mod tasks;
pub mod welford;
pub mod whatif;

pub use cache::{
    sha256, sha256_hex, CacheKey, CacheStats, ResultCache, ShardedCache, ShardedCacheStats,
};
pub use classify::{
    amdahl_bound, amdahl_speedup, classify_nests, static_features, Difficulty, Divergence,
    NestClassification,
};
pub use engine::{attach_engine, run_instrumented, Engine, EngineRef, Warning, WarningKind};
pub use fleet::{
    default_workers, run_fleet, run_fleet_with, supervise, AppOutcome, AppReport, AppStatus, Fault,
    FaultPlan, FaultSpec, FleetJob, FleetOutcome, FleetPolicy, JobError, NestReport, WarningReport,
    API_SCHEMA_VERSION,
};
pub use obs::{
    chrome_trace, emit_progress, install_progress_sink, AppMetrics, Counters, FleetMetrics,
    PhaseSpan, Progress, ProgressSinkGuard, RunObs, ServeCounters, METRICS_SCHEMA_VERSION,
};
pub use parallel::{
    equivalence, run_parallel, EquivalenceReport, ParallelError, ParallelRunOutput, ParallelSpec,
};
pub use pipeline::{
    analyze, prepare_source, publish_report, AnalyzeOptions, AppRun, Document, PreparedSource,
    WebServer,
};
pub use report::ReportRepo;
pub use serve::{
    mode_wire_name, parse_mode, render_frame, request_wire_json, serve, AnalysisRequest,
    DrainHandle, Frame, ServeConfig, ServerHandle, ONESHOT_SCHEMA_VERSION, SERVE_STATS_SCHEMA,
};
pub use spill::{ephemeral_dir, SpillQueue, SpillStats};
pub use stack::{
    characterize_write, characterize_write_bits, flow_dependence, flow_dependence_bits, render,
    CharBits, Characterization, Flag,
};
pub use suggest::{render_suggestions, suggest, Suggestion};
pub use supervisor::{worker_serve_stdio, SlotOutcome, WorkerResponse, WorkerSlot, WorkerSpec};
pub use tasks::{task_limit_study, TaskLimitStudy, TaskRecord};
pub use welford::Welford;
pub use whatif::{
    predicted_speedup, predicted_speedup_capped, render_whatif, whatif, NestPrediction,
    WhatIfReport, WHATIF_SCHEMA_VERSION,
};

/// Re-exported so downstream users need only one crate for the common path.
pub use ceres_instrument::Mode;

/// Loop identity, re-exported for [`ParallelSpec::target`] consumers.
pub use ceres_ast::LoopId;

/// The symbol table the hot path is keyed on — re-exported so analysis
/// consumers can write `ceres_core::intern::Sym` (see `docs/PERFORMANCE.md`).
pub use ceres_interp::intern;
