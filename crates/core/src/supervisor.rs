//! Worker *process* supervision for `jsceresd`.
//!
//! Through PR 5 the daemon ran every job on an in-process thread pool:
//! `catch_unwind` contains a Rust panic, but a segfault-class failure
//! (stack overflow in native code, an `abort`, an OOM kill) takes the
//! whole daemon — and its queue, cache, and every connected client —
//! down with it. The Servo experience report (arXiv:1505.07383) names
//! the fix: make the **process** the isolation boundary. This module
//! implements it:
//!
//! * [`WorkerSpec`] describes how to start one analysis worker — in
//!   production, `jsceresd --worker …`, the daemon re-executing itself.
//! * [`worker_serve_stdio`] is the worker side: a loop that reads one
//!   line-JSON job per line on stdin, runs it through the same
//!   [`crate::fleet::supervise`] machinery a fleet job gets (so retry,
//!   tick watchdog, and panic containment still work *inside* the
//!   worker), and writes one [`WorkerResponse`] line on stdout.
//! * [`WorkerSlot`] is the supervisor side: each serve worker thread
//!   owns one slot, which owns (at most) one child process. A child
//!   that dies mid-job costs exactly that job: the slot reaps it,
//!   respawns with bounded exponential backoff, retries the job once on
//!   the fresh child, and otherwise fails the job cleanly while the
//!   daemon keeps serving.
//!
//! The worker protocol deliberately reuses the public wire vocabulary:
//! the job line is a normal [`crate::serve::AnalysisRequest`] (with the
//! options already resolved to explicit values by the supervisor, so a
//! worker's own defaults can never skew the cache key), and the
//! response fragment is built by the same code path the in-process
//! backend uses — which is what keeps cold envelopes byte-identical
//! across backends and golden-pinned.
//!
//! For a `stream:true` job the pipe carries *multiple* lines: zero or
//! more frame lines (`{"frame":"phase",…}` / `{"frame":"partial",…}`)
//! followed by exactly one terminal [`WorkerResponse`] line. The
//! supervisor multiplexes the frame lines back to the right client
//! connection ([`WorkerSlot::run`]'s `on_frame` callback); a worker
//! that crashes mid-stream hits the ordinary crash path — the job is
//! retried once on a fresh child (which re-emits its frames) or failed
//! cleanly. Worker-side, a per-job stdout gate closes before the
//! terminal line is written, so a runner thread abandoned by the wall
//! watchdog can never interleave a stray frame into the next job's
//! response.

#![deny(missing_docs)]

use crate::cache::CacheKey;
use crate::fleet::{supervise, FleetJob, JobWork};
use crate::serve::{
    frame_for_progress, request_options, result_fragment, AnalysisRequest, Frame, Resolver,
    ServeConfig,
};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// How a worker process is started.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Executable to spawn (normally `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments — normally `--worker` plus the resolved serve defaults,
    /// so the child computes identical options (and cache keys) for
    /// every job.
    pub args: Vec<String>,
}

/// One line of worker stdout: the finished job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerResponse {
    /// Whether the job produced a report.
    pub ok: bool,
    /// Interpreter ticks this job spent (0 for failures without reports).
    pub ticks: u64,
    /// The response payload fragment — exactly what the in-process
    /// backend's fragment builder produces, so the supervisor can cache
    /// and forward it unchanged.
    pub fragment: String,
}

/// A non-terminal frame line on the worker pipe. Discriminated from the
/// terminal [`WorkerResponse`] by its leading `"frame"` key (both sides
/// render deterministically, so the prefix check is exact): phase and
/// partial frames stream through, the terminal line never does.
#[derive(Debug, Deserialize)]
struct WorkerFrameLine {
    frame: String,
    phase: Option<String>,
    start_ticks: Option<u64>,
    end_ticks: Option<u64>,
    fragment: Option<String>,
}

/// Parse one worker stdout line as a streamed frame, or `None` if it is
/// the terminal response (or unrecognized — fail toward the strict
/// terminal parser, whose error is a crash signal).
fn parse_worker_frame(line: &str) -> Option<Frame> {
    if !line.starts_with("{\"frame\":") {
        return None;
    }
    let f: WorkerFrameLine = serde_json::from_str(line).ok()?;
    match f.frame.as_str() {
        "phase" => Some(Frame::Phase {
            phase: f.phase?,
            start_ticks: f.start_ticks.unwrap_or(0),
            end_ticks: f.end_ticks.unwrap_or(0),
        }),
        "partial" => Some(Frame::Partial {
            fragment: f.fragment?,
        }),
        _ => None,
    }
}

/// Render the worker-side frame line for a streamed frame (the inverse
/// of [`parse_worker_frame`]); frames with no pipe form render `None`.
fn render_worker_frame(frame: &Frame) -> Option<String> {
    match frame {
        Frame::Phase {
            phase,
            start_ticks,
            end_ticks,
        } => Some(format!(
            "{{\"frame\":\"phase\",\"phase\":\"{}\",\"start_ticks\":{start_ticks},\"end_ticks\":{end_ticks}}}",
            crate::serve::json_escape(phase)
        )),
        Frame::Partial { fragment } => Some(format!(
            "{{\"frame\":\"partial\",\"fragment\":\"{}\"}}",
            crate::serve::json_escape(fragment)
        )),
        _ => None,
    }
}

/// Base respawn backoff after a worker crash; doubles per consecutive
/// crash up to [`MAX_BACKOFF`], and resets after a successful job.
const BASE_BACKOFF: Duration = Duration::from_millis(50);
/// Backoff ceiling — a crash-looping worker never locks the slot out for
/// more than this per respawn.
const MAX_BACKOFF: Duration = Duration::from_secs(2);
/// Spawn attempts per job before declaring the slot unavailable.
const SPAWN_TRIES: u32 = 3;
/// Job attempts across worker crashes: the job is retried once on a
/// fresh worker, then failed cleanly.
const JOB_TRIES: u32 = 2;

/// A live child process with its pipe pair.
struct WorkerChild {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl WorkerChild {
    fn spawn(spec: &WorkerSpec) -> std::io::Result<WorkerChild> {
        let mut child = Command::new(&spec.program)
            .args(&spec.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            // stderr inherits: worker panics and watchdog chatter land in
            // the daemon's stderr where the operator can see them.
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Ok(WorkerChild {
            child,
            stdin,
            stdout,
        })
    }

    /// Send one job line and block for the terminal response line,
    /// forwarding any interleaved frame lines to `on_frame` as they
    /// arrive. Any I/O error (including EOF — the child died) is a
    /// crash signal to the slot.
    fn send(
        &mut self,
        wire: &str,
        on_frame: &mut dyn FnMut(Frame),
    ) -> std::io::Result<WorkerResponse> {
        self.stdin.write_all(wire.as_bytes())?;
        self.stdin.write_all(b"\n")?;
        self.stdin.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.stdout.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "worker process closed stdout mid-job",
                ));
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(frame) = parse_worker_frame(trimmed) {
                on_frame(frame);
                continue;
            }
            return serde_json::from_str(trimmed).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad worker response: {e}"),
                )
            });
        }
    }

    /// OS pid (for logs and the ops manual's kill-a-worker drills).
    fn id(&self) -> u32 {
        self.child.id()
    }
}

impl Drop for WorkerChild {
    fn drop(&mut self) {
        // Closing stdin asks the worker loop to exit; give it a moment,
        // then make sure it is gone and reaped either way.
        let _ = self.stdin.flush();
        for _ in 0..20 {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The result of asking a slot to run one job.
#[derive(Debug)]
pub enum SlotOutcome {
    /// The worker answered.
    Done(WorkerResponse),
    /// The worker process died on every attempt; the job failed but the
    /// daemon (and the slot, after respawn) keep going.
    Crashed {
        /// Job attempts consumed (each on a fresh worker).
        attempts: u32,
    },
    /// The worker binary cannot be spawned at all (missing binary, fork
    /// failure). The job fails; admission stays up.
    Unavailable(String),
}

/// Supervisor-side handle owned by one serve worker thread: at most one
/// child process, plus the restart bookkeeping.
pub struct WorkerSlot {
    spec: WorkerSpec,
    child: Option<WorkerChild>,
    consecutive_crashes: u32,
    restarts: u64,
}

impl WorkerSlot {
    /// A slot for `spec`; the child is spawned lazily on the first job.
    pub fn new(spec: WorkerSpec) -> WorkerSlot {
        WorkerSlot {
            spec,
            child: None,
            consecutive_crashes: 0,
            restarts: 0,
        }
    }

    /// Total worker respawns this slot has performed.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Current child pid, if one is running.
    pub fn child_id(&self) -> Option<u32> {
        self.child.as_ref().map(WorkerChild::id)
    }

    fn backoff(&self) -> Duration {
        let shift = self.consecutive_crashes.saturating_sub(1).min(6);
        MAX_BACKOFF.min(BASE_BACKOFF * (1u32 << shift))
    }

    fn ensure_child(&mut self) -> Result<(), String> {
        if self.child.is_some() {
            return Ok(());
        }
        let mut last_err = String::new();
        for attempt in 0..SPAWN_TRIES {
            match WorkerChild::spawn(&self.spec) {
                Ok(c) => {
                    self.child = Some(c);
                    return Ok(());
                }
                Err(e) => {
                    last_err = e.to_string();
                    if attempt + 1 < SPAWN_TRIES {
                        std::thread::sleep(BASE_BACKOFF * (attempt + 1));
                    }
                }
            }
        }
        Err(format!(
            "cannot spawn worker `{}`: {last_err}",
            self.spec.program.display()
        ))
    }

    /// Run one job (a wire-format request line). Frame lines the worker
    /// streams mid-job are handed to `on_frame` as they arrive (pass a
    /// no-op for one-shot jobs); the terminal response is the return
    /// value. A job retried on a fresh worker after a crash re-emits
    /// its frames — clients see duplicate phases, never a lost
    /// terminal. Returns the outcome plus the number of worker restarts
    /// this call performed — the caller feeds that into the
    /// `worker_restarts` counter.
    pub fn run(&mut self, wire: &str, on_frame: &mut dyn FnMut(Frame)) -> (SlotOutcome, u64) {
        let mut restarts_this_call = 0u64;
        for attempt in 1..=JOB_TRIES {
            if let Err(e) = self.ensure_child() {
                return (SlotOutcome::Unavailable(e), restarts_this_call);
            }
            let child = self.child.as_mut().expect("ensured child");
            match child.send(wire, on_frame) {
                Ok(resp) => {
                    self.consecutive_crashes = 0;
                    return (SlotOutcome::Done(resp), restarts_this_call);
                }
                Err(_) => {
                    // The child died (or broke protocol) mid-job: reap
                    // it, back off boundedly, and either retry the job on
                    // a fresh worker or fail it cleanly.
                    self.child = None;
                    self.consecutive_crashes += 1;
                    self.restarts += 1;
                    restarts_this_call += 1;
                    if attempt < JOB_TRIES {
                        std::thread::sleep(self.backoff());
                    }
                }
            }
        }
        (
            SlotOutcome::Crashed {
                attempts: JOB_TRIES,
            },
            restarts_this_call,
        )
    }

    /// Drop the child (graceful: stdin EOF, then kill as a last resort).
    pub fn shutdown(&mut self) {
        self.child = None;
    }
}

/// The worker side of the protocol: serve jobs from stdin to stdout
/// until EOF. This is what `jsceresd --worker` runs. Each job line is an
/// [`AnalysisRequest`] with options already made explicit by the
/// supervisor; each response line is a [`WorkerResponse`].
///
/// Inside the worker, jobs still run under [`supervise`] — the tick
/// watchdog, wall backstop, transient-error retry, and `catch_unwind`
/// all apply — so the *process* boundary is reserved for the failures
/// those cannot contain. `inject:"crash"` aborts the worker process on
/// purpose (the supervised-crash drill used by tests and
/// `scripts/serve_smoke.sh`).
pub fn worker_serve_stdio(config: &ServeConfig, resolver: &Resolver) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut line = String::new();
    loop {
        line.clear();
        let n = stdin.lock().read_line(&mut line)?;
        if n == 0 {
            return Ok(()); // supervisor closed our stdin: clean exit
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = run_one_job(trimmed, config, resolver);
        stdout.write_all(response.as_bytes())?;
        stdout.write_all(b"\n")?;
        stdout.flush()?;
    }
}

/// Wrap a job's work so each supervised attempt emits frame lines to
/// this process's stdout — but only while the per-job gate is open, and
/// only while *holding* the gate lock, so closing the gate (which
/// [`run_one_job`] does before rendering the terminal line) both blocks
/// on any in-flight write and silences stragglers. Without the gate, a
/// runner thread abandoned by the wall watchdog could write a frame
/// *after* the terminal response and desync the pipe into the next
/// job's stream.
fn streamed_stdio_work(inner: JobWork, gate: Arc<Mutex<bool>>) -> JobWork {
    Arc::new(move |worker, attempt| {
        let gate = Arc::clone(&gate);
        let _guard = crate::obs::install_progress_sink(Box::new(move |p| {
            let Some(frame) = frame_for_progress(p) else {
                return;
            };
            let Some(line) = render_worker_frame(&frame) else {
                return;
            };
            let open = gate.lock().unwrap_or_else(PoisonError::into_inner);
            if *open {
                let mut out = std::io::stdout().lock();
                let _ = out.write_all(line.as_bytes());
                let _ = out.write_all(b"\n");
                let _ = out.flush();
            }
        }));
        inner(worker, attempt)
    })
}

/// Run one job line — streaming frames to stdout when the job asks for
/// it — and render the terminal worker response line.
fn run_one_job(wire: &str, config: &ServeConfig, resolver: &Resolver) -> String {
    let req: AnalysisRequest = match serde_json::from_str(wire) {
        Ok(r) => r,
        Err(e) => return worker_error_line(&format!("bad worker job line: {e}")),
    };
    if req.inject.as_deref() == Some("crash") {
        // The one fault `supervise` cannot contain, on purpose: die the
        // way a segfaulting worker would, so the supervisor's restart
        // path gets exercised by something real.
        eprintln!(
            "worker: injected crash — aborting (pid {})",
            std::process::id()
        );
        std::process::abort();
    }
    let opts = match request_options(&req, config) {
        Ok(o) => o,
        Err(e) => return worker_error_line(&e),
    };
    let resolved = match (resolver)(&req, &opts) {
        Ok(r) => r,
        Err(e) => return worker_error_line(&e),
    };
    let key = CacheKey::of(&resolved.source, &opts, req.scale.unwrap_or(1));
    let gate = Arc::new(Mutex::new(true));
    let work = if req.stream == Some(true) {
        streamed_stdio_work(resolved.work, Arc::clone(&gate))
    } else {
        resolved.work
    };
    let job = FleetJob {
        app: resolved.app,
        slug: resolved.slug,
        work,
    };
    let outcome = supervise(&job, 0, &config.policy);
    // Close the gate before the terminal line: blocks until any
    // in-flight frame write finishes, then stragglers no-op.
    *gate.lock().unwrap_or_else(PoisonError::into_inner) = false;
    let ticks = outcome
        .report
        .as_ref()
        .map(|r| r.obs.counters.interp_ticks)
        .unwrap_or(0);
    let (ok, fragment) = result_fragment(&key, &outcome);
    render_worker_response(ok, ticks, &fragment)
}

/// Hand-assembled [`WorkerResponse`] line (all fields always present, so
/// the supervisor-side serde parse never sees an optional).
fn render_worker_response(ok: bool, ticks: u64, fragment: &str) -> String {
    format!(
        "{{\"ok\":{ok},\"ticks\":{ticks},\"fragment\":\"{}\"}}",
        crate::serve::json_escape(fragment)
    )
}

fn worker_error_line(error: &str) -> String {
    let fragment = format!(
        "\"key\":\"\",\"app\":\"\",\"slug\":\"\",\"status\":\"failed\",\"attempts\":0,\"error\":\"{}\"",
        crate::serve::json_escape(error)
    );
    render_worker_response(false, 0, &fragment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_failure_is_reported_not_fatal() {
        let mut slot = WorkerSlot::new(WorkerSpec {
            program: PathBuf::from("/nonexistent/jsceresd-worker-binary"),
            args: vec!["--worker".to_string()],
        });
        let (outcome, restarts) = slot.run("{}", &mut |_| {});
        match outcome {
            SlotOutcome::Unavailable(e) => assert!(e.contains("cannot spawn"), "{e}"),
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert_eq!(restarts, 0, "spawn failures are not restarts");
    }

    #[test]
    fn crashing_command_burns_job_attempts_and_counts_restarts() {
        // `false` exits immediately: every send sees EOF ⇒ crash path.
        let mut slot = WorkerSlot::new(WorkerSpec {
            program: PathBuf::from("/bin/false"),
            args: vec![],
        });
        let (outcome, restarts) = slot.run("{\"op\":\"analyze\"}", &mut |_| {});
        match outcome {
            SlotOutcome::Crashed { attempts } => assert_eq!(attempts, JOB_TRIES),
            other => panic!("expected Crashed, got {other:?}"),
        }
        assert_eq!(restarts, JOB_TRIES as u64);
        assert_eq!(slot.restarts(), JOB_TRIES as u64);
        // The slot recovers for the next job (fresh spawn attempt).
        let (outcome2, _) = slot.run("{}", &mut |_| {});
        assert!(matches!(outcome2, SlotOutcome::Crashed { .. }));
    }

    #[test]
    fn echo_protocol_roundtrip_through_a_real_child() {
        // `cat` speaks the protocol trivially: echoes the job line back.
        // A WorkerResponse-shaped job line therefore parses as the
        // response — proving the pipe plumbing end to end.
        let mut slot = WorkerSlot::new(WorkerSpec {
            program: PathBuf::from("/bin/cat"),
            args: vec![],
        });
        let wire = r#"{"ok":true,"ticks":7,"fragment":"echoed"}"#;
        let (outcome, restarts) = slot.run(wire, &mut |_| {});
        match outcome {
            SlotOutcome::Done(resp) => {
                assert!(resp.ok);
                assert_eq!(resp.ticks, 7);
                assert_eq!(resp.fragment, "echoed");
            }
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(restarts, 0);
        assert!(slot.child_id().is_some());
        slot.shutdown();
        assert!(slot.child_id().is_none());
    }

    #[test]
    fn backoff_is_bounded() {
        let mut slot = WorkerSlot::new(WorkerSpec {
            program: PathBuf::from("/bin/false"),
            args: vec![],
        });
        slot.consecutive_crashes = 40;
        assert_eq!(slot.backoff(), MAX_BACKOFF);
        slot.consecutive_crashes = 1;
        assert_eq!(slot.backoff(), BASE_BACKOFF);
    }
}
