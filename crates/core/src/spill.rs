//! Disk-backed spill queue for the serving layer.
//!
//! `jsceresd` used to reject work the moment its bounded in-memory queue
//! filled up. This module is the other half of the admission story: when
//! the ring is full, job payloads overflow to a crash-safe, append-only
//! **segment file** and are drained strictly FIFO behind the in-memory
//! head — the GNU-parallel `disk_buffer` pattern (ROADMAP item 2).
//! Memory stays bounded (the in-process index holds only `(seq, offset,
//! len)` triples, ~24 bytes per spilled job), while admission becomes
//! effectively unbounded: the backlog is limited by disk, not RAM.
//!
//! Crash safety is *at-least-once*: every record carries its own SHA-256
//! checksum, the consumed watermark lives in a tiny sidecar file updated
//! after each pop, and a torn tail (the daemon died mid-append) is
//! detected and ignored rather than poisoning the queue. Replaying an
//! already-consumed record is harmless by construction — analysis is
//! deterministic and the result cache is first-writer-wins, so a
//! duplicate run converges on the already-stored bytes.
//!
//! Layout under the spill directory:
//!
//! ```text
//! spill.log       append-only records: "<seq:016x> <sha256hex> <payload>\n"
//! spill.consumed  ASCII decimal seq of the last consumed record
//! ```
//!
//! Payloads are single-line JSON (the serialized analysis request); a
//! payload containing a newline is rejected at push time. When the queue
//! drains empty the segment file is truncated so disk usage tracks the
//! *current* backlog, not the historical total.

#![deny(missing_docs)]

use crate::cache::sha256_hex;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Index entry for one on-disk record: where it lives and how big it is.
#[derive(Debug, Clone, Copy)]
struct Slot {
    seq: u64,
    offset: u64,
    len: u64,
}

/// Counters describing one spill queue's lifetime (surfaced through the
/// daemon's `stats` op and `docs/METRICS.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Records currently waiting on disk.
    pub depth: usize,
    /// Records appended over this process's lifetime.
    pub pushed: u64,
    /// Records found on disk at open time and requeued (crash/drain
    /// recovery).
    pub replayed: u64,
    /// Records skipped because their checksum or framing failed
    /// (truncated tail after a crash, or on-disk corruption).
    pub corrupt: u64,
    /// Peak depth observed.
    pub peak_depth: u64,
}

/// A crash-safe on-disk FIFO of single-line string payloads.
#[derive(Debug)]
pub struct SpillQueue {
    log_path: PathBuf,
    consumed_path: PathBuf,
    writer: File,
    reader: File,
    index: VecDeque<Slot>,
    next_seq: u64,
    /// End-of-valid-data offset in `spill.log` (where the next append
    /// goes). Tracked explicitly so a torn tail is overwritten, not
    /// extended.
    write_offset: u64,
    stats: SpillStats,
    /// Ephemeral queues (no operator-chosen directory) delete their files
    /// on drop instead of persisting the backlog.
    ephemeral: bool,
}

impl SpillQueue {
    /// Open (or create) the spill queue in `dir`. Existing unconsumed
    /// records are re-indexed for FIFO replay; a corrupt or torn tail is
    /// counted and discarded. `ephemeral` queues remove their files on
    /// drop.
    pub fn open(dir: &Path, ephemeral: bool) -> std::io::Result<SpillQueue> {
        std::fs::create_dir_all(dir)?;
        let log_path = dir.join("spill.log");
        let consumed_path = dir.join("spill.consumed");
        let consumed: u64 = std::fs::read_to_string(&consumed_path)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);

        let mut index = VecDeque::new();
        let mut stats = SpillStats::default();
        let mut next_seq = consumed + 1;
        let mut write_offset = 0u64;
        if log_path.exists() {
            let file = File::open(&log_path)?;
            let mut reader = BufReader::new(file);
            let mut offset = 0u64;
            let mut line = String::new();
            loop {
                line.clear();
                let n = reader.read_line(&mut line)?;
                if n == 0 {
                    break;
                }
                let len = n as u64;
                match parse_record(line.trim_end_matches('\n')) {
                    Some((seq, payload_ok)) if payload_ok => {
                        if seq > consumed {
                            index.push_back(Slot { seq, offset, len });
                            stats.replayed += 1;
                        }
                        next_seq = next_seq.max(seq + 1);
                        offset += len;
                        write_offset = offset;
                    }
                    _ => {
                        // Torn or corrupt record: everything from here on
                        // is untrustworthy (appends are sequential, so
                        // damage is a suffix). Count it and stop; the next
                        // append overwrites from `write_offset`.
                        stats.corrupt += 1;
                        break;
                    }
                }
            }
        }
        stats.depth = index.len();
        stats.peak_depth = index.len() as u64;

        let mut writer = OpenOptions::new()
            .create(true)
            .write(true)
            .open(&log_path)?;
        writer.seek(SeekFrom::Start(write_offset))?;
        let reader = File::open(&log_path)?;
        Ok(SpillQueue {
            log_path,
            consumed_path,
            writer,
            reader,
            index,
            next_seq,
            write_offset,
            stats,
            ephemeral,
        })
    }

    /// Append one payload, returning its sequence number. The record is
    /// flushed before this returns, so an accepted job survives a crash.
    pub fn push(&mut self, payload: &str) -> std::io::Result<u64> {
        if payload.contains('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "spill payloads must be single-line",
            ));
        }
        let seq = self.next_seq;
        let record = format!("{seq:016x} {} {payload}\n", sha256_hex(payload.as_bytes()));
        self.writer.write_all(record.as_bytes())?;
        self.writer.flush()?;
        self.index.push_back(Slot {
            seq,
            offset: self.write_offset,
            len: record.len() as u64,
        });
        self.next_seq += 1;
        self.write_offset += record.len() as u64;
        self.stats.pushed += 1;
        self.stats.depth = self.index.len();
        self.stats.peak_depth = self.stats.peak_depth.max(self.index.len() as u64);
        Ok(seq)
    }

    /// Pop the oldest record, advancing the consumed watermark. Corrupt
    /// records are counted and skipped. When the last record is consumed
    /// the segment file is truncated to reclaim disk.
    pub fn pop(&mut self) -> Option<(u64, String)> {
        while let Some(slot) = self.index.pop_front() {
            self.stats.depth = self.index.len();
            let mut buf = vec![0u8; slot.len as usize];
            let read_ok = self
                .reader
                .seek(SeekFrom::Start(slot.offset))
                .and_then(|_| self.reader.read_exact(&mut buf))
                .is_ok();
            self.mark_consumed(slot.seq);
            if !read_ok {
                self.stats.corrupt += 1;
                continue;
            }
            let line = String::from_utf8_lossy(&buf);
            match parse_payload(line.trim_end_matches('\n')) {
                Some(payload) => {
                    if self.index.is_empty() {
                        self.truncate();
                    }
                    return Some((slot.seq, payload));
                }
                None => {
                    self.stats.corrupt += 1;
                    continue;
                }
            }
        }
        None
    }

    /// Records currently waiting on disk.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Lifetime counters snapshot.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// The directory holding the segment + watermark files.
    pub fn dir(&self) -> &Path {
        self.log_path.parent().unwrap_or(Path::new("."))
    }

    fn mark_consumed(&mut self, seq: u64) {
        // Best-effort: a lost watermark only means an already-consumed
        // record replays once more, which is idempotent (deterministic
        // analysis + first-writer-wins cache).
        let _ = std::fs::write(&self.consumed_path, format!("{seq}\n"));
    }

    fn truncate(&mut self) {
        if self.writer.set_len(0).is_ok() {
            let _ = self.writer.seek(SeekFrom::Start(0));
            self.write_offset = 0;
        }
    }
}

impl Drop for SpillQueue {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_file(&self.log_path);
            let _ = std::fs::remove_file(&self.consumed_path);
            let _ = std::fs::remove_dir(self.dir());
        }
    }
}

/// Parse `"<seq:016x> <sha256hex> <payload>"`, returning the seq and
/// whether the checksum held.
fn parse_record(line: &str) -> Option<(u64, bool)> {
    let (seq_hex, rest) = line.split_once(' ')?;
    let (digest, payload) = rest.split_once(' ')?;
    let seq = u64::from_str_radix(seq_hex, 16).ok()?;
    Some((seq, digest == sha256_hex(payload.as_bytes())))
}

/// Parse a record line and return the payload iff the checksum holds.
fn parse_payload(line: &str) -> Option<String> {
    let (_seq_hex, rest) = line.split_once(' ')?;
    let (digest, payload) = rest.split_once(' ')?;
    if digest == sha256_hex(payload.as_bytes()) {
        Some(payload.to_string())
    } else {
        None
    }
}

/// A unique per-process scratch directory under the system temp dir, for
/// ephemeral spill queues when the operator did not pick `--spill-dir`.
pub fn ephemeral_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("jsceresd-{label}-{}-{n}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ceres-spill-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fifo_order_is_strict() {
        let dir = tmp("fifo");
        let mut q = SpillQueue::open(&dir, true).unwrap();
        for i in 0..20 {
            q.push(&format!("job-{i}")).unwrap();
        }
        for i in 0..20 {
            let (_, payload) = q.pop().expect("record");
            assert_eq!(payload, format!("job-{i}"), "FIFO order violated");
        }
        assert!(q.pop().is_none());
        assert_eq!(q.stats().pushed, 20);
    }

    #[test]
    fn interleaved_push_pop_stays_fifo() {
        let dir = tmp("interleave");
        let mut q = SpillQueue::open(&dir, true).unwrap();
        q.push("a").unwrap();
        q.push("b").unwrap();
        assert_eq!(q.pop().unwrap().1, "a");
        q.push("c").unwrap();
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn survives_reopen_with_watermark() {
        let dir = tmp("reopen");
        {
            let mut q = SpillQueue::open(&dir, false).unwrap();
            for i in 0..5 {
                q.push(&format!("persist-{i}")).unwrap();
            }
            assert_eq!(q.pop().unwrap().1, "persist-0");
            assert_eq!(q.pop().unwrap().1, "persist-1");
            // Simulate a crash: drop without draining.
        }
        let mut q = SpillQueue::open(&dir, false).unwrap();
        assert_eq!(q.stats().replayed, 3, "unconsumed tail replays");
        assert_eq!(q.pop().unwrap().1, "persist-2");
        assert_eq!(q.pop().unwrap().1, "persist-3");
        assert_eq!(q.pop().unwrap().1, "persist-4");
        assert!(q.pop().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_discarded() {
        let dir = tmp("torn");
        {
            let mut q = SpillQueue::open(&dir, false).unwrap();
            q.push("good-one").unwrap();
            q.push("good-two").unwrap();
        }
        // Simulate a crash mid-append: a partial record at the tail.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("spill.log"))
                .unwrap();
            f.write_all(b"00000000000000ff deadbeef {\"trunc").unwrap();
        }
        let mut q = SpillQueue::open(&dir, false).unwrap();
        assert_eq!(q.stats().corrupt, 1, "torn tail counted");
        assert_eq!(q.stats().replayed, 2);
        assert_eq!(q.pop().unwrap().1, "good-one");
        assert_eq!(q.pop().unwrap().1, "good-two");
        // The overwritten tail must not resurface after new pushes.
        q.push("after-crash").unwrap();
        assert_eq!(q.pop().unwrap().1, "after-crash");
        assert!(q.pop().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_checksum_is_skipped_not_served() {
        let dir = tmp("checksum");
        {
            let mut q = SpillQueue::open(&dir, false).unwrap();
            q.push("first").unwrap();
            q.push("second").unwrap();
        }
        // Flip a payload byte in the first record on disk.
        let log = dir.join("spill.log");
        let mut bytes = std::fs::read(&log).unwrap();
        let pos = bytes
            .windows(5)
            .position(|w| w == b"first")
            .expect("payload on disk");
        bytes[pos] = b'X';
        std::fs::write(&log, &bytes).unwrap();

        let mut q = SpillQueue::open(&dir, false).unwrap();
        // The corrupt record is dropped at open, and records after a bad
        // one are not trusted either — damage is treated as a suffix.
        assert_eq!(q.stats().corrupt, 1, "{:?}", q.stats());
        assert_eq!(q.stats().replayed, 0);
        assert!(q.pop().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drained_queue_truncates_its_segment_file() {
        let dir = tmp("truncate");
        let mut q = SpillQueue::open(&dir, true).unwrap();
        for i in 0..10 {
            q.push(&format!("{{\"n\":{i}}}")).unwrap();
        }
        let full = std::fs::metadata(dir.join("spill.log")).unwrap().len();
        assert!(full > 0);
        while q.pop().is_some() {}
        let drained = std::fs::metadata(dir.join("spill.log")).unwrap().len();
        assert_eq!(drained, 0, "segment file reclaimed after drain");
        // And the queue keeps working after truncation.
        q.push("again").unwrap();
        assert_eq!(q.pop().unwrap().1, "again");
    }

    #[test]
    fn newline_payloads_are_rejected() {
        let dir = tmp("newline");
        let mut q = SpillQueue::open(&dir, true).unwrap();
        assert!(q.push("two\nlines").is_err());
        assert!(q.is_empty());
    }
}
