//! The end-to-end JS-CERES pipeline (paper Fig. 5).
//!
//! The paper's tool is "a proxy server sitting between the browser and the
//! web server": it intercepts documents, rewrites the JavaScript, lets the
//! user exercise the app, and ships the analysis results to a git
//! repository. This module reproduces the same seven-step dataflow fully in
//! process:
//!
//! 1. the browser requests a document from the [`WebServer`];
//! 2. the proxy instruments any JavaScript it finds (inline `<script>`
//!    blocks are extracted, rewritten, and spliced back);
//! 3. the instrumented document is delivered to the "browser" — a fresh
//!    interpreter with DOM installed and the analysis engine attached;
//! 4. the [`Interaction`] script exercises the app (events, timers);
//! 5. the analysis results are collected from the engine;
//! 6. the proxy renders them human-readable and commits to a
//!    [`ReportRepo`];
//! 7. the caller interprets the returned [`AppRun`].

use crate::classify::{classify_nests, static_features, NestClassification};
use crate::engine::{attach_engine, EngineRef};
use crate::report::{
    render_loop_profile, render_nest_table, render_polymorphism, render_warnings, ReportRepo,
};
use ceres_dom::{extract_scripts, splice_scripts, DomHandle};
use ceres_instrument::{instrument_program, Mode};
use ceres_interp::{Control, Interp, JsResult, TICKS_PER_MS};
use std::collections::HashMap;

/// A document the web server can serve.
#[derive(Debug, Clone)]
pub enum Document {
    Html(String),
    Js(String),
}

/// The "web server": a named document store.
#[derive(Default)]
pub struct WebServer {
    docs: HashMap<String, Document>,
}

impl WebServer {
    pub fn new() -> WebServer {
        WebServer::default()
    }

    pub fn publish(&mut self, url: &str, doc: Document) {
        self.docs.insert(url.to_string(), doc);
    }

    pub fn get(&self, url: &str) -> Option<&Document> {
        self.docs.get(url)
    }
}

/// User-interaction driver: runs after the document's scripts, with access
/// to the interpreter and the DOM handle (to dispatch events). The event
/// queue is drained afterwards by the pipeline.
pub type Interaction<'a> = Box<dyn FnOnce(&mut Interp, &DomHandle) -> JsResult<()> + 'a>;

/// Result of analyzing one application run.
pub struct AppRun {
    /// Total simulated wall-clock time (Table 2, column "Total").
    pub total_ms: f64,
    /// Sampling-profiler active time (Table 2, column "Active").
    pub active_ms: f64,
    /// Time with ≥1 loop open (Table 2, column "In Loops").
    pub loops_ms: f64,
    pub engine: EngineRef,
    pub dom: DomHandle,
    /// Captured console output of the app.
    pub console: Vec<String>,
    /// Fig. 5 step trace (for the `repro fig5` target).
    pub steps: Vec<String>,
    /// The combined, *uninstrumented* JavaScript the app ran (loop ids in
    /// reports refer to this source).
    pub source: String,
    /// Phase spans and event counters for the run (see [`crate::obs`]).
    pub obs: crate::obs::RunObs,
}

impl AppRun {
    /// Fraction of total time spent in loops, the paper's latent-parallelism
    /// upper-bound proxy (Sec. 4.1).
    pub fn loop_fraction(&self) -> f64 {
        if self.total_ms == 0.0 {
            0.0
        } else {
            self.loops_ms / self.total_ms
        }
    }

    /// The Fortuna-style task-parallelism limit study over this run's
    /// tasks (main script + every event callback) — see [`crate::tasks`].
    pub fn task_study(&self) -> crate::tasks::TaskLimitStudy {
        crate::tasks::task_limit_study(&self.engine.borrow())
    }

    /// Classified Table 3 rows for this run.
    pub fn nests(&self) -> Vec<NestClassification> {
        let program = ceres_parser::parse_program(&self.source)
            .map(|mut p| {
                ceres_ast::assign_loop_ids(&mut p);
                p
            })
            .unwrap_or_else(|_| ceres_ast::Program::empty());
        let features = static_features(&program);
        classify_nests(&self.engine.borrow(), &features)
    }
}

/// Options for [`analyze`] — the stable knob surface of the core API.
///
/// Construct via [`AnalyzeOptions::builder`]; the struct is
/// `#[non_exhaustive]` so new knobs can be added without breaking
/// downstream crates. [`AnalyzeOptions::default`] remains as a migration
/// shim (fields stay public and individually assignable), but new code
/// should prefer the builder:
///
/// ```
/// use ceres_core::{AnalyzeOptions, Mode};
/// let opts = AnalyzeOptions::builder()
///     .mode(Mode::Dependence)
///     .seed(2015)
///     .build();
/// assert_eq!(opts.seed, 2015);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Instrumentation mode (paper Sec. 3.1–3.3 staging).
    pub mode: Mode,
    /// Interpreter seed; the virtual clock and `Math.random` derive from it.
    pub seed: u64,
    /// Dependence-mode focus loop (paper: "allows the programmer to focus
    /// on a specific loop").
    pub focus: Option<ceres_ast::LoopId>,
    /// Cap on processed events (safety for self-rescheduling apps).
    pub max_events: usize,
    /// Optional tick budget (deterministic watchdog: the interpreter stops
    /// with a `watchdog:` fatal once the virtual clock passes it).
    pub max_ticks: Option<u64>,
    /// Optional wall-clock cap, checked cooperatively at sampling
    /// granularity inside the interpreter. Nondeterministic backstop for
    /// apps whose virtual clock advances too slowly to trip `max_ticks`.
    pub wall_budget: Option<std::time::Duration>,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            mode: Mode::LoopProfile,
            seed: 2015,
            focus: None,
            max_events: 10_000,
            max_ticks: None,
            wall_budget: None,
        }
    }
}

impl AnalyzeOptions {
    /// Start building an option set from the defaults.
    pub fn builder() -> AnalyzeOptionsBuilder {
        AnalyzeOptionsBuilder {
            opts: AnalyzeOptions::default(),
        }
    }
}

/// Builder for [`AnalyzeOptions`] (`AnalyzeOptions::builder()`); each
/// setter overrides one default, `build()` yields the finished options.
/// This is the single construction path shared by the CLIs, the fleet,
/// and the `jsceresd` daemon (via `AnalysisRequest::to_options`).
#[derive(Debug, Clone)]
pub struct AnalyzeOptionsBuilder {
    opts: AnalyzeOptions,
}

impl AnalyzeOptionsBuilder {
    /// Set the instrumentation mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.opts.mode = mode;
        self
    }

    /// Set the interpreter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Set (or clear) the dependence-mode focus loop.
    pub fn focus(mut self, focus: Option<ceres_ast::LoopId>) -> Self {
        self.opts.focus = focus;
        self
    }

    /// Cap the number of processed events.
    pub fn max_events(mut self, max_events: usize) -> Self {
        self.opts.max_events = max_events;
        self
    }

    /// Set (or clear) the deterministic watchdog tick budget.
    pub fn max_ticks(mut self, max_ticks: Option<u64>) -> Self {
        self.opts.max_ticks = max_ticks;
        self
    }

    /// Set (or clear) the cooperative wall-clock cap.
    pub fn wall_budget(mut self, wall_budget: Option<std::time::Duration>) -> Self {
        self.opts.wall_budget = wall_budget;
        self
    }

    /// Finish the build.
    pub fn build(self) -> AnalyzeOptions {
        self.opts
    }
}

/// Run the full pipeline for `url`. See module docs for the step mapping.
pub fn analyze(
    server: &WebServer,
    url: &str,
    opts: AnalyzeOptions,
    interaction: Interaction<'_>,
) -> Result<AppRun, Control> {
    let mut steps = Vec::new();
    let mut recorder = crate::obs::SpanRecorder::new();

    // Step 1: request/response through the proxy.
    steps.push(format!(
        "1: browser requests {url}; proxy intercepts the response"
    ));
    let doc = server
        .get(url)
        .ok_or_else(|| Control::Fatal(format!("404: {url} not published")))?;

    // Collect the raw JavaScript. Multiple inline scripts share the global
    // scope and run in order, so instrumenting their concatenation is
    // equivalent and keeps loop ids globally unique.
    let combined_source = match doc {
        Document::Js(src) => src.clone(),
        Document::Html(html) => {
            let blocks = extract_scripts(html);
            blocks
                .iter()
                .map(|b| b.content.as_str())
                .collect::<Vec<_>>()
                .join("\n")
        }
    };

    // Step 2: instrument. The virtual clock only runs while JavaScript
    // executes, so the parse/rewrite spans carry wall time but a zero-width
    // tick range.
    let parse_start = recorder.now_us();
    let mut program = ceres_parser::parse_program(&combined_source)
        .map_err(|e| Control::Fatal(format!("parse error in {url}: {e}")))?;
    let loops = ceres_ast::assign_loop_ids(&mut program);
    recorder.record("parse", 0, 0, parse_start);
    let rewrite_start = recorder.now_us();
    let instrumented = ceres_ast::program_to_source(&instrument_program(&program, opts.mode));
    steps.push(format!(
        "2: proxy instruments the JavaScript ({:?} mode, {} loops found)",
        opts.mode,
        loops.len()
    ));

    // Step 3: deliver to the browser. For HTML we also exercise the splice
    // path so the document the "browser" would receive is well-formed.
    if let Document::Html(html) = doc {
        let blocks = extract_scripts(html);
        if !blocks.is_empty() {
            // One combined replacement in the first block; later blocks
            // empty (they were concatenated into the first).
            let mut replacements = vec![String::new(); blocks.len()];
            replacements[0] = instrumented.clone();
            let _spliced = splice_scripts(html, &blocks, &replacements);
        }
    }
    steps.push("3: proxy sends the instrumented document to the browser".to_string());
    recorder.record("rewrite", 0, 0, rewrite_start);

    // Step 4: the browser runs the app and the user exercises it.
    let interp_start = recorder.now_us();
    let mut interp = Interp::new(opts.seed);
    interp.max_ticks = opts.max_ticks;
    interp.clock.set_wall_cap(opts.wall_budget);
    let dom = ceres_dom::install_dom(&mut interp);
    let engine = attach_engine(&mut interp, opts.mode, loops);
    engine.borrow_mut().focus = opts.focus;
    engine
        .borrow_mut()
        .begin_task("main", interp.clock.now_ticks());
    let main_result = interp.eval_source(&instrumented);
    engine.borrow_mut().end_task(interp.clock.now_ticks());
    main_result?;
    interaction(&mut interp, &dom)?;
    interp.run_events(opts.max_events)?;
    engine.borrow_mut().flush_events();
    steps.push("4: user exercises the app; instrumentation gathers results".to_string());
    // Wall-only sub-span: time the VM backend spent lowering the AST to
    // bytecode, filed inside the interp window. Sub-spans are dropped from
    // the canonical (deterministic) view, so the 5-phase schema is
    // unchanged; recorded before "interp" so phase chaining still picks up
    // the interp span's end as the latest wall point.
    if interp.backend == ceres_interp::Backend::Vm {
        recorder.record_measured("interp.compile", 0, 0, interp_start, interp.compile_us);
    }
    recorder.record("interp", 0, interp.clock.now_ticks(), interp_start);

    // Step 5: results come back from the page.
    let total_ms = interp.clock.now_ms();
    let active_ms = interp.clock.active_ms();
    let loops_ms = engine.borrow().lw_loop_ticks as f64 / TICKS_PER_MS as f64;
    steps.push("5: browser sends analysis results back through the proxy".to_string());
    // Early result for streaming consumers: the Table-2 timing row is
    // fully determined the moment interpretation ends, well before nest
    // classification and report rendering. All four fields are
    // virtual-clock-derived, so the fragment is deterministic (and
    // golden-pinnable). serde_json formats the floats exactly like the
    // final report serializer, so a partial frame never shows a value
    // the terminal report then prints differently.
    crate::obs::emit_progress(&crate::obs::Progress::Partial(partial_timing_fragment(
        total_ms,
        active_ms,
        loops_ms,
        if total_ms == 0.0 {
            0.0
        } else {
            100.0 * loops_ms / total_ms
        },
    )));

    let counters = {
        let e = engine.borrow();
        crate::obs::Counters {
            interp_ticks: interp.clock.now_ticks(),
            samples: interp.clock.total_samples(),
            events: interp.events_processed,
            hook_calls: e.tally.total(),
            hooks: e
                .tally
                .nonzero()
                .into_iter()
                .map(|(name, n)| (name.to_string(), n))
                .collect(),
            stack_pushes: e.stack_pushes,
            warnings: e.warnings.len() as u64,
            retries: 0,
            watchdog_arms: 0,
        }
    };
    let obs = crate::obs::RunObs {
        spans: recorder.into_spans(),
        counters,
        wall_start_us: 0,
    };

    Ok(AppRun {
        total_ms,
        active_ms,
        loops_ms,
        engine,
        dom,
        console: interp.console.clone(),
        steps,
        source: combined_source,
        obs,
    })
}

/// Render the deterministic early-timing fragment for a `partial`
/// streaming frame (object body, no braces).
fn partial_timing_fragment(total_ms: f64, active_ms: f64, loops_ms: f64, loop_pct: f64) -> String {
    let f = |v: f64| serde_json::to_string(&v).expect("f64 serializes");
    format!(
        "\"total_ms\":{},\"active_ms\":{},\"loops_ms\":{},\"loop_pct\":{}",
        f(total_ms),
        f(active_ms),
        f(loops_ms),
        f(loop_pct)
    )
}

/// What the serving layer's *parse stage* learns about a job before an
/// interp slot ever sees it: the front half of the pipeline (extract →
/// parse → instrument) run to completion, with the spans it produced.
pub struct PreparedSource {
    /// Loops found by the parser (early progress signal).
    pub loops: usize,
    /// The `parse` and `rewrite` spans, in order. Tick fields are zero
    /// (the virtual clock only runs while JavaScript executes); wall
    /// fields are real and nondeterministic.
    pub spans: Vec<crate::obs::PhaseSpan>,
}

/// Run the parse+rewrite front half of the pipeline standalone. This is
/// the serving layer's pipeline *stage 1*: it validates the source and
/// yields the early phase spans on a parse-pool thread, so an
/// unparseable job is rejected without ever occupying an interp slot,
/// and the next job's parse overlaps the previous job's interp. The
/// exec stage re-lowers from the same source text — jobs must stay
/// self-contained single-line specs so they can cross a worker-process
/// boundary and be replayed from the spill file after a crash — which
/// keeps this stage pure validation + progress; parse cost is microseconds
/// against interp's hundreds of milliseconds.
pub fn prepare_source(source: &str, mode: Mode) -> Result<PreparedSource, String> {
    let mut recorder = crate::obs::SpanRecorder::new();
    let combined_source = if source.trim_start().starts_with('<') {
        extract_scripts(source)
            .iter()
            .map(|b| b.content.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    } else {
        source.to_string()
    };
    let parse_start = recorder.now_us();
    let mut program = ceres_parser::parse_program(&combined_source)
        .map_err(|e| format!("parse error in request: {e}"))?;
    let loops = ceres_ast::assign_loop_ids(&mut program);
    recorder.record("parse", 0, 0, parse_start);
    let rewrite_start = recorder.now_us();
    let _instrumented = ceres_ast::program_to_source(&instrument_program(&program, mode));
    recorder.record("rewrite", 0, 0, rewrite_start);
    Ok(PreparedSource {
        loops: loops.len(),
        spans: recorder.into_spans(),
    })
}

/// Fig. 5 steps 6–7: render the run's results and commit them to the
/// report repository. Returns the commit id.
pub fn publish_report(
    run: &mut AppRun,
    repo: &mut ReportRepo,
    app: &str,
) -> std::io::Result<String> {
    let report_start = std::time::Instant::now();
    let engine = run.engine.borrow();
    let nests = {
        // classify needs the engine borrow dropped inside run.nests()
        drop(engine);
        run.nests()
    };
    let engine = run.engine.borrow();
    let files = vec![
        (
            "timing.txt",
            format!(
                "total: {:.1} ms\nactive: {:.1} ms\nin-loops: {:.1} ms\nloop fraction: {:.1}%\n",
                run.total_ms,
                run.active_ms,
                run.loops_ms,
                100.0 * run.loop_fraction()
            ),
        ),
        ("loops.txt", render_loop_profile(&engine)),
        ("warnings.txt", render_warnings(&engine)),
        ("polymorphism.txt", render_polymorphism(&engine)),
        (
            "suggestions.txt",
            crate::suggest::render_suggestions(&engine, &crate::suggest::suggest(&engine, &nests)),
        ),
        ("nests.txt", render_nest_table(&engine, &nests)),
        ("source.js", run.source.clone()),
    ];
    let id = repo.commit(app, &files)?;
    run.steps
        .push(format!("6: proxy renders reports and commits ({id})"));
    run.steps
        .push("7: results pushed to the report repository".to_string());
    drop(engine);
    run.obs
        .push_post_phase("report", report_start.elapsed().as_micros() as u64);
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_instrument::Mode;

    fn no_interaction() -> Interaction<'static> {
        Box::new(|_, _| Ok(()))
    }

    #[test]
    fn analyze_js_document_end_to_end() {
        let mut server = WebServer::new();
        server.publish(
            "app.js",
            Document::Js(
                "var s = 0;\n\
                 for (var i = 0; i < 2000; i++) { s += i; }\n\
                 console.log(s);"
                    .to_string(),
            ),
        );
        let run = analyze(
            &server,
            "app.js",
            AnalyzeOptions::default(),
            no_interaction(),
        )
        .expect("pipeline");
        assert_eq!(run.console, vec!["1999000"]);
        assert!(run.total_ms > 0.0);
        assert!(run.loops_ms > 0.0);
        assert!(
            run.loop_fraction() > 0.5,
            "loop fraction {}",
            run.loop_fraction()
        );
        assert_eq!(run.steps.len(), 5);
    }

    #[test]
    fn analyze_html_document_with_inline_scripts() {
        let mut server = WebServer::new();
        server.publish(
            "index.html",
            Document::Html(
                "<html><body>\n\
                 <script>var acc = 0;</script>\n\
                 <div></div>\n\
                 <script>for (var i = 0; i < 100; i++) { acc += i; } console.log(acc);</script>\n\
                 </body></html>"
                    .to_string(),
            ),
        );
        let run = analyze(
            &server,
            "index.html",
            AnalyzeOptions::default(),
            no_interaction(),
        )
        .expect("pipeline");
        assert_eq!(run.console, vec!["4950"]);
    }

    #[test]
    fn interaction_and_events_drive_the_app() {
        let mut server = WebServer::new();
        server.publish(
            "app.js",
            Document::Js(
                "var clicks = 0;\n\
                 var el = document.getElementById(\"btn\");\n\
                 el.addEventListener(\"click\", function (e) {\n\
                   clicks++;\n\
                   setTimeout(function () { console.log(\"late\", clicks); }, 5);\n\
                 });"
                .to_string(),
            ),
        );
        let run = analyze(
            &server,
            "app.js",
            AnalyzeOptions::default(),
            Box::new(|interp, dom| {
                dom.dispatch(interp, "btn", "click", &[])?;
                dom.dispatch(interp, "btn", "click", &[])?;
                Ok(())
            }),
        )
        .expect("pipeline");
        assert_eq!(run.console, vec!["late 2", "late 2"]);
    }

    #[test]
    fn missing_document_is_an_error() {
        let server = WebServer::new();
        let r = analyze(
            &server,
            "nope.js",
            AnalyzeOptions::default(),
            no_interaction(),
        );
        assert!(matches!(r, Err(Control::Fatal(_))));
    }

    #[test]
    fn table2_shape_total_vs_loops_vs_active() {
        // A compute-heavy app with idle time: total > loops; the tight
        // single-function loop is under-sampled by the function-granularity
        // profiler (active < loops) — the paper's Sec. 3.1 anomaly.
        let mut server = WebServer::new();
        server.publish(
            "hot.js",
            Document::Js(
                "var s = 0;\n\
                 function tick() {\n\
                   for (var i = 0; i < 30000; i++) { s += i * 0.5; }\n\
                 }\n\
                 setTimeout(tick, 50);\n\
                 setTimeout(tick, 120);"
                    .to_string(),
            ),
        );
        let run = analyze(
            &server,
            "hot.js",
            AnalyzeOptions::default(),
            no_interaction(),
        )
        .expect("pipeline");
        assert!(run.total_ms > run.loops_ms, "idle time exists");
        assert!(run.loops_ms > 0.0);
        assert!(
            run.active_ms < run.loops_ms,
            "function-level sampling undercounts tight loops: active {} loops {}",
            run.active_ms,
            run.loops_ms
        );
    }

    #[test]
    fn publish_report_writes_files() {
        let mut server = WebServer::new();
        server.publish(
            "app.js",
            Document::Js(
                "var acc = { v: 0 };\nfor (var i = 0; i < 50; i++) { acc.v += i; }".to_string(),
            ),
        );
        let mut run = analyze(
            &server,
            "app.js",
            AnalyzeOptions::builder().mode(Mode::Dependence).build(),
            no_interaction(),
        )
        .expect("pipeline");
        let dir = std::env::temp_dir().join(format!("ceres-pipe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut repo = ReportRepo::open(&dir).unwrap();
        let id = publish_report(&mut run, &mut repo, "demo").unwrap();
        assert_eq!(id, "commit-0001");
        for f in [
            "timing.txt",
            "loops.txt",
            "warnings.txt",
            "polymorphism.txt",
            "nests.txt",
            "source.js",
        ] {
            assert!(dir.join("demo/commit-0001").join(f).exists(), "{f}");
        }
        assert_eq!(run.steps.len(), 7, "all Fig. 5 steps traced");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
