//! Observability: phase-stamped tracing and a versioned metrics surface.
//!
//! The paper's headline measurement caveat (Sec. 3.4) is that dependence
//! instrumentation is far more expensive than lightweight profiling — yet
//! until this module the fleet reported only end results, with no
//! visibility into where time goes per app, per phase, or per retry. This
//! module threads a lightweight, zero-dependency tracing layer through the
//! whole pipeline:
//!
//! * every run records [`PhaseSpan`]s for the five pipeline phases
//!   (`parse → rewrite → interp → analyze → report`), stamped with both
//!   the deterministic virtual-clock tick range *and* wall time;
//! * [`Counters`] tally interpreter ticks, profiler samples, processed
//!   events, per-hook invocations, dependence-stack pushes, retries, and
//!   watchdog arms;
//! * [`FleetMetrics`] merges per-app records in registry order into the
//!   versioned JSON document behind `jsceres analyze-all --metrics`
//!   (schema documented in `docs/METRICS.md`);
//! * [`chrome_trace`] renders the spans as a Chrome `about:tracing` /
//!   Perfetto-loadable event array for eyeballing worker occupancy
//!   (the `--trace` flag).
//!
//! Determinism: tick-denominated fields are pure functions of the seeded
//! virtual clock and are byte-identical across worker counts; wall-clock
//! fields are scheduling noise and are zeroed by the `canonical`/
//! `deterministic` views (see [`RunObs::canonical`] and
//! [`FleetMetrics::from_outcome`]).

#![deny(missing_docs)]

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Version of the `--metrics` JSON document layout. Bump on any breaking
/// change and update `docs/METRICS.md` alongside.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Canonical phase names, in pipeline order (Fig. 5 steps 2–6).
pub const PHASES: &[&str] = &["parse", "rewrite", "interp", "analyze", "report"];

/// One timed pipeline phase of one app run.
///
/// Ticks and wall time answer different questions: the tick range is the
/// *simulated* cost on the deterministic virtual clock (identical on every
/// run), while `wall_us` is the *real* cost on this machine (scheduling
/// noise; zeroed under the deterministic views). Phases that never enter
/// the interpreter (`parse`, `rewrite`) have `start_ticks == end_ticks`:
/// the virtual clock only advances while JavaScript executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Phase name; one of [`PHASES`].
    pub phase: String,
    /// Virtual-clock reading when the phase began, in ticks.
    pub start_ticks: u64,
    /// Virtual-clock reading when the phase ended, in ticks.
    pub end_ticks: u64,
    /// Wall-clock offset of the phase start from the start of the run, in
    /// microseconds. Nondeterministic.
    pub wall_start_us: u64,
    /// Wall-clock duration of the phase, in microseconds. Nondeterministic.
    pub wall_us: u64,
}

impl PhaseSpan {
    /// Virtual-clock ticks the phase consumed.
    pub fn ticks(&self) -> u64 {
        self.end_ticks.saturating_sub(self.start_ticks)
    }

    /// Copy with the wall-clock (nondeterministic) fields zeroed.
    pub fn canonical(&self) -> PhaseSpan {
        PhaseSpan {
            wall_start_us: 0,
            wall_us: 0,
            ..self.clone()
        }
    }
}

// ---------------------------------------------------------------------
// Live progress sink (streaming serve protocol)
// ---------------------------------------------------------------------

/// One mid-run progress event, emitted at the moment the pipeline
/// records it (not after the run finishes). The streaming serve
/// protocol turns these into schema-2 `phase`/`partial` wire frames;
/// every other consumer (fleet, CLIs) leaves the sink uninstalled and
/// pays one thread-local read per phase.
#[derive(Debug, Clone)]
pub enum Progress {
    /// A pipeline phase just completed; carries the span as recorded
    /// (tick range deterministic, wall fields noisy — wire renderers
    /// must use the tick fields only).
    Phase(PhaseSpan),
    /// An early per-app result fragment: the Table-2 timing row, known
    /// as soon as interpretation ends and long before the nest
    /// classification and report render. Pre-rendered JSON object body
    /// (no braces), deterministic.
    Partial(String),
}

thread_local! {
    static PROGRESS_SINK: RefCell<Option<Box<dyn FnMut(&Progress)>>> = const { RefCell::new(None) };
}

/// Restores the previously installed sink (usually `None`) when
/// dropped, so a panicking attempt cannot leak its sink into the next
/// job that reuses the thread.
pub struct ProgressSinkGuard {
    prev: Option<Box<dyn FnMut(&Progress)>>,
    armed: bool,
}

impl Drop for ProgressSinkGuard {
    fn drop(&mut self) {
        if self.armed {
            let prev = self.prev.take();
            PROGRESS_SINK.with(|cell| *cell.borrow_mut() = prev);
        }
    }
}

/// Install a progress sink on *this thread* for the lifetime of the
/// returned guard. The pipeline's span recording points call the sink
/// synchronously, so a job wrapper (see `serve`/`supervisor`) installs
/// one on the runner thread to stream phase frames mid-run.
pub fn install_progress_sink(sink: Box<dyn FnMut(&Progress)>) -> ProgressSinkGuard {
    let prev = PROGRESS_SINK.with(|cell| cell.borrow_mut().replace(sink));
    ProgressSinkGuard { prev, armed: true }
}

/// Feed one event to this thread's sink, if any. The sink is taken out
/// for the duration of the call, so a sink that (indirectly) records a
/// span does not recurse or double-borrow.
pub fn emit_progress(p: &Progress) {
    let taken = PROGRESS_SINK.with(|cell| cell.borrow_mut().take());
    if let Some(mut sink) = taken {
        sink(p);
        PROGRESS_SINK.with(|cell| {
            let mut slot = cell.borrow_mut();
            if slot.is_none() {
                *slot = Some(sink);
            }
        });
    }
}

/// Monotonic event counters for one app run (or, in
/// [`FleetMetrics::totals`], summed over the whole fleet in registry
/// order). All fields are deterministic: they count virtual-clock or
/// hook-level events, never wall time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Counters {
    /// Final virtual-clock reading, in ticks (one tick ≈ one AST node).
    pub interp_ticks: u64,
    /// Samples the simulated profiler took (one per `SAMPLE_INTERVAL`).
    pub samples: u64,
    /// Events the interpreter drained from its queue (timers, dispatches).
    pub events: u64,
    /// Total `__ceres_*` hook invocations, all hooks summed.
    pub hook_calls: u64,
    /// Per-hook invocation counts, hook name → count. Only hooks that
    /// fired at least once appear; BTreeMap keeps the order deterministic.
    pub hooks: BTreeMap<String, u64>,
    /// Pushes onto the engine's characterization (loop) stack.
    pub stack_pushes: u64,
    /// Deduplicated dependence warnings the engine recorded.
    pub warnings: u64,
    /// Retries the fleet supervisor consumed for this app
    /// (`attempts - 1`; 0 for a first-try success or a standalone run).
    pub retries: u64,
    /// Watchdog layers armed across all attempts: per attempt, one for the
    /// wall-clock backstop plus one if a tick budget was set.
    pub watchdog_arms: u64,
}

impl Counters {
    /// Accumulate `other` into `self` (used for the fleet-wide totals).
    pub fn merge(&mut self, other: &Counters) {
        self.interp_ticks += other.interp_ticks;
        self.samples += other.samples;
        self.events += other.events;
        self.hook_calls += other.hook_calls;
        for (name, n) in &other.hooks {
            *self.hooks.entry(name.clone()).or_insert(0) += n;
        }
        self.stack_pushes += other.stack_pushes;
        self.warnings += other.warnings;
        self.retries += other.retries;
        self.watchdog_arms += other.watchdog_arms;
    }
}

/// The observability record carried by one app run: its phase spans plus
/// its counters. Built by the pipeline, reduced into
/// [`crate::fleet::AppReport`] on the worker thread.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunObs {
    /// Pipeline phases in execution order.
    pub spans: Vec<PhaseSpan>,
    /// Event counters for the run.
    pub counters: Counters,
    /// Wall-clock offset of this run's start from the fleet epoch, in
    /// microseconds (0 for standalone runs). Nondeterministic.
    pub wall_start_us: u64,
}

impl RunObs {
    /// The span for `phase`, if recorded.
    pub fn span(&self, phase: &str) -> Option<&PhaseSpan> {
        self.spans.iter().find(|s| s.phase == phase)
    }

    /// Wall offset at which the last recorded span ended, in microseconds
    /// (0 with no spans). Used to chain phases recorded after the
    /// pipeline's own stopwatch was consumed.
    pub fn last_wall_end_us(&self) -> u64 {
        self.spans
            .last()
            .map(|s| s.wall_start_us + s.wall_us)
            .unwrap_or(0)
    }

    /// Append a phase that ran after interpretation finished (`analyze`,
    /// `report`): its tick range is frozen at the final clock reading (the
    /// virtual clock only advances while JavaScript runs), its wall start
    /// chains onto the previous span, and `wall_us` is measured by the
    /// caller.
    pub fn push_post_phase(&mut self, phase: &str, wall_us: u64) {
        let end_ticks = self.spans.iter().map(|s| s.end_ticks).max().unwrap_or(0);
        let wall_start_us = self.last_wall_end_us();
        let span = PhaseSpan {
            phase: phase.to_string(),
            start_ticks: end_ticks,
            end_ticks,
            wall_start_us,
            wall_us,
        };
        emit_progress(&Progress::Phase(span.clone()));
        self.spans.push(span);
    }

    /// Copy with every wall-clock (nondeterministic) field zeroed; the
    /// remaining fields are pure functions of the seeded virtual clock.
    ///
    /// Sub-spans (dotted names like `interp.compile`) are dropped: they
    /// measure wall time only, so a zeroed copy carries no information,
    /// and the canonical span list is pinned to the 5-phase schema by the
    /// deterministic-metrics goldens.
    pub fn canonical(&self) -> RunObs {
        RunObs {
            spans: self
                .spans
                .iter()
                .filter(|s| PHASES.contains(&s.phase.as_str()))
                .map(PhaseSpan::canonical)
                .collect(),
            counters: self.counters.clone(),
            wall_start_us: 0,
        }
    }
}

/// Wall-clock stopwatch for recording [`PhaseSpan`]s; pairs an `Instant`
/// with the span list so call sites stay one-liners.
pub struct SpanRecorder {
    t0: std::time::Instant,
    spans: Vec<PhaseSpan>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::new()
    }
}

impl SpanRecorder {
    /// Start the stopwatch; the first phase's `wall_start_us` is 0.
    pub fn new() -> SpanRecorder {
        SpanRecorder {
            t0: std::time::Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Current wall offset since the stopwatch started, in microseconds.
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// Record a phase that ran from `wall_start_us` (a prior [`Self::now_us`]
    /// reading) to now, spanning the given virtual-clock tick range.
    pub fn record(&mut self, phase: &str, start_ticks: u64, end_ticks: u64, wall_start_us: u64) {
        let wall_us = self.now_us().saturating_sub(wall_start_us);
        let span = PhaseSpan {
            phase: phase.to_string(),
            start_ticks,
            end_ticks,
            wall_start_us,
            wall_us,
        };
        emit_progress(&Progress::Phase(span.clone()));
        self.spans.push(span);
    }

    /// Record a sub-span whose duration was measured elsewhere (e.g. the
    /// interpreter's own bytecode-lowering stopwatch). Unlike
    /// [`Self::record`] the wall duration is supplied, not read off this
    /// recorder's clock, so the sub-span can be filed under its parent
    /// phase's start offset.
    pub fn record_measured(
        &mut self,
        phase: &str,
        start_ticks: u64,
        end_ticks: u64,
        wall_start_us: u64,
        wall_us: u64,
    ) {
        self.spans.push(PhaseSpan {
            phase: phase.to_string(),
            start_ticks,
            end_ticks,
            wall_start_us,
            wall_us,
        });
    }

    /// The recorded spans, in recording order.
    pub fn into_spans(self) -> Vec<PhaseSpan> {
        self.spans
    }
}

/// Per-app entry in [`FleetMetrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppMetrics {
    /// Display name (Table 1 "Name").
    pub app: String,
    /// Short identifier for files/CLI.
    pub slug: String,
    /// Terminal status label: `ok`, `failed(N)`, `panicked`, `timed-out`.
    pub status: String,
    /// Attempts the supervisor consumed (1 for a first-try success).
    pub attempts: u32,
    /// Worker that ran the final attempt. Nondeterministic; 0 under the
    /// deterministic view.
    pub worker: usize,
    /// Real wall-clock the worker spent, in milliseconds.
    /// Nondeterministic; 0 under the deterministic view.
    pub wall_ms: f64,
    /// Wall offset of the run start from the fleet epoch, in microseconds.
    /// Nondeterministic; 0 under the deterministic view.
    pub wall_start_us: u64,
    /// Phase spans of the final attempt (empty if the app never finished).
    pub spans: Vec<PhaseSpan>,
    /// Counters of the final attempt, plus supervisor-level
    /// `retries`/`watchdog_arms` filled from the outcome.
    pub counters: Counters,
}

/// The versioned `--metrics` document: one entry per app in registry
/// (job) order, plus fleet-wide totals. See `docs/METRICS.md` for the
/// field-by-field schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Layout version of this document ([`METRICS_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// True when wall-clock/worker fields were zeroed for byte-stable
    /// comparison across worker counts (`--deterministic`).
    pub deterministic: bool,
    /// Instrumentation mode the fleet ran under (`Debug` rendering).
    pub mode: String,
    /// Workload problem-size multiplier.
    pub scale: u32,
    /// Worker-pool size. 0 under the deterministic view.
    pub workers: usize,
    /// Per-app metrics, in job (registry) order.
    pub apps: Vec<AppMetrics>,
    /// Deterministic counters summed over all apps in registry order.
    pub totals: Counters,
}

impl FleetMetrics {
    /// Build the metrics document from a merged fleet outcome.
    ///
    /// Supervisor-level counters are derived per app: `retries` is
    /// `attempts - 1`, and `watchdog_arms` counts armed watchdog layers
    /// across attempts (the wall-clock backstop always arms; the tick
    /// budget arms when the policy sets one). With `deterministic`, every
    /// wall-clock/worker field is zeroed so the document is byte-identical
    /// across worker counts.
    pub fn from_outcome(
        outcome: &crate::fleet::FleetOutcome,
        policy: &crate::fleet::FleetPolicy,
        deterministic: bool,
    ) -> FleetMetrics {
        let layers_per_attempt = 1 + u64::from(policy.tick_budget.is_some());
        let mut totals = Counters::default();
        let apps = outcome
            .apps
            .iter()
            .map(|a| {
                let obs = a
                    .report
                    .as_ref()
                    .map(|r| {
                        if deterministic {
                            r.obs.canonical()
                        } else {
                            r.obs.clone()
                        }
                    })
                    .unwrap_or_default();
                let mut counters = obs.counters.clone();
                counters.retries = u64::from(a.attempts.saturating_sub(1));
                counters.watchdog_arms = u64::from(a.attempts) * layers_per_attempt;
                totals.merge(&counters);
                AppMetrics {
                    app: a.app.clone(),
                    slug: a.slug.clone(),
                    status: a.status.label(),
                    attempts: a.attempts,
                    worker: a
                        .report
                        .as_ref()
                        .map(|r| if deterministic { 0 } else { r.worker })
                        .unwrap_or(0),
                    wall_ms: a
                        .report
                        .as_ref()
                        .map(|r| if deterministic { 0.0 } else { r.wall_ms })
                        .unwrap_or(0.0),
                    wall_start_us: obs.wall_start_us,
                    spans: obs.spans,
                    counters,
                }
            })
            .collect();
        FleetMetrics {
            schema_version: METRICS_SCHEMA_VERSION,
            deterministic,
            mode: outcome.mode.clone(),
            scale: outcome.scale,
            workers: if deterministic { 0 } else { outcome.workers },
            apps,
            totals,
        }
    }

    /// Build a single-app metrics document (the `jsceres <file> --metrics`
    /// path) so standalone runs share the fleet schema: one `apps` entry,
    /// `workers = 1`, totals equal to that app's counters.
    pub fn single(
        app: &str,
        slug: &str,
        mode: &str,
        obs: &RunObs,
        deterministic: bool,
    ) -> FleetMetrics {
        let obs = if deterministic {
            obs.canonical()
        } else {
            obs.clone()
        };
        FleetMetrics {
            schema_version: METRICS_SCHEMA_VERSION,
            deterministic,
            mode: mode.to_string(),
            scale: 1,
            workers: if deterministic { 0 } else { 1 },
            apps: vec![AppMetrics {
                app: app.to_string(),
                slug: slug.to_string(),
                status: "ok".to_string(),
                attempts: 1,
                worker: 0,
                wall_ms: 0.0,
                wall_start_us: obs.wall_start_us,
                spans: obs.spans.clone(),
                counters: obs.counters.clone(),
            }],
            totals: obs.counters,
        }
    }

    /// Pretty-printed JSON document, trailing newline included (the
    /// `--metrics` artifact).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("FleetMetrics serializes");
        s.push('\n');
        s
    }
}

/// Render the fleet's spans as a Chrome trace-event array (load in
/// `about:tracing` or [Perfetto](https://ui.perfetto.dev)): one complete
/// (`"ph": "X"`) event per phase span, timestamped with the wall offset
/// from the fleet epoch and laid out one trace thread per worker — worker
/// occupancy is visible at a glance. The `--trace` artifact.
pub fn chrome_trace(metrics: &FleetMetrics) -> String {
    let mut events = Vec::new();
    for a in &metrics.apps {
        for s in &a.spans {
            events.push(format!(
                concat!(
                    "{{\"name\":\"{}:{}\",\"cat\":\"{}\",\"ph\":\"X\",",
                    "\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},",
                    "\"args\":{{\"ticks\":{},\"app\":\"{}\"}}}}"
                ),
                a.slug,
                s.phase,
                s.phase,
                a.wall_start_us + s.wall_start_us,
                s.wall_us,
                a.worker,
                s.ticks(),
                a.app.replace('"', "'"),
            ));
        }
    }
    format!("[\n{}\n]\n", events.join(",\n"))
}

/// Serving-layer counters for `jsceresd` (see [`mod@crate::serve`]): cache
/// traffic, queue pressure, and the cumulative interpreter-tick odometer
/// that proves warm hits never re-enter the interpreter. Kept separate
/// from [`Counters`] on purpose — `Counters` is part of the byte-pinned
/// per-run metrics schema, while this struct describes one *process*
/// serving many runs and is surfaced only through the daemon's `stats`
/// op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeCounters {
    /// Analysis requests accepted (cache hits included).
    pub requests: u64,
    /// Requests answered from the content-addressed cache.
    pub cache_hits: u64,
    /// Requests that had to run the pipeline.
    pub cache_misses: u64,
    /// Cache entries evicted to respect the capacity bound.
    pub cache_evictions: u64,
    /// Requests rejected because the bounded job queue was full.
    pub rejected_queue_full: u64,
    /// Requests rejected because the daemon was draining.
    pub rejected_draining: u64,
    /// Peak instantaneous depth of the job queue.
    pub queue_peak_depth: u64,
    /// Jobs that completed with [`crate::fleet::AppStatus::Ok`].
    pub jobs_ok: u64,
    /// Jobs that ended in any non-`Ok` status.
    pub jobs_failed: u64,
    /// Cumulative virtual interpreter ticks spent across all served jobs.
    /// Unchanged across a warm hit — the zero-new-ticks proof.
    pub interp_ticks: u64,
    /// Worker *processes* restarted by the supervisor after a crash
    /// (always 0 on the in-process backend).
    pub worker_restarts: u64,
    /// Jobs admitted past the in-memory ring into the on-disk spill
    /// queue.
    pub jobs_spilled: u64,
    /// Spilled jobs recovered from a persistent spill directory at
    /// startup and re-executed.
    pub spill_replayed: u64,
    /// Peak instantaneous depth of the on-disk spill queue.
    pub spill_peak_depth: u64,
    /// Queued-but-unstarted jobs flushed to the spill file at drain time
    /// (the never-silently-dropped guarantee).
    pub jobs_flushed_on_drain: u64,
    /// Analyze requests served over the schema-2 streaming protocol
    /// (`stream:true`).
    pub streams: u64,
    /// Non-terminal frames (accepted/phase/partial/notice) written to
    /// streaming clients. Terminal result/error lines are not counted —
    /// they exist on the one-shot wire too.
    pub frames_streamed: u64,
    /// `notice` frames sent the moment a streaming client's job was
    /// parked on the disk spill queue (admission-time, not drain-time).
    pub spill_notices: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{AppOutcome, AppReport, AppStatus, FleetOutcome, FleetPolicy};

    fn span(phase: &str, t0: u64, t1: u64, w0: u64, w: u64) -> PhaseSpan {
        PhaseSpan {
            phase: phase.to_string(),
            start_ticks: t0,
            end_ticks: t1,
            wall_start_us: w0,
            wall_us: w,
        }
    }

    fn obs_fixture() -> RunObs {
        let mut counters = Counters {
            interp_ticks: 9000,
            samples: 4,
            events: 2,
            hook_calls: 30,
            hooks: BTreeMap::new(),
            stack_pushes: 5,
            warnings: 1,
            retries: 0,
            watchdog_arms: 0,
        };
        counters.hooks.insert("__ceres_loop_enter".to_string(), 5);
        counters.hooks.insert("__ceres_iter".to_string(), 25);
        RunObs {
            spans: vec![
                span("parse", 0, 0, 0, 120),
                span("rewrite", 0, 0, 120, 80),
                span("interp", 0, 9000, 200, 700),
            ],
            counters,
            wall_start_us: 42,
        }
    }

    #[test]
    fn canonical_zeroes_wall_but_keeps_ticks() {
        let c = obs_fixture().canonical();
        assert_eq!(c.wall_start_us, 0);
        assert!(c
            .spans
            .iter()
            .all(|s| s.wall_start_us == 0 && s.wall_us == 0));
        assert_eq!(c.span("interp").unwrap().ticks(), 9000);
        assert_eq!(c.counters.hook_calls, 30);
    }

    #[test]
    fn canonical_drops_wall_only_sub_spans() {
        let mut obs = obs_fixture();
        obs.spans.push(span("interp.compile", 0, 0, 200, 55));
        let c = obs.canonical();
        assert!(c.span("interp.compile").is_none());
        let phases: Vec<_> = c.spans.iter().map(|s| s.phase.as_str()).collect();
        assert_eq!(phases, ["parse", "rewrite", "interp"]);
    }

    #[test]
    fn counters_merge_sums_fields_and_hooks() {
        let mut a = obs_fixture().counters;
        let b = obs_fixture().counters;
        a.merge(&b);
        assert_eq!(a.interp_ticks, 18000);
        assert_eq!(a.hooks["__ceres_iter"], 50);
        assert_eq!(a.hook_calls, 60);
    }

    #[test]
    fn span_recorder_orders_spans_and_measures_wall() {
        let mut rec = SpanRecorder::new();
        let w0 = rec.now_us();
        rec.record("parse", 0, 0, w0);
        let w1 = rec.now_us();
        rec.record("interp", 0, 500, w1);
        let spans = rec.into_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, "parse");
        assert_eq!(spans[1].phase, "interp");
        assert_eq!(spans[1].ticks(), 500);
        assert!(spans[1].wall_start_us >= spans[0].wall_start_us);
    }

    fn stub_outcome(deterministic_noise: bool) -> FleetOutcome {
        let mut report = AppReport {
            app: "N-body".to_string(),
            slug: "nbody".to_string(),
            mode: "Dependence".to_string(),
            total_ms: 4.5,
            active_ms: 2.0,
            loops_ms: 3.0,
            loop_pct: 66.7,
            nests: Vec::new(),
            warnings: Vec::new(),
            obs: obs_fixture(),
            wall_ms: 0.0,
            worker: 0,
        };
        if deterministic_noise {
            report.wall_ms = 123.0;
            report.worker = 3;
        }
        FleetOutcome::new(
            "Dependence".to_string(),
            1,
            if deterministic_noise { 8 } else { 1 },
            vec![
                AppOutcome {
                    app: "N-body".to_string(),
                    slug: "nbody".to_string(),
                    status: AppStatus::Ok,
                    attempts: 1,
                    report: Some(report),
                },
                AppOutcome {
                    app: "Ghost".to_string(),
                    slug: "ghost".to_string(),
                    status: AppStatus::Failed {
                        error: "boom".to_string(),
                        attempts: 3,
                    },
                    attempts: 3,
                    report: None,
                },
            ],
        )
    }

    #[test]
    fn metrics_fill_supervisor_counters_and_totals() {
        let policy = FleetPolicy {
            tick_budget: Some(1_000_000),
            ..Default::default()
        };
        let m = FleetMetrics::from_outcome(&stub_outcome(false), &policy, false);
        assert_eq!(m.schema_version, METRICS_SCHEMA_VERSION);
        assert_eq!(m.apps.len(), 2);
        // First-try success: no retries, both watchdog layers armed once.
        assert_eq!(m.apps[0].counters.retries, 0);
        assert_eq!(m.apps[0].counters.watchdog_arms, 2);
        // Failed after 3 attempts: 2 retries, 3 × 2 layers.
        assert_eq!(m.apps[1].counters.retries, 2);
        assert_eq!(m.apps[1].counters.watchdog_arms, 6);
        assert!(m.apps[1].spans.is_empty(), "no report → no spans");
        assert_eq!(m.totals.retries, 2);
        assert_eq!(m.totals.watchdog_arms, 8);
        assert_eq!(m.totals.interp_ticks, 9000);
    }

    #[test]
    fn deterministic_view_is_stable_across_scheduling_noise() {
        let policy = FleetPolicy::default();
        let a = FleetMetrics::from_outcome(&stub_outcome(false), &policy, true);
        let b = FleetMetrics::from_outcome(&stub_outcome(true), &policy, true);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.workers, 0);
        assert!(a.deterministic);
        // The non-deterministic view differs (wall/worker fields survive).
        let c = FleetMetrics::from_outcome(&stub_outcome(true), &policy, false);
        assert_ne!(a.to_json(), c.to_json());
        assert_eq!(c.apps[0].worker, 3);
    }

    #[test]
    fn metrics_json_round_trips() {
        let m = FleetMetrics::from_outcome(&stub_outcome(true), &FleetPolicy::default(), false);
        let back: FleetMetrics = serde_json::from_str(&m.to_json()).expect("parses");
        assert_eq!(m, back);
    }

    #[test]
    fn single_run_document_shares_the_fleet_schema() {
        let m = FleetMetrics::single("N-body", "nbody", "Dependence", &obs_fixture(), true);
        assert_eq!(m.schema_version, METRICS_SCHEMA_VERSION);
        assert_eq!(m.apps.len(), 1);
        assert_eq!(m.totals, m.apps[0].counters);
        assert_eq!(m.apps[0].wall_start_us, 0, "deterministic zeroes wall");
        let back: FleetMetrics = serde_json::from_str(&m.to_json()).expect("parses");
        assert_eq!(m, back);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_event_per_span() {
        let m = FleetMetrics::from_outcome(&stub_outcome(true), &FleetPolicy::default(), false);
        let trace = chrome_trace(&m);
        let parsed: serde_json::Value = serde_json::from_str(&trace).expect("valid JSON");
        let events = parsed.as_array().expect("array");
        assert_eq!(events.len(), 3, "3 spans on the one reporting app");
        let e0 = &events[0];
        assert_eq!(e0.get("name").and_then(|v| v.as_str()), Some("nbody:parse"));
        assert_eq!(e0.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(e0.get("tid").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(
            e0.get("ts").and_then(|v| v.as_u64()),
            Some(42),
            "fleet epoch offset + span offset"
        );
        let ticks = events[2].get("args").and_then(|a| a.get("ticks"));
        assert_eq!(ticks.and_then(|v| v.as_u64()), Some(9000));
    }
}
