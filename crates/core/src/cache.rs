//! Content-addressed result cache for the analysis service.
//!
//! Every analysis in this reproduction is a pure function of its inputs:
//! the interpreter runs on a seeded virtual clock, so
//! `(source, mode, seed, focus, budgets)` fully determines the report and
//! the deterministic half of the metrics. That purity is what `jsceresd`
//! exploits — a request whose [`CacheKey`] was seen before returns the
//! stored payload **byte-identically** without re-parsing, re-rewriting,
//! or re-entering the interpreter.
//!
//! Keys are content-addressed: the source text enters the key as its
//! SHA-256 digest (std-only implementation below, pinned by FIPS 180-4
//! test vectors), so two requests naming the same program — whether sent
//! inline or resolved from the registry — share an entry, while a single
//! changed byte of JavaScript misses. The remaining dimensions
//! (`mode × seed × focus × max_events × max_ticks × scale`) mirror
//! [`crate::pipeline::AnalyzeOptions`] one field at a time; anything that
//! can change the analysis result must appear here. Wall-clock budgets are
//! deliberately *excluded*: they only decide whether a run is cancelled,
//! never what a completed run computes.
//!
//! The cache itself is a bounded insert-order map: `insert_or_get` is the
//! only write path, so concurrent clients racing on the same key converge
//! on the first stored payload (last-write-wins would break the
//! byte-identity guarantee).

#![deny(missing_docs)]

use crate::pipeline::AnalyzeOptions;
use std::collections::HashMap;
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// SHA-256 (std-only, FIPS 180-4)
// ---------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn sha256_compress(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(SHA256_K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
        *s = s.wrapping_add(v);
    }
}

/// SHA-256 digest of `data`, as 32 raw bytes.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut state: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        sha256_compress(&mut state, block);
    }
    // Padding: 0x80, zeros, then the bit length as a big-endian u64.
    let rem = chunks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    let bit_len = (data.len() as u64).wrapping_mul(8);
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_len].chunks_exact(64) {
        sha256_compress(&mut state, block);
    }
    let mut out = [0u8; 32];
    for (i, s) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
    }
    out
}

/// SHA-256 digest of `data`, lowercase hex.
pub fn sha256_hex(data: &[u8]) -> String {
    let mut s = String::with_capacity(64);
    for b in sha256(data) {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

// ---------------------------------------------------------------------
// Cache keys
// ---------------------------------------------------------------------

/// The full identity of one analysis: content digest × every
/// result-affecting option. Two requests with equal keys are guaranteed
/// (by the seeded-determinism of the pipeline) to produce identical
/// reports, so their results may be shared.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// SHA-256 of the canonical source text, lowercase hex.
    pub source_sha256: String,
    /// Instrumentation mode (`Debug` rendering of [`crate::Mode`]).
    pub mode: String,
    /// Interpreter seed.
    pub seed: u64,
    /// Dependence focus loop id, if any.
    pub focus: Option<u32>,
    /// Event-processing cap.
    pub max_events: usize,
    /// Deterministic watchdog tick budget, if any. Part of the key because
    /// a tripped budget changes the outcome (cancelled vs complete).
    pub max_ticks: Option<u64>,
    /// Workload scale factor (1 for raw-source requests; the scale is
    /// already baked into the canonical source of registry requests, but
    /// keeping it in the key costs nothing and guards refactors).
    pub scale: u32,
}

impl CacheKey {
    /// Build the key for analyzing `source` under `opts` at `scale`.
    pub fn of(source: &str, opts: &AnalyzeOptions, scale: u32) -> CacheKey {
        CacheKey {
            source_sha256: sha256_hex(source.as_bytes()),
            mode: format!("{:?}", opts.mode),
            seed: opts.seed,
            focus: opts.focus.map(|l| l.0),
            max_events: opts.max_events,
            max_ticks: opts.max_ticks,
            scale,
        }
    }

    /// Canonical one-line rendering of the key (used for logging and as
    /// the content address handed back to clients). Fields are
    /// `\x1f`-joined so no JavaScript source or flag value can forge a
    /// collision between distinct tuples.
    pub fn canonical(&self) -> String {
        format!(
            "src:{}\x1fmode:{}\x1fseed:{}\x1ffocus:{}\x1fevents:{}\x1fticks:{}\x1fscale:{}",
            self.source_sha256,
            self.mode,
            self.seed,
            self.focus.map(|f| f.to_string()).unwrap_or_default(),
            self.max_events,
            self.max_ticks.map(|t| t.to_string()).unwrap_or_default(),
            self.scale,
        )
    }

    /// The content address: SHA-256 of the canonical rendering, hex.
    pub fn fingerprint(&self) -> String {
        sha256_hex(self.canonical().as_bytes())
    }
}

// ---------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------

/// A bounded, insert-ordered result cache: fingerprint → stored response
/// payload. Eviction is FIFO on insert order (the serving layer's access
/// pattern is dominated by repeat-whole-requests, where FIFO and LRU
/// behave identically and FIFO needs no touch bookkeeping on the hot hit
/// path).
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<String, String>,
    order: VecDeque<String>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Cache occupancy and traffic counters (surfaced through the daemon's
/// `stats` op; see [`crate::obs::ServeCounters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a stored payload.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently stored.
    pub len: usize,
    /// Maximum entries stored at once.
    pub capacity: usize,
}

impl ResultCache {
    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a key, counting the hit or miss.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<String> {
        match self.entries.get(&key.fingerprint()) {
            Some(payload) => {
                self.hits += 1;
                Some(payload.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store `payload` under `key` unless the key is already present, and
    /// return the canonical stored payload either way. First-writer-wins
    /// is what makes warm hits byte-identical even when two clients race
    /// on the same cold key.
    pub fn insert_or_get(&mut self, key: &CacheKey, payload: String) -> String {
        let fp = key.fingerprint();
        if let Some(existing) = self.entries.get(&fp) {
            return existing.clone();
        }
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.entries.insert(fp.clone(), payload.clone());
        self.order.push_back(fp);
        payload
    }

    /// Whether a fingerprint is currently stored (no traffic counted).
    pub fn contains_fingerprint(&self, fingerprint: &str) -> bool {
        self.entries.contains_key(fingerprint)
    }

    /// Insert by precomputed fingerprint — the shard-file replay path.
    /// Follows the exact bounded FIFO discipline of [`Self::insert_or_get`]
    /// so replaying an append-only log reproduces the final in-memory
    /// state the writer had.
    pub fn insert_raw(&mut self, fingerprint: String, payload: String) {
        if self.entries.contains_key(&fingerprint) {
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.entries.insert(fingerprint.clone(), payload);
        self.order.push_back(fingerprint);
    }

    /// Live entries in insertion order (for shard-file compaction).
    pub fn iter_in_order(&self) -> impl Iterator<Item = (&String, &String)> {
        self.order
            .iter()
            .filter_map(move |fp| self.entries.get(fp).map(|p| (fp, p)))
    }

    /// Zero the traffic counters (hits/misses/evictions) — used after a
    /// persistence replay so stats describe this process's clients only.
    pub fn reset_traffic(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// Current counters snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

// ---------------------------------------------------------------------
// Sharded, persistent cache
// ---------------------------------------------------------------------

/// Stats for a [`ShardedCache`]: the aggregate view plus per-shard
/// traffic and the persistence counters (surfaced through the daemon's
/// `stats` op; schema documented in `docs/METRICS.md`).
#[derive(Debug, Clone)]
pub struct ShardedCacheStats {
    /// Aggregate across all shards.
    pub total: CacheStats,
    /// Per-shard traffic, indexed by shard id.
    pub shards: Vec<CacheStats>,
    /// Entries replayed from shard files at open time.
    pub loaded: u64,
    /// Entries whose checksum or framing failed during load (truncated
    /// write-through tail, or on-disk corruption) — skipped, not served.
    pub load_corrupt: u64,
    /// Entries written through to shard files over this process lifetime.
    pub persisted: u64,
    /// True when a cache directory is configured (write-through on).
    pub persistent: bool,
}

/// State guarded by one shard's lock: the bounded FIFO cache plus the
/// shard's write-through file handle (when persistence is on).
#[derive(Debug)]
struct Shard {
    cache: ResultCache,
    file: Option<std::fs::File>,
    persisted: u64,
}

/// A hash-sharded [`ResultCache`]: keys are routed to one of N shards by
/// the leading bits of their fingerprint, each shard has its own lock and
/// its own FIFO eviction window, and — when a cache directory is
/// configured — its own append-only write-through file.
///
/// Persistence is what makes warm starts real: on open, every shard file
/// is replayed through the same bounded insert path (so the reloaded
/// state is exactly what the FIFO window would have held), entries are
/// verified against their stored SHA-256, and the file is compacted to
/// the live set. Content addressing makes this trivially safe: a key's
/// payload is a pure function of the key, so a reloaded entry is
/// byte-identical to what a fresh run would produce — the property the
/// serve-layer goldens pin.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<std::sync::Mutex<Shard>>,
    dir: Option<std::path::PathBuf>,
    loaded: u64,
    load_corrupt: u64,
}

fn relock_shard(m: &std::sync::Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ShardedCache {
    /// Build a cache of `capacity` total entries split over `shards`
    /// shards (each shard gets `ceil(capacity / shards)`). With a `dir`,
    /// shard files `shard-NN.log` are loaded (and compacted) now and
    /// written through on every insert.
    pub fn open(
        capacity: usize,
        shards: usize,
        dir: Option<&std::path::Path>,
    ) -> std::io::Result<ShardedCache> {
        let n = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(n);
        if let Some(d) = dir {
            std::fs::create_dir_all(d)?;
        }
        let mut out = Vec::with_capacity(n);
        let mut loaded = 0u64;
        let mut load_corrupt = 0u64;
        for id in 0..n {
            let mut cache = ResultCache::new(per_shard);
            let file = match dir {
                Some(d) => {
                    let path = d.join(format!("shard-{id:02}.log"));
                    let (l, c) = load_shard_file(&path, &mut cache);
                    loaded += l;
                    load_corrupt += c;
                    compact_shard_file(&path, &cache)?;
                    Some(
                        std::fs::OpenOptions::new()
                            .create(true)
                            .append(true)
                            .open(&path)?,
                    )
                }
                None => None,
            };
            // Loading must not count as traffic: hits/misses describe
            // this process's clients, not the replay.
            cache.reset_traffic();
            out.push(std::sync::Mutex::new(Shard {
                cache,
                file,
                persisted: 0,
            }));
        }
        Ok(ShardedCache {
            shards: out,
            dir: dir.map(|d| d.to_path_buf()),
            loaded,
            load_corrupt,
        })
    }

    /// Which shard a fingerprint routes to (leading 8 hex chars, mod N).
    pub fn shard_of(&self, fingerprint: &str) -> usize {
        let head = u64::from_str_radix(fingerprint.get(..8).unwrap_or("0"), 16).unwrap_or(0);
        (head as usize) % self.shards.len()
    }

    /// Look up a key, locking only its shard.
    pub fn lookup(&self, key: &CacheKey) -> Option<String> {
        let fp = key.fingerprint();
        let shard = &self.shards[self.shard_of(&fp)];
        relock_shard(shard).cache.lookup(key)
    }

    /// Store `payload` under `key` unless present (first-writer-wins),
    /// returning the canonical stored payload. Fresh inserts are written
    /// through to the shard file before this returns.
    pub fn insert_or_get(&self, key: &CacheKey, payload: String) -> String {
        let fp = key.fingerprint();
        let shard = &self.shards[self.shard_of(&fp)];
        let mut s = relock_shard(shard);
        let fresh = !s.cache.contains_fingerprint(&fp);
        let stored = s.cache.insert_or_get(key, payload);
        if fresh {
            if let Some(file) = s.file.as_mut() {
                use std::io::Write;
                let line = format!("{fp}\t{}\t{stored}\n", sha256_hex(stored.as_bytes()));
                if file
                    .write_all(line.as_bytes())
                    .and_then(|_| file.flush())
                    .is_ok()
                {
                    s.persisted += 1;
                }
            }
        }
        stored
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Aggregate + per-shard stats snapshot.
    pub fn stats(&self) -> ShardedCacheStats {
        let mut total = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            len: 0,
            capacity: 0,
        };
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut persisted = 0u64;
        for shard in &self.shards {
            let s = relock_shard(shard);
            let st = s.cache.stats();
            total.hits += st.hits;
            total.misses += st.misses;
            total.evictions += st.evictions;
            total.len += st.len;
            total.capacity += st.capacity;
            persisted += s.persisted;
            shards.push(st);
        }
        ShardedCacheStats {
            total,
            shards,
            loaded: self.loaded,
            load_corrupt: self.load_corrupt,
            persisted,
            persistent: self.dir.is_some(),
        }
    }
}

/// Replay one shard file through `cache`, verifying each entry's
/// checksum. Returns `(loaded, corrupt)`. Damage is treated as a suffix:
/// parsing stops at the first bad line (write-through appends are
/// sequential, so a torn write can only be the tail).
fn load_shard_file(path: &std::path::Path, cache: &mut ResultCache) -> (u64, u64) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (0, 0);
    };
    let mut loaded = 0u64;
    let mut corrupt = 0u64;
    for line in text.lines() {
        let parsed = (|| {
            let (fp, rest) = line.split_once('\t')?;
            let (digest, payload) = rest.split_once('\t')?;
            if digest != sha256_hex(payload.as_bytes()) {
                return None;
            }
            Some((fp.to_string(), payload.to_string()))
        })();
        match parsed {
            Some((fp, payload)) => {
                cache.insert_raw(fp, payload);
                loaded += 1;
            }
            None => {
                corrupt += 1;
                break;
            }
        }
    }
    (loaded, corrupt)
}

/// Rewrite a shard file to exactly the live entries in insertion order
/// (drops evicted and corrupt records accumulated in the append-only
/// log).
fn compact_shard_file(path: &std::path::Path, cache: &ResultCache) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = path.with_extension("log.tmp");
    let mut f = std::fs::File::create(&tmp)?;
    for (fp, payload) in cache.iter_in_order() {
        writeln!(f, "{fp}\t{}\t{payload}", sha256_hex(payload.as_bytes()))?;
    }
    f.flush()?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    #[test]
    fn sha256_matches_fips_vectors() {
        // FIPS 180-4 / RFC 6234 test vectors.
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Padding boundary cases: 55/56/64-byte messages exercise the
        // one-block vs two-block tail.
        for n in [55usize, 56, 63, 64, 65, 119, 120] {
            let m = vec![b'a'; n];
            // Compare against a second independent computation path: chunk
            // reuse means a wrong tail would double-count.
            assert_eq!(sha256(&m), sha256(&m.clone()), "len {n}");
        }
        assert_eq!(
            sha256_hex(&[b'a'; 1_000_000]),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    fn key(source: &str, mode: Mode, seed: u64, focus: Option<u32>) -> CacheKey {
        let opts = AnalyzeOptions::builder()
            .mode(mode)
            .seed(seed)
            .focus(focus.map(ceres_ast::LoopId))
            .build();
        CacheKey::of(source, &opts, 1)
    }

    #[test]
    fn distinct_tuples_have_distinct_fingerprints() {
        let base = key("var x = 1;", Mode::Dependence, 2015, None);
        let variants = [
            key("var x = 2;", Mode::Dependence, 2015, None),
            key("var x = 1;", Mode::LoopProfile, 2015, None),
            key("var x = 1;", Mode::Dependence, 2016, None),
            key("var x = 1;", Mode::Dependence, 2015, Some(1)),
        ];
        let mut fps = std::collections::HashSet::new();
        fps.insert(base.fingerprint());
        for v in &variants {
            assert!(
                fps.insert(v.fingerprint()),
                "collision between distinct tuples: {v:?}"
            );
        }
        // Equal inputs produce equal keys and fingerprints.
        assert_eq!(
            base.fingerprint(),
            key("var x = 1;", Mode::Dependence, 2015, None).fingerprint()
        );
    }

    #[test]
    fn field_boundaries_cannot_be_forged() {
        // A seed ending in "1" with focus "2" must differ from seed "12"
        // with no focus, and similar shift attacks across the separator.
        let a = key("src", Mode::Dependence, 1, Some(2));
        let b = key("src", Mode::Dependence, 12, None);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = CacheKey {
            max_events: 100,
            max_ticks: None,
            ..key("src", Mode::Dependence, 1, None)
        };
        let d = CacheKey {
            max_events: 10,
            max_ticks: Some(0),
            ..key("src", Mode::Dependence, 1, None)
        };
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn cache_hit_returns_stored_payload_and_counts() {
        let mut cache = ResultCache::new(8);
        let k = key("var a = 0;", Mode::Dependence, 2015, None);
        assert_eq!(cache.lookup(&k), None);
        let stored = cache.insert_or_get(&k, "payload-one".to_string());
        assert_eq!(stored, "payload-one");
        assert_eq!(cache.lookup(&k).as_deref(), Some("payload-one"));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn first_writer_wins_on_racing_inserts() {
        let mut cache = ResultCache::new(8);
        let k = key("var a = 0;", Mode::Dependence, 2015, None);
        assert_eq!(cache.insert_or_get(&k, "first".to_string()), "first");
        // A racing second writer (e.g. a concurrent client that also ran
        // cold) must converge on the stored bytes.
        assert_eq!(cache.insert_or_get(&k, "second".to_string()), "first");
        assert_eq!(cache.lookup(&k).as_deref(), Some("first"));
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ceres-cache-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sharded_cache_routes_by_fingerprint_and_spreads() {
        let cache = ShardedCache::open(256, 8, None).unwrap();
        let mut used = std::collections::HashSet::new();
        for i in 0..64 {
            let k = key(&format!("var x = {i};"), Mode::Dependence, 2015, None);
            let shard = cache.shard_of(&k.fingerprint());
            assert!(shard < 8);
            used.insert(shard);
            cache.insert_or_get(&k, format!("payload-{i}"));
        }
        assert!(
            used.len() > 4,
            "64 distinct keys should spread over most of 8 shards, got {used:?}"
        );
        let stats = cache.stats();
        assert_eq!(stats.total.len, 64);
        assert_eq!(
            stats.shards.iter().map(|s| s.len).sum::<usize>(),
            stats.total.len,
            "per-shard occupancy must sum to the aggregate"
        );
        // Routing is stable: the same key always lands on the same shard.
        let k = key("var x = 0;", Mode::Dependence, 2015, None);
        assert_eq!(
            cache.shard_of(&k.fingerprint()),
            cache.shard_of(&k.fingerprint())
        );
    }

    #[test]
    fn sharded_cache_persists_and_reloads_byte_identically() {
        let dir = tmpdir("persist");
        let keys: Vec<CacheKey> = (0..12)
            .map(|i| key(&format!("var p = {i};"), Mode::Dependence, 2015, None))
            .collect();
        {
            let cache = ShardedCache::open(64, 4, Some(&dir)).unwrap();
            for (i, k) in keys.iter().enumerate() {
                cache.insert_or_get(k, format!("{{\"payload\":\"entry-{i}\"}}"));
            }
            assert_eq!(cache.stats().persisted, 12);
        }
        let cache = ShardedCache::open(64, 4, Some(&dir)).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.loaded, 12, "{stats:?}");
        assert_eq!(stats.load_corrupt, 0);
        assert!(stats.persistent);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(
                cache.lookup(k).as_deref(),
                Some(format!("{{\"payload\":\"entry-{i}\"}}").as_str()),
                "reloaded payload must be byte-identical"
            );
        }
        // The replay itself must not count as client traffic.
        assert_eq!(cache.stats().total.hits, 12, "only our lookups count");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_reload_replays_the_fifo_window() {
        // More inserts than capacity: the reloaded state must equal the
        // writer's final FIFO window, not the full historical log.
        let dir = tmpdir("fifo-window");
        let keys: Vec<CacheKey> = (0..10)
            .map(|i| key(&format!("var w = {i};"), Mode::Dependence, 2015, None))
            .collect();
        {
            let cache = ShardedCache::open(4, 1, Some(&dir)).unwrap();
            for (i, k) in keys.iter().enumerate() {
                cache.insert_or_get(k, format!("w-{i}"));
            }
            assert_eq!(cache.stats().total.len, 4);
        }
        let cache = ShardedCache::open(4, 1, Some(&dir)).unwrap();
        assert_eq!(cache.stats().total.len, 4);
        for (i, k) in keys.iter().enumerate() {
            let want = if i >= 6 { Some(format!("w-{i}")) } else { None };
            assert_eq!(cache.lookup(k), want, "entry {i}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_shard_line_is_skipped_not_served() {
        let dir = tmpdir("corrupt");
        let k1 = key("var c = 1;", Mode::Dependence, 2015, None);
        let k2 = key("var c = 2;", Mode::Dependence, 2015, None);
        {
            let cache = ShardedCache::open(16, 1, Some(&dir)).unwrap();
            cache.insert_or_get(&k1, "good".into());
            cache.insert_or_get(&k2, "tampered".into());
        }
        let path = dir.join("shard-00.log");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("tampered", "EVILJUNK")).unwrap();
        let cache = ShardedCache::open(16, 1, Some(&dir)).unwrap();
        assert_eq!(cache.stats().load_corrupt, 1);
        assert_eq!(cache.lookup(&k1).as_deref(), Some("good"));
        assert_eq!(cache.lookup(&k2), None, "corrupt entry must re-run");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut cache = ResultCache::new(2);
        let k1 = key("one", Mode::Dependence, 1, None);
        let k2 = key("two", Mode::Dependence, 1, None);
        let k3 = key("three", Mode::Dependence, 1, None);
        cache.insert_or_get(&k1, "1".into());
        cache.insert_or_get(&k2, "2".into());
        cache.insert_or_get(&k3, "3".into());
        assert_eq!(cache.lookup(&k1), None, "oldest entry evicted");
        assert_eq!(cache.lookup(&k2).as_deref(), Some("2"));
        assert_eq!(cache.lookup(&k3).as_deref(), Some("3"));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().len, 2);
    }
}
