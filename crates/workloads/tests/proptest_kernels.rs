//! Property tests: the native Rayon kernel twins agree with their
//! sequential counterparts on arbitrary problem sizes — the "breaking the
//! dependencies did not change the program" guarantee behind the Sec. 4.2
//! speedup claims.

use ceres_workloads::native::{fluid, image_filter, nbody, normal_map, raytrace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn image_filter_par_matches_seq(w in 1usize..96, h in 1usize..64) {
        let img = image_filter::Image::gradient(w, h);
        let mut a = img.clone();
        let mut b = img;
        image_filter::filter_seq(&mut a);
        image_filter::filter_par(&mut b);
        prop_assert_eq!(a.data, b.data);
    }

    #[test]
    fn blur_par_matches_seq(w in 3usize..64, h in 3usize..48) {
        let img = image_filter::Image::gradient(w, h);
        prop_assert_eq!(
            image_filter::blur_seq(&img).data,
            image_filter::blur_par(&img).data
        );
    }

    #[test]
    fn fluid_par_matches_seq(n in 2usize..48, iters in 1usize..12) {
        let x0 = fluid::Grid::seeded(n);
        let mut a = x0.clone();
        let mut b = x0.clone();
        fluid::lin_solve_seq(&mut a, &x0, 1.0, 4.0, iters);
        fluid::lin_solve_par(&mut b, &x0, 1.0, 4.0, iters);
        prop_assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn raytrace_par_matches_seq(w in 1usize..64, h in 1usize..48) {
        let s = raytrace::scene();
        prop_assert_eq!(raytrace::render_seq(&s, w, h), raytrace::render_par(&s, w, h));
    }

    #[test]
    fn normal_map_par_matches_seq(w in 2usize..64, h in 2usize..48, lx in 0f32..64.0, ly in 0f32..48.0) {
        let hm = normal_map::height_map(w, h);
        let na = normal_map::normals_seq(&hm, w, h);
        let nb = normal_map::normals_par(&hm, w, h);
        prop_assert_eq!(&na, &nb);
        prop_assert_eq!(
            normal_map::shade_seq(&na, w, h, lx, ly),
            normal_map::shade_par(&nb, w, h, lx, ly)
        );
    }

    #[test]
    fn nbody_par_matches_seq(n in 1usize..256, steps in 1usize..6) {
        let mut a = nbody::make_bodies(n);
        let mut b = a.clone();
        let mut com_a = nbody::Com::default();
        let mut com_b = nbody::Com::default();
        for _ in 0..steps {
            nbody::compute_forces_seq(&mut a);
            com_a = nbody::step_seq(&mut a);
            nbody::compute_forces_par(&mut b);
            com_b = nbody::step_par(&mut b);
        }
        for (pa, pb) in a.iter().zip(&b) {
            prop_assert!((pa.x - pb.x).abs() < 1e-9);
            prop_assert!((pa.y - pb.y).abs() < 1e-9);
            prop_assert!((pa.vx - pb.vx).abs() < 1e-9);
        }
        prop_assert!((com_a.x - com_b.x).abs() < 1e-7);
        prop_assert!((com_a.m - com_b.m).abs() < 1e-7);
    }
}
