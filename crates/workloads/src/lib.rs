//! # ceres-workloads
//!
//! The paper's 12 case-study web applications (Table 1), re-implemented in
//! the supported JavaScript subset with the same algorithmic structure as
//! the originals, plus native Rust "twin" kernels (sequential + Rayon) used
//! to demonstrate that the latent parallelism JS-CERES finds is actually
//! exploitable (the Sec. 4.2 Amdahl discussion).

pub mod bench;
pub mod fleet;
pub mod native;
pub mod overhead;
pub mod parallel;
pub mod registry;
pub mod serve;

pub use bench::{render_bench, run_bench, BenchEntry, BenchReport, ModeBench, PhaseCost};
pub use fleet::{fleet_jobs, run_fleet_report, run_fleet_report_with};
pub use overhead::{overhead_ledger, render_overhead, OverheadRow};
pub use parallel::{
    bench_workload, parallel_bench, render_parallel_bench, whatif_fleet, AppWhatIf,
    ParallelBenchReport, ParallelBenchRow, PREDICTION_ERROR_BOUND,
};
pub use registry::{
    all, by_slug, run_workload, run_workload_budgeted, workload_html, PaperExpectation, Workload,
};
pub use serve::registry_resolver;
