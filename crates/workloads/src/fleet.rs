//! Fleet driver: fan the 12 registered workloads across the core worker
//! pool. Lives here (not in ceres-core) because the dependency points
//! workloads → core; the core pool is workload-agnostic.
//!
//! This layer also hosts the seeded fault-injection harness: with a
//! [`FaultPlan`], a job may (deterministically, per job index and attempt)
//! panic, hang, or report a transient error *before* doing its real work,
//! so CI can prove the supervisor degrades gracefully instead of taking
//! the whole case study down.

use crate::registry::{all, run_workload_budgeted};
use ceres_core::fleet::{
    run_fleet_with, AppReport, Fault, FaultPlan, FleetJob, FleetOutcome, FleetPolicy, JobError,
};
use ceres_core::Mode;
use std::sync::Arc;
use std::time::Instant;

/// Tick budget used for an injected hang when the policy does not set one:
/// long enough that no real workload at test scale comes near it, short
/// enough that the watchdog trips in well under a second.
const HANG_FALLBACK_TICKS: u64 = 2_000_000;

/// Spin the interpreter on `for(;;){}` under a tick budget. The budget
/// always trips, so this returns the same `watchdog:` fatal on every run —
/// an injected hang is deterministic and exercises the *real* cancellation
/// path rather than a simulated one.
fn injected_hang(policy: &FleetPolicy) -> JobError {
    let budget = policy.tick_budget.unwrap_or(HANG_FALLBACK_TICKS);
    let mut interp = ceres_interp::Interp::new(2015);
    interp.max_ticks = Some(budget);
    match interp.eval_source("for (;;) {}") {
        Err(c) => JobError::from_control(&c),
        Ok(()) => JobError::Fatal("injected hang terminated without tripping".to_string()),
    }
}

/// Build one [`FleetJob`] per registered workload, in Table 1 order.
///
/// Each job closure constructs its own `WebServer → instrument → Interp →
/// Engine` pipeline when a worker picks it up — nothing is shared between
/// apps, so isolation is by construction rather than by locking. The
/// policy's budgets are threaded into the pipeline; the fault plan (if
/// any) is consulted per attempt, so an injected transient error can
/// clear on retry.
pub fn fleet_jobs(
    mode: Mode,
    scale: u32,
    policy: &FleetPolicy,
    faults: Option<FaultPlan>,
) -> Vec<FleetJob> {
    let policy = policy.clone();
    // Shared epoch so every app's obs record is stamped with its offset
    // from the start of the fleet, letting a chrome trace show occupancy.
    let epoch = Instant::now();
    all()
        .into_iter()
        .enumerate()
        .map(|(index, w)| {
            let app = w.name.to_string();
            let slug = w.slug.to_string();
            let policy = policy.clone();
            FleetJob {
                app: app.clone(),
                slug: slug.clone(),
                work: Arc::new(move |worker, attempt| {
                    match faults.and_then(|p| p.roll(index, attempt)) {
                        Some(Fault::Panic) => panic!("injected fault: panic in {slug}"),
                        Some(Fault::Hang) => return Err(injected_hang(&policy)),
                        Some(Fault::Error) => {
                            return Err(JobError::Transient(format!(
                                "injected fault: transient error in {slug}"
                            )))
                        }
                        None => {}
                    }
                    let start = Instant::now();
                    // Leave headroom under the fleet's hard wall backstop so
                    // the cooperative in-interpreter cap fires first.
                    let wall = policy.wall_budget.checked_div(2);
                    let run = run_workload_budgeted(&w, mode, scale, policy.tick_budget, wall)
                        .map_err(|c| JobError::from_control(&c))?;
                    let mut report = AppReport::from_run(&app, &slug, mode, &run);
                    report.wall_ms = start.elapsed().as_secs_f64() * 1e3;
                    report.worker = worker;
                    report.obs.wall_start_us = start.duration_since(epoch).as_micros() as u64;
                    Ok(report)
                }),
            }
        })
        .collect()
}

/// Run the whole fleet under the default policy, no injected faults.
///
/// `workers = 1` is the sequential baseline; the merged outcome is
/// byte-identical across worker counts once [`FleetOutcome::canonical`]
/// strips the wall-clock/worker-id fields (the analysis itself runs on a
/// seeded virtual clock and is deterministic).
pub fn run_fleet_report(mode: Mode, scale: u32, workers: usize) -> FleetOutcome {
    run_fleet_report_with(mode, scale, workers, &FleetPolicy::default(), None)
}

/// Run the whole fleet under `policy`, optionally injecting faults, and
/// merge into a [`FleetOutcome`]. Never fails as a whole: per-app
/// breakage lands in that app's status slot.
pub fn run_fleet_report_with(
    mode: Mode,
    scale: u32,
    workers: usize,
    policy: &FleetPolicy,
    faults: Option<FaultPlan>,
) -> FleetOutcome {
    let apps = run_fleet_with(fleet_jobs(mode, scale, policy, faults), workers, policy);
    FleetOutcome::new(format!("{mode:?}"), scale, workers, apps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceres_core::fleet::FaultSpec;

    #[test]
    fn fleet_jobs_cover_the_registry_in_order() {
        let jobs = fleet_jobs(Mode::Lightweight, 1, &FleetPolicy::default(), None);
        let slugs: Vec<_> = jobs.iter().map(|j| j.slug.clone()).collect();
        let expect: Vec<_> = all().iter().map(|w| w.slug.to_string()).collect();
        assert_eq!(slugs, expect);
        assert_eq!(jobs.len(), 12);
    }

    #[test]
    fn injected_hang_is_a_deterministic_timeout() {
        let e1 = injected_hang(&FleetPolicy::default());
        let e2 = injected_hang(&FleetPolicy::default());
        assert_eq!(e1, e2, "hang must cancel identically on every run");
        assert!(
            matches!(e1, JobError::Timeout(_)),
            "hang must be classified as a watchdog timeout: {e1:?}"
        );
    }

    #[test]
    fn fault_plan_threads_through_jobs() {
        // Force a fault on every attempt: all 12 apps must fail, none may
        // take the fleet down.
        let spec = FaultSpec::parse("error:1.0").unwrap();
        let policy = FleetPolicy {
            max_retries: 1,
            backoff: std::time::Duration::from_millis(1),
            ..Default::default()
        };
        let outcome = run_fleet_report_with(
            Mode::Lightweight,
            1,
            4,
            &policy,
            Some(FaultPlan::new(spec, 1)),
        );
        assert_eq!(outcome.apps.len(), 12);
        assert_eq!(outcome.succeeded(), 0);
        assert_eq!(outcome.exit_code(), 4);
        for a in &outcome.apps {
            assert!(
                a.status.detail().unwrap_or("").contains("injected fault"),
                "{:?}",
                a.status
            );
            assert_eq!(a.attempts, 2, "1 try + 1 retry for transient faults");
        }
    }
}
