//! Fleet driver: fan the 12 registered workloads across the core worker
//! pool. Lives here (not in ceres-core) because the dependency points
//! workloads → core; the core pool is workload-agnostic.

use crate::registry::{all, run_workload};
use ceres_core::fleet::{run_fleet, AppReport, FleetJob, FleetReport};
use ceres_core::Mode;
use std::time::Instant;

/// Build one [`FleetJob`] per registered workload, in Table 1 order.
///
/// Each job closure constructs its own `WebServer → instrument → Interp →
/// Engine` pipeline when a worker picks it up — nothing is shared between
/// apps, so isolation is by construction rather than by locking.
pub fn fleet_jobs(mode: Mode, scale: u32) -> Vec<FleetJob> {
    all()
        .into_iter()
        .map(|w| {
            let app = w.name.to_string();
            let slug = w.slug.to_string();
            FleetJob {
                app: app.clone(),
                slug: slug.clone(),
                work: Box::new(move |worker| {
                    let start = Instant::now();
                    let run = run_workload(&w, mode, scale).map_err(|e| format!("{e:?}"))?;
                    let mut report = AppReport::from_run(&app, &slug, mode, &run);
                    report.wall_ms = start.elapsed().as_secs_f64() * 1e3;
                    report.worker = worker;
                    Ok(report)
                }),
            }
        })
        .collect()
}

/// Run the whole fleet and merge into a [`FleetReport`].
///
/// `workers = 1` is the sequential baseline; the merged report is
/// byte-identical across worker counts once [`FleetReport::canonical`]
/// strips the wall-clock/worker-id fields (the analysis itself runs on a
/// seeded virtual clock and is deterministic).
pub fn run_fleet_report(mode: Mode, scale: u32, workers: usize) -> Result<FleetReport, String> {
    let apps = run_fleet(fleet_jobs(mode, scale), workers)?;
    Ok(FleetReport {
        mode: format!("{mode:?}"),
        scale,
        workers,
        apps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_jobs_cover_the_registry_in_order() {
        let jobs = fleet_jobs(Mode::Lightweight, 1);
        let slugs: Vec<_> = jobs.iter().map(|j| j.slug.clone()).collect();
        let expect: Vec<_> = all().iter().map(|w| w.slug.to_string()).collect();
        assert_eq!(slugs, expect);
        assert_eq!(jobs.len(), 12);
    }
}
