//! Cloth twin: Verlet integration + constraint relaxation.
//!
//! Table 3 rates the cloth nest "medium": the integration loop is
//! embarrassingly parallel (each point owns its state), but constraint
//! resolution writes *both* endpoints of every link, so naive
//! parallelization races. The parallel variant shows the standard fix the
//! "medium" rating implies: partition links into independent batches
//! (graph coloring — here the structured red/black split of a grid cloth)
//! and run each batch in parallel.

use rayon::prelude::*;

#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
    pub px: f64,
    pub py: f64,
    pub pinned: bool,
}

#[derive(Debug, Clone)]
pub struct Link {
    pub a: usize,
    pub b: usize,
    pub rest: f64,
    /// Color class for conflict-free parallel batches.
    pub color: usize,
}

pub struct Cloth {
    pub cols: usize,
    pub rows: usize,
    pub points: Vec<Point>,
    pub links: Vec<Link>,
}

const SPACING: f64 = 6.0;
const GRAVITY: f64 = 0.35;

impl Cloth {
    /// Grid cloth matching the JS workload's construction.
    pub fn new(cols: usize, rows: usize) -> Cloth {
        let mut points = Vec::new();
        for y in 0..=rows {
            for x in 0..=cols {
                points.push(Point {
                    x: x as f64 * SPACING + 20.0,
                    y: y as f64 * SPACING + 5.0,
                    px: x as f64 * SPACING + 20.0,
                    py: y as f64 * SPACING + 5.0,
                    pinned: y == 0 && x % 3 == 0,
                });
            }
        }
        let mut links = Vec::new();
        for y in 0..=rows {
            for x in 0..=cols {
                let i = y * (cols + 1) + x;
                if x < cols {
                    // Horizontal links: even/odd column = colors 0/1.
                    links.push(Link {
                        a: i,
                        b: i + 1,
                        rest: SPACING,
                        color: x % 2,
                    });
                }
                if y < rows {
                    // Vertical links: even/odd row = colors 2/3.
                    links.push(Link {
                        a: i,
                        b: i + (cols + 1),
                        rest: SPACING,
                        color: 2 + y % 2,
                    });
                }
            }
        }
        Cloth {
            cols,
            rows,
            points,
            links,
        }
    }

    /// Verlet integration — the embarrassingly parallel phase.
    pub fn integrate_seq(&mut self) {
        for p in &mut self.points {
            integrate_point(p);
        }
    }

    pub fn integrate_par(&mut self) {
        self.points.par_iter_mut().for_each(integrate_point);
    }

    /// Sequential constraint relaxation, matching the JS workload.
    pub fn satisfy_seq(&mut self, iterations: usize) {
        for _ in 0..iterations {
            for l in &self.links {
                satisfy_link(&mut self.points, l);
            }
        }
    }

    /// Parallel constraint relaxation by color batches: inside one batch no
    /// two links share a point, so each link may update its endpoints
    /// without synchronization. Note the *result differs* from the
    /// sequential Gauss-Seidel order (colors run 0..=3 instead of source
    /// order) — both orders converge to the same rest configuration; the
    /// invariant tests below check convergence, not bit equality.
    pub fn satisfy_par(&mut self, iterations: usize) {
        // Index links by color once.
        let by_color: Vec<Vec<usize>> = (0..4)
            .map(|c| {
                self.links
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.color == c)
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        for _ in 0..iterations {
            for batch in &by_color {
                // Compute corrections in parallel, then apply. Disjointness
                // within a batch makes the applies conflict-free.
                let corrections: Vec<(usize, usize, f64, f64, bool, bool)> = batch
                    .par_iter()
                    .map(|&li| {
                        let l = &self.links[li];
                        let a = &self.points[l.a];
                        let b = &self.points[l.b];
                        let dx = b.x - a.x;
                        let dy = b.y - a.y;
                        let dist = (dx * dx + dy * dy).sqrt();
                        let diff = (l.rest - dist) / (dist + 1e-4) * 0.5;
                        (l.a, l.b, dx * diff, dy * diff, a.pinned, b.pinned)
                    })
                    .collect();
                for (a, b, ox, oy, a_pin, b_pin) in corrections {
                    if !a_pin {
                        self.points[a].x -= ox;
                        self.points[a].y -= oy;
                    }
                    if !b_pin {
                        self.points[b].x += ox;
                        self.points[b].y += oy;
                    }
                }
            }
        }
    }

    /// Mean absolute deviation of link lengths from rest length.
    pub fn strain(&self) -> f64 {
        let total: f64 = self
            .links
            .iter()
            .map(|l| {
                let a = &self.points[l.a];
                let b = &self.points[l.b];
                let d = ((b.x - a.x).powi(2) + (b.y - a.y).powi(2)).sqrt();
                (d - l.rest).abs()
            })
            .sum();
        total / self.links.len() as f64
    }
}

fn integrate_point(p: &mut Point) {
    if p.pinned {
        return;
    }
    let vx = (p.x - p.px) * 0.99;
    let vy = (p.y - p.py) * 0.99;
    p.px = p.x;
    p.py = p.y;
    p.x += vx;
    p.y += vy + GRAVITY;
}

fn satisfy_link(points: &mut [Point], l: &Link) {
    let (ax, ay) = (points[l.a].x, points[l.a].y);
    let (bx, by) = (points[l.b].x, points[l.b].y);
    let dx = bx - ax;
    let dy = by - ay;
    let dist = (dx * dx + dy * dy).sqrt();
    let diff = (l.rest - dist) / (dist + 1e-4) * 0.5;
    let (ox, oy) = (dx * diff, dy * diff);
    if !points[l.a].pinned {
        points[l.a].x -= ox;
        points[l.a].y -= oy;
    }
    if !points[l.b].pinned {
        points[l.b].x += ox;
        points[l.b].y += oy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coloring_is_conflict_free() {
        let cloth = Cloth::new(12, 8);
        for c in 0..4 {
            let mut seen = std::collections::HashSet::new();
            for l in cloth.links.iter().filter(|l| l.color == c) {
                assert!(seen.insert(l.a), "point {} shared within color {c}", l.a);
                assert!(seen.insert(l.b), "point {} shared within color {c}", l.b);
            }
        }
    }

    #[test]
    fn integrate_par_matches_seq() {
        let mut a = Cloth::new(12, 8);
        let mut b = Cloth::new(12, 8);
        a.integrate_seq();
        b.integrate_par();
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn both_relaxations_reduce_strain() {
        // Start from a uniformly stretched configuration (everything 1.4×
        // away from the first point): relaxation must pull the links back
        // toward rest length.
        let stretched = || -> Cloth {
            let mut cloth = Cloth::new(12, 8);
            let (ox, oy) = (cloth.points[0].x, cloth.points[0].y);
            for p in &mut cloth.points {
                p.x = ox + (p.x - ox) * 1.4;
                p.y = oy + (p.y - oy) * 1.4;
                p.px = p.x;
                p.py = p.y;
            }
            cloth
        };
        let mut seq = stretched();
        let mut par = stretched();
        let before = seq.strain();
        assert!(before > 1.0, "stretched cloth starts strained: {before}");
        seq.satisfy_seq(20);
        par.satisfy_par(20);
        let after_s = seq.strain();
        let after_p = par.strain();
        // Pinned points hold part of the stretch; halving is convergence.
        assert!(
            after_s < before * 0.5,
            "seq relaxation converges: {before} -> {after_s}"
        );
        assert!(
            after_p < before * 0.5,
            "par relaxation converges: {before} -> {after_p}"
        );
        // Both orders approach the same rest configuration.
        assert!((after_s - after_p).abs() < 0.2, "{after_s} vs {after_p}");
    }

    #[test]
    fn pinned_points_never_move() {
        let mut cloth = Cloth::new(6, 4);
        let pinned: Vec<(usize, f64, f64)> = cloth
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.pinned)
            .map(|(i, p)| (i, p.x, p.y))
            .collect();
        assert!(!pinned.is_empty());
        for _ in 0..10 {
            cloth.integrate_par();
            cloth.satisfy_par(3);
        }
        for (i, x, y) in pinned {
            assert_eq!(cloth.points[i].x, x);
            assert_eq!(cloth.points[i].y, y);
        }
    }
}
