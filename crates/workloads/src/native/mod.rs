//! Native Rust twins of the parallelizable case-study kernels.
//!
//! JS-CERES can only *find* latent data parallelism; these kernels
//! demonstrate it is really there. Each kernel exists in a sequential and a
//! Rayon data-parallel variant with identical (or reduction-order-tolerant)
//! results, mirroring the loop nests Table 3 rates "easy"/"very easy":
//!
//! * [`image_filter`] — CamanJS's per-pixel filter pipeline + convolution;
//! * [`fluid`] — fluidSim's Jacobi linear solver sweep;
//! * [`raytrace`] — the per-pixel raytracer (divergence and all);
//! * [`normal_map`] — the normal-mapping shading pass;
//! * [`cloth`] — Verlet integration (parallel) with sequential constraint
//!   relaxation (the "medium" row: constraints conflict on shared points);
//! * [`nbody`] — Fig. 6's example with its dependencies *broken*: `p`
//!   privatized and the center-of-mass turned into a parallel reduction.
//!
//! The Criterion bench `kernels` measures sequential vs parallel walltime.

pub mod cloth;
pub mod fluid;
pub mod image_filter;
pub mod nbody;
pub mod normal_map;
pub mod raytrace;
