//! fluidSim twin: the Jacobi linear-solver sweep.
//!
//! Table 3 rates fluidSim's solver "easy": the sweep writes each cell once
//! per iteration reading only the previous buffer. The `k` iterations stay
//! sequential (a true time-like dependence the classifier correctly leaves
//! out of the blocking set); each sweep parallelizes over rows.

use rayon::prelude::*;

/// Square grid with a one-cell boundary, row-major `(n+2)²`.
#[derive(Clone)]
pub struct Grid {
    pub n: usize,
    pub cells: Vec<f64>,
}

impl Grid {
    pub fn new(n: usize) -> Grid {
        Grid {
            n,
            cells: vec![0.0; (n + 2) * (n + 2)],
        }
    }

    /// Deterministic non-trivial contents.
    pub fn seeded(n: usize) -> Grid {
        let mut g = Grid::new(n);
        for j in 0..n + 2 {
            for i in 0..n + 2 {
                let idx = g.ix(i, j);
                g.cells[idx] = ((i * 7 + j * 13) % 17) as f64 * 0.25;
            }
        }
        g
    }

    #[inline]
    pub fn ix(&self, i: usize, j: usize) -> usize {
        i + (self.n + 2) * j
    }

    pub fn checksum(&self) -> f64 {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, v)| v * ((i % 97) as f64 + 1.0))
            .sum()
    }
}

fn sweep_row(n: usize, a: f64, c: f64, x0: &[f64], prev: &[f64], j: usize, out_row: &mut [f64]) {
    let stride = n + 2;
    for (i, out) in out_row.iter_mut().enumerate().take(n + 1).skip(1) {
        let idx = i + stride * j;
        *out = (x0[idx]
            + a * (prev[idx - 1] + prev[idx + 1] + prev[idx - stride] + prev[idx + stride]))
            / c;
    }
    // Boundary columns copy through.
    out_row[0] = prev[stride * j];
    out_row[n + 1] = prev[stride * j + n + 1];
}

/// Sequential Jacobi solve: `iters` sweeps of `x ← (x0 + a·neighbors)/c`.
pub fn lin_solve_seq(x: &mut Grid, x0: &Grid, a: f64, c: f64, iters: usize) {
    let n = x.n;
    let stride = n + 2;
    let mut prev = x.cells.clone();
    for _ in 0..iters {
        prev.copy_from_slice(&x.cells);
        for j in 1..=n {
            let start = stride * j;
            // Work on a temporary row to mirror the parallel structure.
            let mut row = vec![0.0; stride];
            sweep_row(n, a, c, &x0.cells, &prev, j, &mut row);
            x.cells[start..start + stride].copy_from_slice(&row);
        }
    }
}

/// Parallel Jacobi solve: rows of each sweep are independent.
pub fn lin_solve_par(x: &mut Grid, x0: &Grid, a: f64, c: f64, iters: usize) {
    let n = x.n;
    let stride = n + 2;
    let mut prev = x.cells.clone();
    for _ in 0..iters {
        prev.copy_from_slice(&x.cells);
        let x0_cells = &x0.cells;
        let prev_ref = &prev;
        x.cells
            .par_chunks_mut(stride)
            .enumerate()
            .skip(1)
            .take(n)
            .for_each(|(j, out_row)| sweep_row(n, a, c, x0_cells, prev_ref, j, out_row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_exactly() {
        let x0 = Grid::seeded(32);
        let mut a = x0.clone();
        let mut b = x0.clone();
        lin_solve_seq(&mut a, &x0, 1.0, 4.0, 20);
        lin_solve_par(&mut b, &x0, 1.0, 4.0, 20);
        assert_eq!(
            a.cells, b.cells,
            "Jacobi is deterministic; results must be identical"
        );
    }

    #[test]
    fn solver_converges_towards_fixed_point() {
        // For a=1, c=4 the sweep averages neighbours with the source; the
        // residual between consecutive iterations must shrink.
        let x0 = Grid::seeded(16);
        let mut x5 = x0.clone();
        let mut x6 = x0.clone();
        lin_solve_seq(&mut x5, &x0, 1.0, 4.0, 5);
        lin_solve_seq(&mut x6, &x0, 1.0, 4.0, 6);
        let mut x20 = x0.clone();
        let mut x21 = x0.clone();
        lin_solve_seq(&mut x20, &x0, 1.0, 4.0, 20);
        lin_solve_seq(&mut x21, &x0, 1.0, 4.0, 21);
        let diff = |a: &Grid, b: &Grid| -> f64 {
            a.cells
                .iter()
                .zip(&b.cells)
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        assert!(diff(&x20, &x21) < diff(&x5, &x6));
    }

    #[test]
    fn interior_only_is_updated() {
        let x0 = Grid::seeded(8);
        let mut x = x0.clone();
        lin_solve_seq(&mut x, &x0, 1.0, 4.0, 1);
        // Top and bottom boundary rows untouched by the sweep.
        let stride = x.n + 2;
        assert_eq!(&x.cells[..stride], &x0.cells[..stride]);
        let last = x.cells.len() - stride;
        assert_eq!(&x.cells[last..], &x0.cells[last..]);
    }
}
