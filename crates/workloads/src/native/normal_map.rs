//! Normal-mapping twin: height map → normals → per-pixel shading.
//!
//! Table 3: "very easy / easy", 99% of time in loops — both passes write
//! each output element exactly once.

use rayon::prelude::*;

/// Deterministic height field, same formula as the JS workload.
pub fn height_map(w: usize, h: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            out[y * w + x] = ((x as f32 * 0.5).sin() * 8.0)
                + ((y as f32 * 0.4).cos() * 6.0)
                + (((x + y) as f32 * 0.2).sin() * 4.0);
        }
    }
    out
}

fn normal_at(height: &[f32], w: usize, h: usize, x: usize, y: usize) -> [f32; 3] {
    let at = |xx: usize, yy: usize| height[yy * w + xx];
    let xl = if x > 0 { at(x - 1, y) } else { at(x, y) };
    let xr = if x < w - 1 { at(x + 1, y) } else { at(x, y) };
    let yu = if y > 0 { at(x, y - 1) } else { at(x, y) };
    let yd = if y < h - 1 { at(x, y + 1) } else { at(x, y) };
    let n = [xl - xr, yu - yd, 2.0];
    let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
    [n[0] / len, n[1] / len, n[2] / len]
}

/// Sequential normals pass.
pub fn normals_seq(height: &[f32], w: usize, h: usize) -> Vec<[f32; 3]> {
    let mut out = vec![[0.0; 3]; w * h];
    for y in 0..h {
        for x in 0..w {
            out[y * w + x] = normal_at(height, w, h, x, y);
        }
    }
    out
}

/// Parallel normals pass.
pub fn normals_par(height: &[f32], w: usize, h: usize) -> Vec<[f32; 3]> {
    let mut out = vec![[0.0; 3]; w * h];
    out.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, slot) in row.iter_mut().enumerate() {
            *slot = normal_at(height, w, h, x, y);
        }
    });
    out
}

fn shade_pixel(n: [f32; 3], x: usize, y: usize, lx: f32, ly: f32) -> [u8; 3] {
    let l = [lx - x as f32, ly - y as f32, 12.0];
    let ll = (l[0] * l[0] + l[1] * l[1] + l[2] * l[2]).sqrt();
    let d = ((n[0] * l[0] + n[1] * l[1] + n[2] * l[2]) / ll).max(0.0);
    let v = d * 255.0;
    [(v * 0.9) as u8, (v * 0.8) as u8, v as u8]
}

/// Sequential shading pass.
pub fn shade_seq(normals: &[[f32; 3]], w: usize, h: usize, lx: f32, ly: f32) -> Vec<u8> {
    let mut out = vec![0u8; 3 * w * h];
    for y in 0..h {
        for x in 0..w {
            let p = shade_pixel(normals[y * w + x], x, y, lx, ly);
            out[3 * (y * w + x)..3 * (y * w + x) + 3].copy_from_slice(&p);
        }
    }
    out
}

/// Parallel shading pass.
pub fn shade_par(normals: &[[f32; 3]], w: usize, h: usize, lx: f32, ly: f32) -> Vec<u8> {
    let mut out = vec![0u8; 3 * w * h];
    out.par_chunks_mut(3 * w).enumerate().for_each(|(y, row)| {
        for x in 0..w {
            let p = shade_pixel(normals[y * w + x], x, y, lx, ly);
            row[3 * x..3 * x + 3].copy_from_slice(&p);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let (w, h) = (96, 64);
        let hm = height_map(w, h);
        let na = normals_seq(&hm, w, h);
        let nb = normals_par(&hm, w, h);
        assert_eq!(na, nb);
        let sa = shade_seq(&na, w, h, 20.0, 20.0);
        let sb = shade_par(&nb, w, h, 20.0, 20.0);
        assert_eq!(sa, sb);
    }

    #[test]
    fn normals_are_unit_length_and_upward() {
        let (w, h) = (32, 32);
        let hm = height_map(w, h);
        for n in normals_seq(&hm, w, h) {
            let len = (n[0] * n[0] + n[1] * n[1] + n[2] * n[2]).sqrt();
            assert!((len - 1.0).abs() < 1e-5);
            assert!(n[2] > 0.0);
        }
    }

    #[test]
    fn light_position_moves_highlights() {
        let (w, h) = (32, 32);
        let hm = height_map(w, h);
        let n = normals_seq(&hm, w, h);
        let left = shade_seq(&n, w, h, 0.0, 16.0);
        let right = shade_seq(&n, w, h, 31.0, 16.0);
        assert_ne!(left, right);
    }
}
