//! Raytracer twin: per-pixel rays with recursive reflections.
//!
//! Table 3: "very easy" dependencies (each pixel writes its own slot),
//! divergence "yes" (variable-depth recursion) — which Rayon's work
//! stealing absorbs, unlike SIMD. The scene matches the JS workload.

use rayon::prelude::*;

#[derive(Clone, Copy)]
pub struct Sphere {
    pub c: [f64; 3],
    pub r: f64,
    pub color: [f64; 3],
    pub refl: f64,
}

/// The JS workload's scene.
pub fn scene() -> Vec<Sphere> {
    vec![
        Sphere {
            c: [0.0, 0.0, 6.0],
            r: 2.0,
            color: [255.0, 60.0, 60.0],
            refl: 0.4,
        },
        Sphere {
            c: [2.5, 1.0, 8.0],
            r: 1.5,
            color: [60.0, 255.0, 60.0],
            refl: 0.3,
        },
        Sphere {
            c: [-2.5, -1.0, 7.0],
            r: 1.0,
            color: [60.0, 60.0, 255.0],
            refl: 0.6,
        },
    ]
}

const LIGHT: [f64; 3] = [-5.0, 5.0, 0.0];

fn intersect(spheres: &[Sphere], o: [f64; 3], d: [f64; 3]) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for (idx, s) in spheres.iter().enumerate() {
        let l = [s.c[0] - o[0], s.c[1] - o[1], s.c[2] - o[2]];
        let tca = l[0] * d[0] + l[1] * d[1] + l[2] * d[2];
        if tca < 0.0 {
            continue;
        }
        let d2 = l[0] * l[0] + l[1] * l[1] + l[2] * l[2] - tca * tca;
        if d2 > s.r * s.r {
            continue;
        }
        let thc = (s.r * s.r - d2).sqrt();
        let t = tca - thc;
        if t > 0.001 && best.map(|(bt, _)| t < bt).unwrap_or(true) {
            best = Some((t, idx));
        }
    }
    best
}

fn trace(spheres: &[Sphere], o: [f64; 3], d: [f64; 3], depth: u32) -> [f64; 3] {
    let Some((t, idx)) = intersect(spheres, o, d) else {
        let sky = 40.0 + 30.0 * (d[1] + 1.0);
        return [sky, sky, 90.0 + 40.0 * (d[1] + 1.0)];
    };
    let s = spheres[idx];
    let p = [o[0] + d[0] * t, o[1] + d[1] * t, o[2] + d[2] * t];
    let n = [
        (p[0] - s.c[0]) / s.r,
        (p[1] - s.c[1]) / s.r,
        (p[2] - s.c[2]) / s.r,
    ];
    let mut l = [LIGHT[0] - p[0], LIGHT[1] - p[1], LIGHT[2] - p[2]];
    let ll = (l[0] * l[0] + l[1] * l[1] + l[2] * l[2]).sqrt();
    l = [l[0] / ll, l[1] / ll, l[2] / ll];
    let mut diff = (n[0] * l[0] + n[1] * l[1] + n[2] * l[2]).max(0.0);
    if intersect(spheres, p, l).is_some() {
        diff *= 0.2;
    }
    let shade = 0.15 + 0.85 * diff;
    let mut color = [s.color[0] * shade, s.color[1] * shade, s.color[2] * shade];
    if depth < 3 && s.refl > 0.0 {
        let dot = d[0] * n[0] + d[1] * n[1] + d[2] * n[2];
        let r = [
            d[0] - 2.0 * dot * n[0],
            d[1] - 2.0 * dot * n[1],
            d[2] - 2.0 * dot * n[2],
        ];
        let refl = trace(spheres, p, r, depth + 1);
        for c in 0..3 {
            color[c] = color[c] * (1.0 - s.refl) + refl[c] * s.refl;
        }
    }
    color
}

fn pixel(spheres: &[Sphere], w: usize, h: usize, x: usize, y: usize) -> [u8; 3] {
    let dx = (x as f64 - w as f64 / 2.0) / w as f64;
    let dy = (h as f64 / 2.0 - y as f64) / h as f64;
    let len = (dx * dx + dy * dy + 1.0).sqrt();
    let c = trace(spheres, [0.0, 0.0, 0.0], [dx / len, dy / len, 1.0 / len], 0);
    [
        c[0].min(255.0) as u8,
        c[1].min(255.0) as u8,
        c[2].min(255.0) as u8,
    ]
}

/// Sequential render into an RGB buffer.
pub fn render_seq(spheres: &[Sphere], w: usize, h: usize) -> Vec<u8> {
    let mut out = vec![0u8; 3 * w * h];
    for y in 0..h {
        for x in 0..w {
            let p = pixel(spheres, w, h, x, y);
            out[3 * (y * w + x)..3 * (y * w + x) + 3].copy_from_slice(&p);
        }
    }
    out
}

/// Parallel render (rows independent).
pub fn render_par(spheres: &[Sphere], w: usize, h: usize) -> Vec<u8> {
    let mut out = vec![0u8; 3 * w * h];
    out.par_chunks_mut(3 * w).enumerate().for_each(|(y, row)| {
        for x in 0..w {
            let p = pixel(spheres, w, h, x, y);
            row[3 * x..3 * x + 3].copy_from_slice(&p);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let s = scene();
        assert_eq!(render_seq(&s, 64, 48), render_par(&s, 64, 48));
    }

    #[test]
    fn image_has_spheres_and_sky() {
        let s = scene();
        let img = render_seq(&s, 64, 48);
        // Center pixel hits the big red sphere.
        let c = 3 * (24 * 64 + 32);
        assert!(
            img[c] > img[c + 2],
            "center should be red-dominant: {:?}",
            &img[c..c + 3]
        );
        // Top corner is sky (blue-dominant).
        assert!(img[2] > img[0], "corner should be sky: {:?}", &img[0..3]);
    }

    #[test]
    fn reflections_change_the_image() {
        let mut matte = scene();
        for s in &mut matte {
            s.refl = 0.0;
        }
        let with = render_seq(&scene(), 32, 24);
        let without = render_seq(&matte, 32, 24);
        assert_ne!(with, without);
    }
}
