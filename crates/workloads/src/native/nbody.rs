//! Fig. 6's N-body step with its dependencies broken.
//!
//! The paper's worked example flags three access classes in the `for` loop:
//! the shared `p` (function-scoped var), the per-particle property writes,
//! and the flow-dependent center-of-mass accumulation. The parallel variant
//! shows exactly how each is broken:
//!
//! * `p` → privatized (each parallel iteration owns its particle borrow);
//! * `p.vX`/`p.x` writes → already disjoint per particle (`par_iter_mut`);
//! * `com` → a parallel **reduction** with an associative combine.
//!
//! The sequential and parallel versions agree to floating-point reduction
//! tolerance.

use rayon::prelude::*;

#[derive(Debug, Clone, PartialEq)]
pub struct Particle {
    pub x: f64,
    pub y: f64,
    pub vx: f64,
    pub vy: f64,
    pub fx: f64,
    pub fy: f64,
    pub m: f64,
}

/// Weighted center of mass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Com {
    pub x: f64,
    pub y: f64,
    pub m: f64,
}

impl Com {
    fn add(self, p: &Particle) -> Com {
        let m = self.m + p.m;
        Com {
            x: (self.x * self.m + p.x * p.m) / m,
            y: (self.y * self.m + p.y * p.m) / m,
            m,
        }
    }

    /// Associative combine for the parallel reduction.
    fn merge(self, other: Com) -> Com {
        let m = self.m + other.m;
        if m == 0.0 {
            return Com::default();
        }
        Com {
            x: (self.x * self.m + other.x * other.m) / m,
            y: (self.y * self.m + other.y * other.m) / m,
            m,
        }
    }
}

/// Deterministic particle cloud.
pub fn make_bodies(n: usize) -> Vec<Particle> {
    (0..n)
        .map(|i| {
            let a = i as f64 * 0.61803398875;
            Particle {
                x: a.cos() * 10.0,
                y: a.sin() * 10.0,
                vx: 0.0,
                vy: 0.0,
                fx: a.cos(),
                fy: a.sin(),
                m: 1.0 + (i % 5) as f64 * 0.25,
            }
        })
        .collect()
}

const DT: f64 = 0.01;

fn integrate(p: &mut Particle) {
    p.vx += p.fx / p.m * DT;
    p.vy += p.fy / p.m * DT;
    p.x += p.vx * DT;
    p.y += p.vy * DT;
}

/// The paper's sequential `step()` (Fig. 6, lines 6–21).
pub fn step_seq(bodies: &mut [Particle]) -> Com {
    let mut com = Com::default();
    for p in bodies.iter_mut() {
        integrate(p);
        com = com.add(p);
    }
    com
}

/// The dependence-broken parallel step.
pub fn step_par(bodies: &mut [Particle]) -> Com {
    bodies
        .par_iter_mut()
        .map(|p| {
            integrate(p);
            Com {
                x: p.x,
                y: p.y,
                m: p.m,
            }
        })
        .reduce(Com::default, Com::merge)
}

/// All-pairs force computation (the `computeForces()` of Fig. 6), O(n²):
/// the compute-heavy phase the parallel version wins on.
pub fn compute_forces_seq(bodies: &mut [Particle]) {
    let snapshot: Vec<(f64, f64, f64)> = bodies.iter().map(|p| (p.x, p.y, p.m)).collect();
    for (i, p) in bodies.iter_mut().enumerate() {
        let (mut fx, mut fy) = (0.0, 0.0);
        for (j, &(x, y, m)) in snapshot.iter().enumerate() {
            if i == j {
                continue;
            }
            let dx = x - p.x;
            let dy = y - p.y;
            let d2 = dx * dx + dy * dy + 0.01;
            let inv = m / (d2 * d2.sqrt());
            fx += dx * inv;
            fy += dy * inv;
        }
        p.fx = fx;
        p.fy = fy;
    }
}

/// Parallel all-pairs forces (reads a position snapshot, writes own slot).
pub fn compute_forces_par(bodies: &mut [Particle]) {
    let snapshot: Vec<(f64, f64, f64)> = bodies.iter().map(|p| (p.x, p.y, p.m)).collect();
    bodies.par_iter_mut().enumerate().for_each(|(i, p)| {
        let (mut fx, mut fy) = (0.0, 0.0);
        for (j, &(x, y, m)) in snapshot.iter().enumerate() {
            if i == j {
                continue;
            }
            let dx = x - p.x;
            let dy = y - p.y;
            let d2 = dx * dx + dy * dy + 0.01;
            let inv = m / (d2 * d2.sqrt());
            fx += dx * inv;
            fy += dy * inv;
        }
        p.fx = fx;
        p.fy = fy;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_step_matches_sequential() {
        let mut a = make_bodies(256);
        let mut b = a.clone();
        let com_a = step_seq(&mut a);
        let com_b = step_par(&mut b);
        assert_eq!(a, b, "particle state must match exactly");
        // The com reduction reassociates: tolerate float noise.
        assert!(
            (com_a.x - com_b.x).abs() < 1e-9,
            "{} vs {}",
            com_a.x,
            com_b.x
        );
        assert!((com_a.y - com_b.y).abs() < 1e-9);
        assert!((com_a.m - com_b.m).abs() < 1e-9);
    }

    #[test]
    fn parallel_forces_match_sequential() {
        let mut a = make_bodies(128);
        let mut b = a.clone();
        compute_forces_seq(&mut a);
        compute_forces_par(&mut b);
        for (pa, pb) in a.iter().zip(&b) {
            assert!((pa.fx - pb.fx).abs() < 1e-12);
            assert!((pa.fy - pb.fy).abs() < 1e-12);
        }
    }

    #[test]
    fn com_merge_is_mass_weighted() {
        let a = Com {
            x: 0.0,
            y: 0.0,
            m: 1.0,
        };
        let b = Com {
            x: 10.0,
            y: 0.0,
            m: 3.0,
        };
        let m = a.merge(b);
        assert!((m.x - 7.5).abs() < 1e-12);
        assert_eq!(m.m, 4.0);
        // Merge with nothing.
        assert_eq!(Com::default().merge(Com::default()), Com::default());
    }

    #[test]
    fn multi_step_trajectories_stay_in_sync() {
        let mut a = make_bodies(64);
        let mut b = a.clone();
        for _ in 0..10 {
            compute_forces_seq(&mut a);
            step_seq(&mut a);
            compute_forces_par(&mut b);
            step_par(&mut b);
        }
        for (pa, pb) in a.iter().zip(&b) {
            assert!((pa.x - pb.x).abs() < 1e-9);
            assert!((pa.y - pb.y).abs() < 1e-9);
        }
    }
}
