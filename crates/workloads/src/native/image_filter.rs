//! CamanJS twin: per-pixel filter pipeline and a 3×3 box blur.
//!
//! The JS version's dominant nest writes `data[i..i+3]` disjointly per
//! pixel — Table 3 "easy". Here the same pipeline runs over rows with
//! `rayon::par_chunks_mut`, the textbook embarrassingly parallel image op.

use rayon::prelude::*;

/// RGBA image with deterministic gradient content (same pattern as the
/// `ceres-dom` canvas, so JS and native operate on comparable inputs).
#[derive(Clone)]
pub struct Image {
    pub width: usize,
    pub height: usize,
    pub data: Vec<u8>,
}

impl Image {
    pub fn gradient(width: usize, height: usize) -> Image {
        let mut data = vec![0u8; 4 * width * height];
        for y in 0..height {
            for x in 0..width {
                let i = 4 * (y * width + x);
                let checker = if (x / 8 + y / 8) % 2 == 0 { 40 } else { 0 };
                data[i] = ((x * 255) / width.max(1)) as u8;
                data[i + 1] = ((y * 255) / height.max(1)) as u8;
                data[i + 2] = (((x + y) * 127) / (width + height).max(1)) as u8 + checker;
                data[i + 3] = 255;
            }
        }
        Image {
            width,
            height,
            data,
        }
    }

    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in &self.data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[inline]
fn clamp(v: f32) -> u8 {
    v.clamp(0.0, 255.0) as u8
}

/// The CamanJS filter chain on one pixel (brightness → contrast →
/// saturation), matching the JS workload's parameters.
#[inline]
pub fn filter_pixel(r: u8, g: u8, b: u8) -> (u8, u8, u8) {
    // brightness(10)
    let (r, g, b) = (r as f32 + 10.0, g as f32 + 10.0, b as f32 + 10.0);
    // contrast(8)
    let f2 = (1.08f32) * 1.08;
    let c = |v: f32| (v / 255.0 - 0.5) * f2 * 255.0 + 127.5;
    let (r, g, b) = (c(r), c(g), c(b));
    // saturation(-20)
    let max = r.max(g).max(b);
    let mul = -0.01 * -20.0;
    (
        clamp(r + (max - r) * mul),
        clamp(g + (max - g) * mul),
        clamp(b + (max - b) * mul),
    )
}

/// Sequential filter pass.
pub fn filter_seq(img: &mut Image) {
    for px in img.data.chunks_exact_mut(4) {
        let (r, g, b) = filter_pixel(px[0], px[1], px[2]);
        px[0] = r;
        px[1] = g;
        px[2] = b;
    }
}

/// Parallel filter pass (rows are independent).
pub fn filter_par(img: &mut Image) {
    let row = 4 * img.width;
    img.data.par_chunks_mut(row).for_each(|row| {
        for px in row.chunks_exact_mut(4) {
            let (r, g, b) = filter_pixel(px[0], px[1], px[2]);
            px[0] = r;
            px[1] = g;
            px[2] = b;
        }
    });
}

fn blur_row(src: &Image, y: usize, out_row: &mut [u8]) {
    let w = src.width;
    let h = src.height;
    for x in 0..w {
        for c in 0..3 {
            if x == 0 || x == w - 1 || y == 0 || y == h - 1 {
                out_row[4 * x + c] = src.data[4 * (y * w + x) + c];
                continue;
            }
            let mut acc = 0u32;
            for ky in -1i64..=1 {
                for kx in -1i64..=1 {
                    let yy = (y as i64 + ky) as usize;
                    let xx = (x as i64 + kx) as usize;
                    acc += src.data[4 * (yy * w + xx) + c] as u32;
                }
            }
            out_row[4 * x + c] = (acc / 9) as u8;
        }
        out_row[4 * x + 3] = 255;
    }
}

/// Sequential 3×3 box blur into a fresh buffer.
pub fn blur_seq(src: &Image) -> Image {
    let mut out = src.clone();
    let row = 4 * src.width;
    for y in 0..src.height {
        let start = y * row;
        blur_row(src, y, &mut out.data[start..start + row]);
    }
    out
}

/// Parallel 3×3 box blur (each output row computed independently).
pub fn blur_par(src: &Image) -> Image {
    let mut out = src.clone();
    let row = 4 * src.width;
    out.data
        .par_chunks_mut(row)
        .enumerate()
        .for_each(|(y, out_row)| blur_row(src, y, out_row));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_par_matches_seq() {
        let mut a = Image::gradient(64, 48);
        let mut b = a.clone();
        filter_seq(&mut a);
        filter_par(&mut b);
        assert_eq!(a.data, b.data);
        // And actually changed the image.
        assert_ne!(a.checksum(), Image::gradient(64, 48).checksum());
    }

    #[test]
    fn blur_par_matches_seq() {
        let img = Image::gradient(64, 48);
        let a = blur_seq(&img);
        let b = blur_par(&img);
        assert_eq!(a.data, b.data);
        // Interior smoothed: a mid pixel equals the mean of its block.
        let w = img.width;
        let i = 4 * (10 * w + 10);
        let mut acc = 0u32;
        for ky in 9..=11usize {
            for kx in 9..=11usize {
                acc += img.data[4 * (ky * w + kx)] as u32;
            }
        }
        assert_eq!(a.data[i], (acc / 9) as u8);
    }

    #[test]
    fn gradient_matches_dom_canvas() {
        // The native gradient and the ceres-dom canvas gradient are the
        // same pattern, so cross-substrate comparisons are meaningful.
        let native = Image::gradient(16, 16);
        let canvas = ceres_dom::CanvasState::new(16, 16);
        assert_eq!(native.data, canvas.borrow().pixels);
    }
}
