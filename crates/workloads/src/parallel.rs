//! Predicted-vs-measured parallel speedup over the Table 1 registry —
//! the "Table 3 closed-loop" driver behind `repro whatif` and
//! `repro parallel-bench`.
//!
//! Per app the driver (1) runs the dependence analysis, (2) asks the
//! what-if profiler ([`mod@ceres_core::whatif`]) for the ranked counterfactual
//! table, (3) rewrites the top-ranked `ok` nest into fork-join form and
//! executes it on 1 and on W workers ([`ceres_core::parallel`]),
//! (4) verifies byte-identity between the two runs, and (5) compares the
//! measured critical-path speedup against the profiler's prediction and
//! the paper's Table-3/Amdahl expectations. A nest the transform or the
//! runtime refuses is a recorded outcome, not an error — when a ranked
//! `ok` nest fails, the driver falls back to the next one, mirroring how
//! a developer would walk the profiler's ranking.
//!
//! The model predicts perfect balance (`P/W`); the measurement charges
//! the real critical path (`max_k E_k` per instance) plus gating cost, so
//! the two agree only within a tolerance: [`PREDICTION_ERROR_BOUND`], the
//! error bound documented and justified in `docs/PARALLELIZE.md`.

use crate::registry::{all, run_workload_budgeted, Workload};
use ceres_core::parallel::{equivalence, run_parallel, ParallelSpec};
use ceres_core::whatif::{whatif, WhatIfReport, WHATIF_SCHEMA_VERSION};
use ceres_core::{LoopId, Mode};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Documented relative error bound on predicted vs measured speedup:
/// `|predicted - measured| / measured <= 0.35`. See `docs/PARALLELIZE.md`
/// for the derivation (imbalance + gate overhead + instrumented-vs-plain
/// tick-base drift).
pub const PREDICTION_ERROR_BOUND: f64 = 0.35;

/// Wall-clock backstop per executor run.
const RUN_WALL_BUDGET: Duration = Duration::from_secs(120);

/// Event budget, matching `AnalyzeOptions::default`.
const MAX_EVENTS: usize = 10_000;

/// One app's what-if table (for `repro whatif`).
pub struct AppWhatIf {
    /// Display name (Table 1).
    pub app: String,
    /// CLI slug.
    pub slug: String,
    /// Ranked predictions, or the analysis failure.
    pub report: Result<WhatIfReport, String>,
}

/// Run the dependence analysis + what-if profiler over the whole registry.
pub fn whatif_fleet(scale: u32, workers: &[usize]) -> Vec<AppWhatIf> {
    all()
        .into_iter()
        .map(|w| {
            let report =
                run_workload_budgeted(&w, Mode::Dependence, scale, None, Some(RUN_WALL_BUDGET))
                    .map(|run| whatif(&run, workers))
                    .map_err(|e| format!("{e:?}"));
            AppWhatIf {
                app: w.name.to_string(),
                slug: w.slug.to_string(),
                report,
            }
        })
        .collect()
}

/// Per-app outcome of the closed loop (for `repro parallel-bench`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelBenchRow {
    /// Display name (Table 1).
    pub app: String,
    /// CLI slug.
    pub slug: String,
    /// Loop the fork-join executor ran, if any.
    pub target: Option<u32>,
    /// `parallelized`, or `refused: <reason>` / `failed: <reason>`.
    pub outcome: String,
    /// Nests the driver tried before this outcome (fallback trail).
    pub attempts: u32,
    /// Why each earlier-ranked nest was passed over — the static
    /// refusals, runtime divergences, and equivalence failures the gates
    /// caught on the way down the ranking.
    pub trail: Vec<String>,
    /// Parallel fraction `P/T` of the executed nest.
    pub parallel_fraction: Option<f64>,
    /// Profiler-predicted whole-run speedup at the bench worker count.
    pub predicted: Option<f64>,
    /// Measured critical-path speedup (`final / (final - saved)`).
    pub measured: Option<f64>,
    /// `|predicted - measured| / measured`, when both exist.
    pub relative_error: Option<f64>,
    /// Within [`PREDICTION_ERROR_BOUND`]?
    pub within_bound: Option<bool>,
    /// 1-worker vs W-worker gated runs byte-identical?
    pub equivalent: Option<bool>,
    /// Gating cost: gated-1-worker ticks / ungated ticks.
    pub gate_overhead: Option<f64>,
    /// `W → ∞` Amdahl bound of the executed (or top) nest.
    pub amdahl_bound: Option<f64>,
    /// Does the paper's Sec. 4.2 count this app above 3x?
    pub paper_over_3x: bool,
    /// Saved virtual ticks (the critical-path win).
    pub saved_ticks: u64,
    /// Fork-join instances / gated iterations executed.
    pub instances: u64,
    /// Total gated iterations.
    pub iterations: u64,
}

/// Registry-wide closed-loop report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelBenchReport {
    /// [`WHATIF_SCHEMA_VERSION`] — the rows embed what-if quantities.
    pub schema: u32,
    /// Worker count of the parallel arm.
    pub workers: usize,
    /// Workload scale factor.
    pub scale: u32,
    /// [`PREDICTION_ERROR_BOUND`].
    pub error_bound: f64,
    /// Per-app outcomes, registry order.
    pub rows: Vec<ParallelBenchRow>,
}

impl ParallelBenchReport {
    /// Apps that ran in parallel with byte-identical output.
    pub fn parallelized(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.equivalent == Some(true))
            .count()
    }

    /// Of the paper's >3x apps, how many have predictions within the
    /// documented error bound of the measurement?
    pub fn over3x_within_bound(&self) -> (usize, usize) {
        let over: Vec<_> = self.rows.iter().filter(|r| r.paper_over_3x).collect();
        let within = over.iter().filter(|r| r.within_bound == Some(true)).count();
        (within, over.len())
    }
}

/// Close the loop for one workload. Walks the ranked `ok` nests until one
/// parallelizes and verifies, recording refusals along the way.
pub fn bench_workload(w: &Workload, scale: u32, workers: usize) -> ParallelBenchRow {
    let mut row = ParallelBenchRow {
        app: w.name.to_string(),
        slug: w.slug.to_string(),
        target: None,
        outcome: String::new(),
        attempts: 0,
        trail: Vec::new(),
        parallel_fraction: None,
        predicted: None,
        measured: None,
        relative_error: None,
        within_bound: None,
        equivalent: None,
        gate_overhead: None,
        amdahl_bound: None,
        paper_over_3x: w.expected.amdahl_over_3x,
        saved_ticks: 0,
        instances: 0,
        iterations: 0,
    };

    // 1) Dependence analysis + what-if ranking.
    let run = match run_workload_budgeted(w, Mode::Dependence, scale, None, Some(RUN_WALL_BUDGET)) {
        Ok(run) => run,
        Err(e) => {
            row.outcome = format!("failed: analysis: {e:?}");
            return row;
        }
    };
    let report = whatif(&run, &[workers]);
    if let Some(top) = report.top_ok_prediction() {
        row.amdahl_bound = Some(top.amdahl_bound);
    }
    let candidates: Vec<_> = report
        .nests
        .iter()
        .filter(|n| n.ok && n.nest_ticks > 0)
        .collect();
    if candidates.is_empty() {
        row.outcome = "refused: no ok nest with measured time".to_string();
        return row;
    }

    // 2) Ungated control (shared by every candidate attempt).
    let base_spec = ParallelSpec {
        source: run.source.clone(),
        target: None,
        workers: 1,
        seed: 2015,
        max_events: MAX_EVENTS,
        max_ticks: None,
        wall_budget: Some(RUN_WALL_BUDGET),
        interaction: Some(w.interaction),
    };
    let plain = match run_parallel(&base_spec) {
        Ok(p) => p,
        Err(e) => {
            row.outcome = format!("failed: ungated control: {e}");
            return row;
        }
    };

    // 3) Walk the ranking: gate, run on 1 and on W workers, verify. Every
    // kind of rejection — static refusal, runtime divergence, equivalence
    // mismatch — drops to the next-ranked nest; whatever the gates catch
    // is a trail entry, never a corrupted result.
    for nest in candidates {
        row.attempts += 1;
        let target = Some(LoopId(nest.root));
        let seq = match run_parallel(&ParallelSpec {
            target,
            workers: 1,
            ..base_spec.clone()
        }) {
            Ok(s) => s,
            Err(e) => {
                row.trail.push(format!("nest {}: {e}", nest.root));
                continue;
            }
        };
        // The gate must not change semantics (clock aside).
        if seq.console != plain.console
            || seq.state_render != plain.state_render
            || seq.canvas != plain.canvas
            || seq.dom_mutations != plain.dom_mutations
        {
            row.trail.push(format!(
                "nest {}: gating changed program semantics",
                nest.root
            ));
            continue;
        }
        let par = match run_parallel(&ParallelSpec {
            target,
            workers,
            ..base_spec.clone()
        }) {
            Ok(p) => p,
            Err(e) => {
                row.trail.push(format!("nest {}: {e}", nest.root));
                continue;
            }
        };
        let eq = equivalence(&seq, &par);
        if !eq.identical {
            row.trail.push(format!(
                "nest {}: equivalence gate: {}",
                nest.root,
                eq.diffs.join("; ")
            ));
            continue;
        }

        row.target = Some(nest.root);
        row.outcome = "parallelized".to_string();
        row.parallel_fraction = Some(nest.parallel_fraction);
        row.predicted = Some(nest.speedup(workers));
        row.amdahl_bound = Some(nest.amdahl_bound);
        let measured = par.measured_speedup();
        row.measured = Some(measured);
        let rel = if measured > 0.0 {
            (nest.speedup(workers) - measured).abs() / measured
        } else {
            f64::INFINITY
        };
        row.relative_error = Some(rel);
        row.within_bound = Some(rel <= PREDICTION_ERROR_BOUND);
        row.equivalent = Some(true);
        row.gate_overhead = Some(if plain.final_ticks > 0 {
            seq.final_ticks as f64 / plain.final_ticks as f64
        } else {
            1.0
        });
        row.saved_ticks = par.par_saved_ticks;
        row.instances = par.instances;
        row.iterations = par.par_iterations;
        return row;
    }
    row.outcome = format!("refused: {}", row.trail.last().cloned().unwrap_or_default());
    row
}

/// Close the loop over the whole registry.
pub fn parallel_bench(scale: u32, workers: usize) -> ParallelBenchReport {
    ParallelBenchReport {
        schema: WHATIF_SCHEMA_VERSION,
        workers,
        scale,
        error_bound: PREDICTION_ERROR_BOUND,
        rows: all()
            .iter()
            .map(|w| bench_workload(w, scale, workers))
            .collect(),
    }
}

/// Render the paper-style predicted-vs-measured table.
pub fn render_parallel_bench(report: &ParallelBenchReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>4} {:>6} {:>9} {:>9} {:>7} {:>6} {:>7} {:>6}  outcome",
        "app", "nest", "P/T", "predicted", "measured", "err", "ok?", "amdahl", ">3x?"
    );
    for r in &report.rows {
        let _ = writeln!(
            out,
            "{:<22} {:>4} {:>6} {:>9} {:>9} {:>7} {:>6} {:>7} {:>6}  {}",
            r.app,
            r.target.map_or("-".into(), |t| t.to_string()),
            r.parallel_fraction
                .map_or("-".into(), |p| format!("{:.0}%", 100.0 * p)),
            r.predicted.map_or("-".into(), |p| format!("{p:.2}x")),
            r.measured.map_or("-".into(), |m| format!("{m:.2}x")),
            r.relative_error
                .map_or("-".into(), |e| format!("{:.0}%", 100.0 * e)),
            match r.within_bound {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "-",
            },
            r.amdahl_bound.map_or("-".into(), |b| if b.is_infinite() {
                "inf".to_string()
            } else {
                format!("{b:.2}x")
            }),
            if r.paper_over_3x { "yes" } else { "no" },
            r.outcome,
        );
    }
    let trails: Vec<_> = report.rows.iter().filter(|r| !r.trail.is_empty()).collect();
    if !trails.is_empty() {
        let _ = writeln!(out, "\ngate refusals along the ranking:");
        for r in trails {
            for t in &r.trail {
                let _ = writeln!(out, "  {:<14} {t}", r.slug);
            }
        }
    }
    let (within, over) = report.over3x_within_bound();
    let _ = writeln!(
        out,
        "\n{} of 12 apps parallelized with byte-identical output on {} workers;\n\
         {within} of the paper's {over} >3x apps predicted within the {:.0}% error bound.",
        report.parallelized(),
        report.workers,
        100.0 * report.error_bound,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::by_slug;

    #[test]
    fn closed_loop_parallelizes_normal_mapping() {
        let w = by_slug("normalmap").expect("registry slug");
        let row = bench_workload(&w, 1, 2);
        assert_eq!(row.outcome, "parallelized", "trail: {:?}", row.trail);
        assert_eq!(row.equivalent, Some(true));
        let measured = row.measured.unwrap();
        let predicted = row.predicted.unwrap();
        assert!(measured > 1.0, "no critical-path win: {measured}");
        assert!(
            predicted >= measured - 1e-9,
            "model predicts perfect balance"
        );
        // JSON round-trip for the `--json` surface.
        let json = serde_json::to_string(&row).unwrap();
        let back: ParallelBenchRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back.target, row.target);
    }

    #[test]
    fn whatif_fleet_ranks_a_hot_nest_for_raytracing() {
        let w = by_slug("raytracing").expect("registry slug");
        let run = crate::registry::run_workload_budgeted(
            &w,
            Mode::Dependence,
            1,
            None,
            Some(RUN_WALL_BUDGET),
        )
        .unwrap();
        let report = whatif(&run, &[2, 4]);
        let top = report.top_ok_prediction().expect("an ok nest");
        assert!(top.parallel_fraction > 0.3, "{top:?}");
        assert!(top.speedup(4) > 1.2, "{top:?}");
    }
}
