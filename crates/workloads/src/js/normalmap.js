// Normal Mapping — 29a.ch/experiments (Table 1: Games).
// Per-pixel lighting from a height map: pass 1 derives surface normals by
// finite differences, pass 2 shades each pixel against a moving light.
// Both passes write each pixel exactly once — "very easy / easy", 99% of
// time in loops, "little" divergence (only boundary clamps).
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var W = 24 * S;
var H = 18 * S;
var canvas = document.getElementById("nm-canvas");
var ctx = canvas.getContext("2d");
var out = ctx.createImageData(W, H);

var height = new Float32Array(W * H);
var normals = new Float32Array(W * H * 3);

function makeHeightMap() {
  var x, y;
  for (y = 0; y < H; y++) {
    for (x = 0; x < W; x++) {
      height[y * W + x] =
        Math.sin(x * 0.5) * 8 + Math.cos(y * 0.4) * 6 + Math.sin((x + y) * 0.2) * 4;
    }
  }
}

function computeNormals() {
  var x, y;
  for (y = 0; y < H; y++) {
    for (x = 0; x < W; x++) {
      var xl = x > 0 ? height[y * W + x - 1] : height[y * W + x];
      var xr = x < W - 1 ? height[y * W + x + 1] : height[y * W + x];
      var yu = y > 0 ? height[(y - 1) * W + x] : height[y * W + x];
      var yd = y < H - 1 ? height[(y + 1) * W + x] : height[y * W + x];
      var nx = xl - xr;
      var ny = yu - yd;
      var nz = 2;
      var len = Math.sqrt(nx * nx + ny * ny + nz * nz);
      var o = (y * W + x) * 3;
      normals[o] = nx / len;
      normals[o + 1] = ny / len;
      normals[o + 2] = nz / len;
    }
  }
}

function shade(lightX, lightY) {
  var x, y;
  for (y = 0; y < H; y++) {
    for (x = 0; x < W; x++) {
      var lx = lightX - x;
      var ly = lightY - y;
      var lz = 12;
      var ll = Math.sqrt(lx * lx + ly * ly + lz * lz);
      var o = (y * W + x) * 3;
      var d = (normals[o] * lx + normals[o + 1] * ly + normals[o + 2] * lz) / ll;
      var v = Math.max(0, d) * 255;
      var po = (y * W + x) * 4;
      out.data[po] = v * 0.9;
      out.data[po + 1] = v * 0.8;
      out.data[po + 2] = v;
      out.data[po + 3] = 255;
    }
  }
  ctx.putImageData(out, 0, 0);
}

var frame = 0;
function animate() {
  shade(W / 2 + Math.cos(frame * 0.7) * 8, H / 2 + Math.sin(frame * 0.7) * 6);
  frame++;
  if (frame < 3) {
    requestAnimationFrame(animate);
  } else {
    console.log("normalmap: frames =", frame);
  }
}

makeHeightMap();
computeNormals();
requestAnimationFrame(animate);
