// MyScript — handwriting recognition front end (Table 1: User recognition).
// Mirrors webdemo.visionobjects.com's client side: ink points accumulate on
// pointer moves; on stroke end the client computes segment lengths and a
// resampled polyline before shipping the stroke to the recognizer (a
// server, in the real app — here a stub). The paper: "the only client-side
// expensive loop executes only a few iterations, computing the length of
// line segments" — trips 4±2, DOM yes, very hard.
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var pad = document.getElementById("ink-pad");
var strokes = [];
var current = [];
var recognized = 0;

pad.addEventListener("pointermove", function (e) {
  current.push({ x: e.x, y: e.y });
});

var inkState = { dirX: 0, dirY: 0, curvature: 0 };
function segmentLengths(points) {
  var lengths = [];
  var i;
  for (i = 1; i < points.length; i++) {
    var dx = points[i].x - points[i - 1].x;
    var dy = points[i].y - points[i - 1].y;
    var len = Math.sqrt(dx * dx + dy * dy);
    lengths.push(len);
    // Running stroke direction and curvature: each segment's smoothed
    // value reads the previous segment's — the sequential chain that
    // makes this loop very hard to parallelize.
    inkState.dirX = (inkState.dirX * 0.7 + dx * 0.3) / (len + 0.001);
    inkState.dirY = (inkState.dirY * 0.7 + dy * 0.3) / (len + 0.001);
    inkState.curvature = (inkState.curvature * 0.5 + Math.abs(dx * inkState.dirY - dy * inkState.dirX)) / 2;
    // The UI live-updates a progress indicator per segment.
    pad.textContent = "segments: " + lengths.length;
  }
  return lengths;
}

function sendToRecognizer(stroke, lengths) {
  // Network stub: the real work happens server-side.
  var total = 0;
  var i;
  for (i = 0; i < lengths.length; i++) {
    total += lengths[i];
  }
  recognized++;
  return total;
}

pad.addEventListener("pointerup", function (e) {
  if (current.length < 2) {
    current = [];
    return;
  }
  var lengths = segmentLengths(current);
  var total = sendToRecognizer(current, lengths);
  strokes.push({ points: current, total: total });
  current = [];
});

window.addEventListener("report", function (e) {
  console.log("myscript: strokes =", strokes.length, "recognized =", recognized);
});
