// fluidSim — Navier-Stokes fluid dynamics (Table 1: Games).
// Mirrors nerget.com/fluidSim (Jos Stam's "Real-Time Fluid Dynamics for
// Games"): density/velocity fields on an (N+2)² grid, with diffuse /
// advect / project passes. The linear solver uses Jacobi iterations with
// double buffering, so every grid write is disjoint per cell — the paper's
// "none / no / easy / easy" row, with very many small loop instances.
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var N = 10 * S;
var size = (N + 2) * (N + 2);
var u = new Float32Array(size);
var v = new Float32Array(size);
var uPrev = new Float32Array(size);
var vPrev = new Float32Array(size);
var dens = new Float32Array(size);
var densPrev = new Float32Array(size);
var frame = 0;

function IX(i, j) {
  return i + (N + 2) * j;
}

function addSource(x, s, dt) {
  var i;
  for (i = 0; i < size; i++) {
    x[i] += dt * s[i];
  }
}

function setBnd(b, x) {
  var i;
  for (i = 1; i <= N; i++) {
    x[IX(0, i)] = b === 1 ? -x[IX(1, i)] : x[IX(1, i)];
    x[IX(N + 1, i)] = b === 1 ? -x[IX(N, i)] : x[IX(N, i)];
    x[IX(i, 0)] = b === 2 ? -x[IX(i, 1)] : x[IX(i, 1)];
    x[IX(i, N + 1)] = b === 2 ? -x[IX(i, N)] : x[IX(i, N)];
  }
  x[IX(0, 0)] = 0.5 * (x[IX(1, 0)] + x[IX(0, 1)]);
  x[IX(0, N + 1)] = 0.5 * (x[IX(1, N + 1)] + x[IX(0, N)]);
  x[IX(N + 1, 0)] = 0.5 * (x[IX(N, 0)] + x[IX(N + 1, 1)]);
  x[IX(N + 1, N + 1)] = 0.5 * (x[IX(N, N + 1)] + x[IX(N + 1, N)]);
}

// Jacobi linear solve: reads `x0`/`prev`, writes `x` — disjoint writes.
var scratch = new Float32Array(size);
function linSolve(b, x, x0, a, c) {
  var k, i, j;
  for (k = 0; k < 8; k++) {
    for (i = 0; i < size; i++) {
      scratch[i] = x[i];
    }
    for (j = 1; j <= N; j++) {
      for (i = 1; i <= N; i++) {
        x[IX(i, j)] =
          (x0[IX(i, j)] +
            a *
              (scratch[IX(i - 1, j)] +
                scratch[IX(i + 1, j)] +
                scratch[IX(i, j - 1)] +
                scratch[IX(i, j + 1)])) /
          c;
      }
    }
    setBnd(b, x);
  }
}

function diffuse(b, x, x0, diff, dt) {
  var a = dt * diff * N * N;
  linSolve(b, x, x0, a, 1 + 4 * a);
}

function advect(b, d, d0, uu, vv, dt) {
  var i, j;
  var dt0 = dt * N;
  for (j = 1; j <= N; j++) {
    for (i = 1; i <= N; i++) {
      var x = i - dt0 * uu[IX(i, j)];
      var y = j - dt0 * vv[IX(i, j)];
      if (x < 0.5) { x = 0.5; }
      if (x > N + 0.5) { x = N + 0.5; }
      if (y < 0.5) { y = 0.5; }
      if (y > N + 0.5) { y = N + 0.5; }
      var i0 = Math.floor(x);
      var i1 = i0 + 1;
      var j0 = Math.floor(y);
      var j1 = j0 + 1;
      var s1 = x - i0;
      var s0 = 1 - s1;
      var t1 = y - j0;
      var t0 = 1 - t1;
      d[IX(i, j)] =
        s0 * (t0 * d0[IX(i0, j0)] + t1 * d0[IX(i0, j1)]) +
        s1 * (t0 * d0[IX(i1, j0)] + t1 * d0[IX(i1, j1)]);
    }
  }
  setBnd(b, d);
}

function project(uu, vv, p, div) {
  var i, j;
  for (j = 1; j <= N; j++) {
    for (i = 1; i <= N; i++) {
      div[IX(i, j)] = -0.5 * (uu[IX(i + 1, j)] - uu[IX(i - 1, j)] + vv[IX(i, j + 1)] - vv[IX(i, j - 1)]) / N;
      p[IX(i, j)] = 0;
    }
  }
  setBnd(0, div);
  setBnd(0, p);
  linSolve(0, p, div, 1, 4);
  for (j = 1; j <= N; j++) {
    for (i = 1; i <= N; i++) {
      uu[IX(i, j)] -= 0.5 * N * (p[IX(i + 1, j)] - p[IX(i - 1, j)]);
      vv[IX(i, j)] -= 0.5 * N * (p[IX(i, j + 1)] - p[IX(i, j - 1)]);
    }
  }
  setBnd(1, uu);
  setBnd(2, vv);
}

function velStep(dt) {
  addSource(u, uPrev, dt);
  addSource(v, vPrev, dt);
  diffuse(1, uPrev, u, 0.0001, dt);
  diffuse(2, vPrev, v, 0.0001, dt);
  project(uPrev, vPrev, u, v);
  advect(1, u, uPrev, uPrev, vPrev, dt);
  advect(2, v, vPrev, uPrev, vPrev, dt);
  project(u, v, uPrev, vPrev);
}

function densStep(dt) {
  addSource(dens, densPrev, dt);
  diffuse(0, densPrev, dens, 0.0001, dt);
  advect(0, dens, densPrev, u, v, dt);
}

function stir() {
  uPrev[IX(3, 3)] = 12;
  vPrev[IX(3, 3)] = -8;
  densPrev[IX(5, 5)] = 40;
}

function step() {
  stir();
  velStep(0.1);
  densStep(0.1);
  frame++;
  if (frame < 4) {
    requestAnimationFrame(step);
  } else {
    var total = 0;
    var i;
    for (i = 0; i < size; i++) {
      total += dens[i];
    }
    console.log("fluid: frames =", frame, "mass =", total.toFixed(2));
  }
}

requestAnimationFrame(step);
