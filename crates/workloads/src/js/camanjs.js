// CamanJS — image manipulation library (Table 1: Audio and Video).
// Mirrors camanjs.com's architecture: a Caman object wraps a canvas, pulls
// the pixel buffer once with getImageData, queues per-pixel filters
// (brightness, contrast, saturation) plus a convolution kernel, then
// renders back with putImageData. The per-pixel loops are the paper's
// "easy / easy" rows: disjoint writes to data[i].
var S = (typeof SCALE === "undefined") ? 1 : SCALE;

function Caman(id) {
  this.canvas = document.getElementById(id);
  this.ctx = this.canvas.getContext("2d");
  this.width = 24 * S;
  this.height = 18 * S;
  this.image = this.ctx.getImageData(0, 0, this.width, this.height);
  this.queue = [];
}

Caman.prototype.process = function (name, fn) {
  this.queue.push({ name: name, fn: fn });
  return this;
};

Caman.prototype.brightness = function (adjust) {
  return this.process("brightness", function (r, g, b) {
    return [r + adjust, g + adjust, b + adjust];
  });
};

Caman.prototype.contrast = function (adjust) {
  var factor = (adjust + 100) / 100;
  var f2 = factor * factor;
  return this.process("contrast", function (r, g, b) {
    return [
      (r / 255 - 0.5) * f2 * 255 + 127.5,
      (g / 255 - 0.5) * f2 * 255 + 127.5,
      (b / 255 - 0.5) * f2 * 255 + 127.5
    ];
  });
};

Caman.prototype.saturation = function (adjust) {
  var mul = adjust * -0.01;
  return this.process("saturation", function (r, g, b) {
    var max = Math.max(r, g, b);
    return [
      r + (max - r) * mul,
      g + (max - g) * mul,
      b + (max - b) * mul
    ];
  });
};

function clamp(v) {
  return v < 0 ? 0 : (v > 255 ? 255 : v);
}

// The dominant per-pixel nest (the paper's 72% row).
Caman.prototype.renderQueue = function () {
  var data = this.image.data;
  var q, i;
  for (q = 0; q < this.queue.length; q++) {
    var fn = this.queue[q].fn;
    for (i = 0; i < data.length; i += 4) {
      var out = fn(data[i], data[i + 1], data[i + 2]);
      data[i] = clamp(out[0]);
      data[i + 1] = clamp(out[1]);
      data[i + 2] = clamp(out[2]);
    }
  }
  this.queue = [];
};

// 3x3 box-blur convolution (the paper's second nest).
Caman.prototype.convolve = function () {
  var w = this.width;
  var h = this.height;
  var src = this.image.data;
  var dst = new Float32Array(src.length);
  var x, y, c;
  for (y = 1; y < h - 1; y++) {
    for (x = 1; x < w - 1; x++) {
      for (c = 0; c < 3; c++) {
        var acc = 0;
        var ky, kx;
        for (ky = -1; ky <= 1; ky++) {
          for (kx = -1; kx <= 1; kx++) {
            acc += src[((y + ky) * w + (x + kx)) * 4 + c];
          }
        }
        dst[(y * w + x) * 4 + c] = acc / 9;
      }
      dst[(y * w + x) * 4 + 3] = 255;
    }
  }
  for (x = 0; x < dst.length; x++) {
    src[x] = clamp(dst[x]);
  }
};

Caman.prototype.render = function () {
  this.renderQueue();
  this.ctx.putImageData(this.image, 0, 0);
};

var caman = new Caman("caman-canvas");
var passes = 0;

function applyFilters() {
  caman.brightness(10).contrast(8).saturation(-20);
  caman.renderQueue();
  caman.convolve();
  caman.render();
  passes++;
  console.log("caman: pass", passes, "done");
}

window.addEventListener("filters", applyFilters);
