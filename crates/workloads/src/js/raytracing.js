// Realtime Raytracing — gist.github.com/jwagner/422755 (Table 1: Games).
// A sphere-scene raytracer rendering into an ImageData buffer: per-pixel
// primary rays with recursive reflections ("variable depth recursion" —
// divergence yes), but every pixel writes its own slot — dependence
// breaking "very easy", parallelization "easy", 98% of time in the loop.
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var W = 16 * S;
var H = 12 * S;
var canvas = document.getElementById("rt-canvas");
var ctx = canvas.getContext("2d");
var img = ctx.createImageData(W, H);

var spheres = [
  { cx: 0, cy: 0, cz: 6, r: 2, cr: 255, cg: 60, cb: 60, refl: 0.4 },
  { cx: 2.5, cy: 1, cz: 8, r: 1.5, cr: 60, cg: 255, cb: 60, refl: 0.3 },
  { cx: -2.5, cy: -1, cz: 7, r: 1, cr: 60, cg: 60, cb: 255, refl: 0.6 }
];
var light = { x: -5, y: 5, z: 0 };

function intersect(ox, oy, oz, dx, dy, dz) {
  var best = null;
  var bestT = 1e9;
  var i;
  for (i = 0; i < spheres.length; i++) {
    var s = spheres[i];
    var lx = s.cx - ox;
    var ly = s.cy - oy;
    var lz = s.cz - oz;
    var tca = lx * dx + ly * dy + lz * dz;
    if (tca < 0) {
      continue;
    }
    var d2 = lx * lx + ly * ly + lz * lz - tca * tca;
    if (d2 > s.r * s.r) {
      continue;
    }
    var thc = Math.sqrt(s.r * s.r - d2);
    var t = tca - thc;
    if (t > 0.001 && t < bestT) {
      bestT = t;
      best = s;
    }
  }
  if (best === null) {
    return null;
  }
  return { t: bestT, sphere: best };
}

function trace(ox, oy, oz, dx, dy, dz, depth) {
  var hit = intersect(ox, oy, oz, dx, dy, dz);
  if (hit === null) {
    var sky = 40 + 30 * (dy + 1);
    return [sky, sky, 90 + 40 * (dy + 1)];
  }
  var s = hit.sphere;
  var px = ox + dx * hit.t;
  var py = oy + dy * hit.t;
  var pz = oz + dz * hit.t;
  var nx = (px - s.cx) / s.r;
  var ny = (py - s.cy) / s.r;
  var nz = (pz - s.cz) / s.r;
  var lx = light.x - px;
  var ly = light.y - py;
  var lz = light.z - pz;
  var ll = Math.sqrt(lx * lx + ly * ly + lz * lz);
  lx /= ll;
  ly /= ll;
  lz /= ll;
  var diff = Math.max(0, nx * lx + ny * ly + nz * lz);
  var shadow = intersect(px, py, pz, lx, ly, lz);
  if (shadow !== null) {
    diff *= 0.2;
  }
  var color = [s.cr * (0.15 + 0.85 * diff), s.cg * (0.15 + 0.85 * diff), s.cb * (0.15 + 0.85 * diff)];
  if (depth < 3 && s.refl > 0) {
    var dot = dx * nx + dy * ny + dz * nz;
    var rx = dx - 2 * dot * nx;
    var ry = dy - 2 * dot * ny;
    var rz = dz - 2 * dot * nz;
    var refl = trace(px, py, pz, rx, ry, rz, depth + 1);
    color[0] = color[0] * (1 - s.refl) + refl[0] * s.refl;
    color[1] = color[1] * (1 - s.refl) + refl[1] * s.refl;
    color[2] = color[2] * (1 - s.refl) + refl[2] * s.refl;
  }
  return color;
}

var frame = 0;
function render() {
  var x, y;
  for (y = 0; y < H; y++) {
    for (x = 0; x < W; x++) {
      var dx = (x - W / 2) / W;
      var dy = (H / 2 - y) / H;
      var dz = 1;
      var len = Math.sqrt(dx * dx + dy * dy + 1);
      var c = trace(0, 0, frame * 0.1, dx / len, dy / len, dz / len, 0);
      var o = (y * W + x) * 4;
      img.data[o] = Math.min(255, c[0]);
      img.data[o + 1] = Math.min(255, c[1]);
      img.data[o + 2] = Math.min(255, c[2]);
      img.data[o + 3] = 255;
    }
  }
  ctx.putImageData(img, 0, 0);
  frame++;
  if (frame < 4) {
    requestAnimationFrame(render);
  } else {
    console.log("raytracing: frames =", frame);
  }
}

requestAnimationFrame(render);
