// processing.js — interactive spiral visual effect (Table 1: Visualization).
// Mirrors processingjs.org's exhibition sketches: a particle system on a
// spiral; per frame, several short loops update angle/radius/trail state
// (instances very high, trips ~4, "easy/medium") and one loop renders via
// canvas + a DOM counter ("medium/very hard" — the paper's third row).
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var PARTICLES = 24 * S;
var TRAIL = 4;
var canvas = document.getElementById("spiral-canvas");
var ctx = canvas.getContext("2d");
var hud = document.getElementById("hud");

var particles = [];

// Per-frame sketch setup: processing.js recomputes the transform matrix,
// stroke state, and color model before touching any particle. This is
// straight-line math (no loops) — the reason the paper's Table 2 shows
// processing.js CPU-active far more than loop-time.
var matrix = { a: 1, b: 0, c: 0, d: 1, e: 0, f: 0 };
function computeFrameTransform(t) {
  var angle = t * 0.02;
  var sa = Math.sin(angle);
  var ca = Math.cos(angle);
  var zoom = 1 + 0.1 * Math.sin(t * 0.01);
  matrix.a = ca * zoom;
  matrix.b = sa * zoom;
  matrix.c = -sa * zoom;
  matrix.d = ca * zoom;
  matrix.e = 45 - 45 * ca * zoom + 35 * sa * zoom;
  matrix.f = 35 - 45 * sa * zoom - 35 * ca * zoom;
  var h = (t * 3.7) % 360;
  var sat = 0.6 + 0.4 * Math.cos(t * 0.05);
  var lum = 0.5 + 0.1 * Math.sin(t * 0.03);
  var c1 = lum + sat * Math.cos(h * 0.0174);
  var c2 = lum + sat * Math.cos((h - 120) * 0.0174);
  var c3 = lum + sat * Math.cos((h + 120) * 0.0174);
  var gamma1 = Math.pow(Math.max(0, c1), 2.2);
  var gamma2 = Math.pow(Math.max(0, c2), 2.2);
  var gamma3 = Math.pow(Math.max(0, c3), 2.2);
  var norm = Math.sqrt(gamma1 * gamma1 + gamma2 * gamma2 + gamma3 * gamma3 + 0.001);
  var easing = 1 - Math.exp(-t * 0.1);
  var wobble1 = Math.atan2(sa * easing, ca + 0.001);
  var wobble2 = Math.atan2(ca * easing, sa + 0.001);
  var blend = (wobble1 * 0.3 + wobble2 * 0.7) * norm;
  return Math.abs(blend) + gamma1 / norm + gamma2 / norm + gamma3 / norm;
}

function setup() {
  var i;
  for (i = 0; i < PARTICLES; i++) {
    particles.push({
      angle: i * 0.3,
      radius: 2 + (i % 9),
      speed: 0.05 + (i % 5) * 0.01,
      trail: [],
      x: 0,
      y: 0
    });
  }
}

// Update pass: one short loop per particle per frame (very many
// instances, ~TRAIL trips each, like the paper's 54.6k × 4±37 rows).
function updateParticle(p) {
  p.angle += p.speed;
  p.radius += 0.08;
  if (p.radius > 34) {
    p.radius = 2;
  }
  p.x = 45 + Math.cos(p.angle) * p.radius;
  p.y = 35 + Math.sin(p.angle) * p.radius;
  p.trail.push({ x: p.x, y: p.y });
  if (p.trail.length > TRAIL) {
    p.trail.shift();
  }
  var i;
  var glow = 0;
  for (i = 0; i < p.trail.length; i++) {
    glow += p.trail[i].x * 0.01;
  }
  return glow;
}

function trailCentroid(p) {
  var cx = 0;
  var cy = 0;
  var i;
  for (i = 0; i < p.trail.length; i++) {
    cx += p.trail[i].x;
    cy += p.trail[i].y;
  }
  p.cx = cx / (p.trail.length + 0.0001);
  p.cy = cy / (p.trail.length + 0.0001);
}

function drawParticle(p) {
  var i;
  ctx.beginPath();
  for (i = 1; i < p.trail.length; i++) {
    ctx.moveTo(p.trail[i - 1].x, p.trail[i - 1].y);
    ctx.lineTo(p.trail[i].x, p.trail[i].y);
  }
  ctx.stroke();
  if (p.radius < 3) {
    hud.textContent = "respawn";
  }
}

var frame = 0;
var frameEnergy = 0;
function drawFrame() {
  var i;
  // Straight-line per-frame setup dominates (see computeFrameTransform):
  // call it repeatedly as processing.js does for each style push/pop.
  frameEnergy += computeFrameTransform(frame);
  frameEnergy += computeFrameTransform(frame + 0.125);
  frameEnergy += computeFrameTransform(frame + 0.25);
  frameEnergy += computeFrameTransform(frame + 0.375);
  frameEnergy += computeFrameTransform(frame + 0.5);
  frameEnergy += computeFrameTransform(frame + 0.625);
  frameEnergy += computeFrameTransform(frame + 0.75);
  frameEnergy += computeFrameTransform(frame + 0.875);
  frameEnergy += computeFrameTransform(frame + 0.9375);
  frameEnergy += computeFrameTransform(frame + 0.96875);
  ctx.clearRect(0, 0, 90, 70);
  for (i = 0; i < particles.length; i++) {
    updateParticle(particles[i]);
  }
  for (i = 0; i < particles.length; i++) {
    trailCentroid(particles[i]);
  }
  for (i = 0; i < particles.length; i++) {
    drawParticle(particles[i]);
  }
  frame++;
  if (frame < 20) {
    requestAnimationFrame(drawFrame);
  } else {
    console.log("processing: frames =", frame, "particles =", particles.length);
  }
}

setup();
requestAnimationFrame(drawFrame);
