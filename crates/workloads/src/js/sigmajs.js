// sigma.js — GEXF graph rendering (Table 1: Visualization).
// Mirrors sigmajs.org: parse a graph, run a force-directed layout step per
// frame (nodes read and write each other's positions — flow dependencies,
// "very hard"), then draw nodes and edges, updating DOM labels. Two nests
// dominate, both touching the DOM, as in the paper's rows (68% / 22%).
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var NODES = 24 * S;
var canvas = document.getElementById("sigma-canvas");
var ctx = canvas.getContext("2d");
var labelEl = document.getElementById("sigma-label");

var nodes = [];
var edges = [];
var layoutState = { energy: 0 };

function parseGexf() {
  // Stand-in for GEXF parsing: deterministic graph generation.
  var i;
  for (i = 0; i < NODES; i++) {
    nodes.push({
      id: i,
      x: Math.cos(i * 0.7) * 30 + 40,
      y: Math.sin(i * 0.7) * 25 + 35,
      heat: 0,
      degree: 0
    });
  }
  for (i = 0; i < NODES; i++) {
    var a = i;
    var b = (i * 7 + 3) % NODES;
    if (a !== b) {
      edges.push({ source: a, target: b });
      nodes[a].degree++;
      nodes[b].degree++;
    }
  }
}

// Force Atlas-ish layout step with in-place (Gauss-Seidel) position
// updates: each node reads the positions its predecessors just wrote and
// immediately moves itself — the cross-iteration flow dependencies that
// make the paper call this nest "very hard". The hub label is refreshed in
// the same loop (the DOM access of Table 3).
function layoutStep() {
  var i, j;
  for (i = 0; i < nodes.length; i++) {
    var n = nodes[i];
    var fx = 0;
    var fy = 0;
    for (j = 0; j < nodes.length; j++) {
      if (i === j) {
        continue;
      }
      var o = nodes[j];
      var dx = n.x - o.x;
      var dy = n.y - o.y;
      var d2 = dx * dx + dy * dy + 0.01;
      fx += dx / d2 * 8;
      fy += dy / d2 * 8;
    }
    n.x = n.x + Math.max(-2, Math.min(2, fx));
    n.y = n.y + Math.max(-2, Math.min(2, fy));
    n.heat = (n.heat + Math.abs(fx) + Math.abs(fy)) / 2;
    // Global annealing energy: read-modify-write every node — a third
    // sequential chain through the layout loop.
    layoutState.energy = (layoutState.energy * 0.95 + fx * fx + fy * fy) / (1 + n.heat * 0.01);
    if (n.heat > 0.4 && n.degree >= 2) {
      labelEl.textContent = "hub " + n.id;
    }
  }
  for (i = 0; i < edges.length; i++) {
    var e = edges[i];
    var a = nodes[e.source];
    var b = nodes[e.target];
    var ax = (b.x - a.x) * 0.02;
    var ay = (b.y - a.y) * 0.02;
    a.x = a.x + ax;
    a.y = a.y + ay;
    b.x = b.x - ax;
    b.y = b.y - ay;
  }
}

// Draw pass: canvas + DOM label updates per node (the second nest).
function draw() {
  ctx.clearRect(0, 0, 90, 70);
  var i;
  ctx.beginPath();
  for (i = 0; i < edges.length; i++) {
    var e = edges[i];
    ctx.moveTo(nodes[e.source].x, nodes[e.source].y);
    ctx.lineTo(nodes[e.target].x, nodes[e.target].y);
  }
  ctx.stroke();
  for (i = 0; i < nodes.length; i++) {
    var n = nodes[i];
    ctx.fillRect(n.x - 1, n.y - 1, 2, 2);
  }
}

var frame = 0;
function tick() {
  layoutStep();
  draw();
  frame++;
  if (frame < 6) {
    requestAnimationFrame(tick);
  } else {
    console.log("sigma: frames =", frame, "nodes =", nodes.length, "edges =", edges.length);
  }
}

parseGexf();
requestAnimationFrame(tick);
