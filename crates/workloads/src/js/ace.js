// Ace — code editor used by the Cloud9 IDE (Table 1: Productivity).
// Mirrors ace.c9.io's renderer: keystrokes invalidate lines; the renderer
// loop re-renders until no cascading changes remain (the paper: "the first
// loop executes a rendering method until there are no more cascading
// changes" and "the loops only execute roughly one iteration on average").
// Renders into DOM rows — "yes (DOM) / very hard" in Table 3.
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var editorEl = document.getElementById("editor");
var lines = [];
var lineEls = [];
var dirty = [];
var offsets = [];
var tokenState = { inComment: false };
var rendersDone = 0;

function init() {
  var i;
  for (i = 0; i < 24; i++) {
    lines.push("function line" + i + "() { return " + i + "; }");
    var el = document.createElement("div");
    editorEl.appendChild(el);
    lineEls.push(el);
    dirty.push(true);
    offsets.push(0);
  }
}

function tokenizeLine(text) {
  // Tiny highlighter: split into words, wrap keywords.
  var words = text.split(" ");
  var out = "";
  var i;
  for (i = 0; i < words.length; i++) {
    var w = words[i];
    if (w === "function" || w === "return" || w === "var") {
      out += "<b>" + w + "</b> ";
    } else {
      out += w + " ";
    }
  }
  return out;
}

// The cascading-render loop: render dirty lines; rendering a line may
// invalidate the next one (bracket matching), so loop until stable.
function renderLoop() {
  var changed = true;
  while (changed) {
    changed = false;
    var i;
    for (i = 0; i < lines.length; i++) {
      if (dirty[i]) {
        // Tokenizer line state: whether a block comment is open flows from
        // each line into the next (the classic editor-tokenizer chain).
        tokenState.inComment = lines[i].indexOf("/*") >= 0 ? true : (lines[i].indexOf("*/") >= 0 ? false : tokenState.inComment);
        lineEls[i].innerHTML = tokenState.inComment ? lines[i] : tokenizeLine(lines[i]);
        dirty[i] = false;
        // Layout: each line's offset depends on the line above (wrapped
        // lines are taller), and rendering may cascade invalidation.
        var lineHeight = 12 + (lines[i].length > 40 ? 12 : 0);
        offsets[i] = (i === 0 ? 0 : offsets[i - 1]) + lineHeight;
        lineEls[i].style.top = offsets[i];
        if (lines[i].indexOf("{") >= 0 && i + 1 < lines.length && rendersDone % 7 === 0) {
          dirty[i + 1] = true;
          changed = true;
        }
        rendersDone++;
      }
    }
  }
}

function onKey(line, ch) {
  lines[line] = lines[line] + ch;
  dirty[line] = true;
  renderLoop();
}

init();
renderLoop();

window.addEventListener("keydown", function (e) {
  onKey(Math.floor(e.line), "x");
});

window.addEventListener("report", function (e) {
  console.log("ace: renders =", rendersDone);
});
