// D3.js — interactive azimuthal projection map (Table 1: Visualization).
// Mirrors d3js.org's geo examples: world features (polylines of lon/lat
// points) are projected with an azimuthal equidistant projection and
// re-rendered into DOM path elements on every drag. One nest dominates
// (99%), trips = number of features (~156±57 in the paper), projection
// accumulates per-path state and writes the DOM — "hard / hard".
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var FEATURES = 32 * S;
var svg = document.getElementById("map-svg");
var features = [];
var pathEls = [];
var rotation = { lambda: 0, phi: 0 };
var rendered = 0;

function makeWorld() {
  var f, p;
  for (f = 0; f < FEATURES; f++) {
    var n = 4 + (f * 13) % 20;
    var pts = [];
    for (p = 0; p < n; p++) {
      pts.push({
        lon: ((f * 37 + p * 11) % 360) - 180,
        lat: ((f * 17 + p * 7) % 160) - 80
      });
    }
    features.push({ id: f, points: pts });
    var el = document.createElement("path");
    svg.appendChild(el);
    pathEls.push(el);
  }
}

function project(lon, lat) {
  // Azimuthal equidistant projection with the current rotation.
  var rad = Math.PI / 180;
  var l = (lon + rotation.lambda) * rad;
  var phi = (lat + rotation.phi) * rad;
  var cosc = Math.sin(0) * Math.sin(phi) + Math.cos(0) * Math.cos(phi) * Math.cos(l);
  var c = Math.acos(Math.max(-1, Math.min(1, cosc)));
  var k = c === 0 ? 1 : c / Math.sin(c);
  return {
    x: 50 + 28 * k * Math.cos(phi) * Math.sin(l) / Math.PI,
    y: 40 - 28 * k * (Math.cos(0) * Math.sin(phi) - Math.sin(0) * Math.cos(phi) * Math.cos(l)) / Math.PI
  };
}

// The dominant nest: over features, over points; builds a path string
// incrementally (the accumulation that makes deps "hard") and writes it
// into the DOM.
var bounds = { minX: 1e9, minY: 1e9 };
function render() {
  var f, p;
  bounds.minX = 1e9;
  bounds.minY = 1e9;
  for (f = 0; f < features.length; f++) {
    var d = "";
    var prev = null;
    for (p = 0; p < features[f].points.length; p++) {
      var pt = features[f].points[p];
      var xy = project(pt.lon, pt.lat);
      if (prev === null) {
        d = d + "M" + xy.x.toFixed(1) + "," + xy.y.toFixed(1);
      } else {
        d = d + "L" + xy.x.toFixed(1) + "," + xy.y.toFixed(1);
      }
      prev = xy;
      // Viewport fitting: running min/max over everything projected so
      // far — a cross-feature sequential accumulation.
      bounds.minX = xy.x < bounds.minX ? xy.x : bounds.minX;
      bounds.minY = xy.y < bounds.minY ? xy.y : bounds.minY;
    }
    pathEls[f].setAttribute("d", d);
    rendered++;
  }
  svg.setAttribute("viewBox", bounds.minX.toFixed(0) + " " + bounds.minY.toFixed(0));
}

makeWorld();
render();

window.addEventListener("drag", function (e) {
  rotation.lambda += e.dx;
  rotation.phi += e.dy;
  render();
});

window.addEventListener("report", function (e) {
  console.log("d3: features =", features.length, "paths rendered =", rendered);
});
