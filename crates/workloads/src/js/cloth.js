// Tear-able Cloth — Verlet-integration cloth physics (Table 1: Games).
// Mirrors lonely-pixel.com/lab/cloth: a grid of points connected by
// constraints; each frame integrates the points, then resolves constraints
// several times, then draws the links to a canvas. Constraint resolution
// writes both endpoints of every link — the "medium" dependence-breaking
// difficulty of the paper's Table 3 row.
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var COLS = 12 * S;
var ROWS = 8 * S;
var SPACING = 6;
var GRAVITY = 0.35;
var ITERATIONS = 3;
var TEAR_DISTANCE = 28;

var points = [];
var links = [];
var frame = 0;

function makeCloth() {
  var x, y;
  for (y = 0; y <= ROWS; y++) {
    for (x = 0; x <= COLS; x++) {
      points.push({
        x: x * SPACING + 20,
        y: y * SPACING + 5,
        px: x * SPACING + 20,
        py: y * SPACING + 5,
        pinned: y === 0 && x % 3 === 0
      });
    }
  }
  for (y = 0; y <= ROWS; y++) {
    for (x = 0; x <= COLS; x++) {
      var i = y * (COLS + 1) + x;
      if (x < COLS) {
        links.push({ a: i, b: i + 1, rest: SPACING, torn: false });
      }
      if (y < ROWS) {
        links.push({ a: i, b: i + (COLS + 1), rest: SPACING, torn: false });
      }
    }
  }
}

function integrate() {
  var i;
  for (i = 0; i < points.length; i++) {
    var p = points[i];
    if (p.pinned) {
      continue;
    }
    var vx = (p.x - p.px) * 0.99;
    var vy = (p.y - p.py) * 0.99;
    p.px = p.x;
    p.py = p.y;
    p.x += vx;
    p.y += vy + GRAVITY;
  }
}

function satisfy() {
  var it, i;
  for (it = 0; it < ITERATIONS; it++) {
    for (i = 0; i < links.length; i++) {
      var l = links[i];
      if (l.torn) {
        continue;
      }
      var a = points[l.a];
      var b = points[l.b];
      var dx = b.x - a.x;
      var dy = b.y - a.y;
      var dist = Math.sqrt(dx * dx + dy * dy);
      if (dist > TEAR_DISTANCE) {
        l.torn = true;
        continue;
      }
      var diff = (l.rest - dist) / (dist + 0.0001) * 0.5;
      var ox = dx * diff;
      var oy = dy * diff;
      if (!a.pinned) {
        a.x -= ox;
        a.y -= oy;
      }
      if (!b.pinned) {
        b.x += ox;
        b.y += oy;
      }
    }
  }
}

var canvas = document.getElementById("cloth-canvas");
var ctx = canvas.getContext("2d");

function draw() {
  var i;
  ctx.clearRect(0, 0, 120, 80);
  ctx.beginPath();
  for (i = 0; i < links.length; i++) {
    var l = links[i];
    if (l.torn) {
      continue;
    }
    ctx.moveTo(points[l.a].x, points[l.a].y);
    ctx.lineTo(points[l.b].x, points[l.b].y);
  }
  ctx.stroke();
}

function step() {
  integrate();
  satisfy();
  draw();
  frame++;
  if (frame < 18) {
    requestAnimationFrame(step);
  } else {
    console.log("cloth: frames =", frame, "torn =", links.filter(function (l) { return l.torn; }).length);
  }
}

makeCloth();
requestAnimationFrame(step);
