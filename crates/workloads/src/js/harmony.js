// Harmony — procedural drawing application (Table 1: Audio and Video).
// Mirrors mrdoob.com/projects/harmony: each pointer-move event sweeps the
// recent stroke points and draws connecting "web" lines to the canvas when
// points are near each other. The loops touch the canvas every iteration —
// the paper's "easy (deps) / very hard (parallelization)" rows, and the app
// is idle between strokes (tiny Active/In-Loops share in Table 2).
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var canvas = document.getElementById("harmony-canvas");
var ctx = canvas.getContext("2d");
ctx.strokeStyle = "#202020";

var strokePoints = [];
var segmentsDrawn = 0;
var BRUSH_RADIUS = 40;

function sketchTo(x, y) {
  strokePoints.push({ x: x, y: y });
  var i;
  // Connect the new point to every previous point within the brush radius
  // (the ribbon/web brush): each iteration may stroke to the canvas.
  ctx.beginPath();
  ctx.moveTo(x, y);
  for (i = 0; i < strokePoints.length - 1; i++) {
    var p = strokePoints[i];
    var dx = p.x - x;
    var dy = p.y - y;
    var d2 = dx * dx + dy * dy;
    if (d2 < BRUSH_RADIUS * BRUSH_RADIUS) {
      ctx.moveTo(x, y);
      ctx.lineTo(p.x + dx * 0.2, p.y + dy * 0.2);
      segmentsDrawn++;
    }
  }
  ctx.stroke();
}

// Shadow pass: fade the neighbourhood of the stroke (second canvas nest).
function fade(x, y) {
  var img = ctx.getImageData(Math.max(0, x - 1), Math.max(0, y - 1), 2, 2);
  var i;
  for (i = 3; i < img.data.length; i += 4) {
    img.data[i] = Math.max(0, img.data[i] - 16);
  }
  ctx.putImageData(img, Math.max(0, x - 1), Math.max(0, y - 1));
}

canvas.addEventListener("pointermove", function (e) {
  sketchTo(e.x, e.y);
  fade(e.x, e.y);
});

canvas.addEventListener("pointerup", function (e) {
  strokePoints = [];
  console.log("harmony: stroke finished, segments =", segmentsDrawn);
});
