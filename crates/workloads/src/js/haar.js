// HAAR.js — Viola-Jones face detection (Table 1: User recognition).
// Structure mirrors github.com/foo123/HAAR.js: integral image, then a
// multi-scale sliding-window sweep where each window runs a cascade of
// decision trees (the recursive search the paper calls out: "does, at each
// iteration, a recursive search through a tree which makes the iterations
// uneven").
var S = (typeof SCALE === "undefined") ? 1 : SCALE;
var W = 48 * S;
var H = 36 * S;
var gray = new Float32Array(W * H);
var ii = new Float32Array((W + 1) * (H + 1));
var detections = [];

function makeImage() {
  var x, y;
  for (y = 0; y < H; y++) {
    for (x = 0; x < W; x++) {
      gray[y * W + x] = (x * 7 + y * 13) % 97 + (Math.floor(x / 8) % 2) * 40;
    }
  }
}

var cascade = [];
function tree(f, thr, l, r, depth) {
  return {
    feature: f,
    threshold: thr,
    left: l,
    right: r,
    childL: depth > 0 ? tree((f + 1) % 7, thr - 5, l * 0.5, r * 0.5, depth - 1) : null,
    childR: depth > 1 ? tree((f + 3) % 7, thr + 5, l * 0.25, r * 0.25, depth - 2) : null
  };
}
function buildCascade() {
  var s, t;
  for (s = 0; s < 4; s++) {
    var stage = { thr: 0.4 * s + 0.2, trees: [] };
    for (t = 0; t < 3 + s; t++) {
      stage.trees.push(tree((s * 5 + t) % 7, 20 + 3 * t, 1 + 0.1 * t, -0.5 - 0.05 * s, (t % 3)));
    }
    cascade.push(stage);
  }
}

function integralImage() {
  var x, y;
  for (y = 1; y <= H; y++) {
    var rowSum = 0;
    for (x = 1; x <= W; x++) {
      rowSum += gray[(y - 1) * W + (x - 1)];
      ii[y * (W + 1) + x] = ii[(y - 1) * (W + 1) + x] + rowSum;
    }
  }
}

function rectSum(x, y, w, h) {
  var s = W + 1;
  return ii[(y + h) * s + (x + w)] - ii[y * s + (x + w)] - ii[(y + h) * s + x] + ii[y * s + x];
}

function featureValue(f, x, y, win) {
  var half = Math.floor(win / 2);
  if (f % 2 === 0) {
    return rectSum(x, y, win, half) - rectSum(x, y + half, win, win - half);
  }
  return rectSum(x, y, half, win) - rectSum(x + half, y, win - half, win);
}

function evalTree(node, x, y, win) {
  var v = featureValue(node.feature, x, y, win) / (win * win);
  if (v < node.threshold) {
    if (node.childL !== null) { return evalTree(node.childL, x, y, win); }
    return node.left;
  }
  if (node.childR !== null) { return evalTree(node.childR, x, y, win); }
  return node.right;
}

function detect() {
  var scale, x, y, st, t;
  for (scale = 1; scale <= 2; scale++) {
    var win = 8 * scale;
    for (y = 0; y + win < H; y += 2) {
      for (x = 0; x + win < W; x += 2) {
        var pass = true;
        for (st = 0; st < cascade.length; st++) {
          var stage = cascade[st];
          var total = 0;
          for (t = 0; t < stage.trees.length; t++) {
            total += evalTree(stage.trees[t], x, y, win);
          }
          if (total < stage.thr) {
            pass = false;
            break;
          }
        }
        if (pass) {
          detections.push({ x: x, y: y, scale: scale });
        }
      }
    }
  }
}

makeImage();
buildCascade();
integralImage();
detect();
console.log("haar: detections =", detections.length);
