//! The workload-aware request resolver for `jsceresd`.
//!
//! `ceres_core::serve` is registry-agnostic (the dependency points
//! workloads → core), so the daemon's ability to serve `{"app":"haar"}`
//! requests lives here: a [`Resolver`] that maps registry slugs to their
//! generated pages and interaction scripts, falls back to inline
//! `source`, and applies per-request fault injection. Shared by the
//! `jsceresd` binary and the integration tests so both exercise the same
//! resolution logic.

use crate::registry::{by_slug, workload_html};
use ceres_core::fleet::{AppReport, FleetPolicy, JobError, JobWork};
use ceres_core::serve::{inject_fault, source_work, AnalysisRequest, ResolvedJob, Resolver};
use ceres_core::{analyze, AnalyzeOptions, Document, WebServer};
use std::sync::Arc;

/// Build the daemon resolver: registry workloads by `app` slug, raw
/// `source` inline, optional `inject` fault on either. The canonical
/// source of a registry app is its full generated page
/// ([`workload_html`], scale baked in), so the cache key tracks exactly
/// the text the interpreter would run.
pub fn registry_resolver(policy: FleetPolicy) -> Resolver {
    Arc::new(move |req: &AnalysisRequest, opts: &AnalyzeOptions| {
        if req.app.is_some() && req.source.is_some() {
            return Err("request must name `app` or `source`, not both".to_string());
        }
        let (app, slug, source, mut work) = if let Some(slug) = &req.app {
            let w = by_slug(slug)
                .ok_or_else(|| format!("unknown app `{slug}` (see jsceres analyze-all)"))?;
            let scale = req.scale.unwrap_or(1);
            let source = workload_html(&w, scale);
            let app = w.name.to_string();
            let slug = w.slug.to_string();
            let interaction = w.interaction;
            let opts = opts.clone();
            let page = source.clone();
            let (app2, slug2) = (app.clone(), slug.clone());
            let work: JobWork = Arc::new(move |worker, _attempt| {
                let start = std::time::Instant::now();
                let mut server = WebServer::new();
                server.publish("index.html", Document::Html(page.clone()));
                let run = analyze(&server, "index.html", opts.clone(), Box::new(interaction))
                    .map_err(|c| JobError::from_control(&c))?;
                let mut report = AppReport::from_run(&app2, &slug2, opts.mode, &run);
                report.wall_ms = start.elapsed().as_secs_f64() * 1e3;
                report.worker = worker;
                Ok(report)
            });
            (app, slug, source, work)
        } else if let Some(source) = &req.source {
            let work = source_work(
                "inline".to_string(),
                "inline".to_string(),
                source.clone(),
                opts.clone(),
            );
            (
                "inline".to_string(),
                "inline".to_string(),
                source.clone(),
                work,
            )
        } else {
            return Err("request needs `app` or `source`".to_string());
        };
        let cacheable = req.inject.is_none();
        if let Some(kind) = &req.inject {
            work = inject_fault(kind, &slug, &policy, work)?;
        }
        Ok(ResolvedJob {
            app,
            slug,
            source,
            work,
            cacheable,
        })
    })
}
