//! The 12 case-study workloads (paper Table 1) and the driver that runs
//! them through the JS-CERES pipeline.
//!
//! Each [`Workload`] carries its JavaScript source (written in-repo against
//! the supported subset, implementing the same algorithm class as the
//! original app), an *interaction script* standing in for the user
//! exercising the app (Fig. 5, step 4), and the paper's published Table 3
//! expectations for shape comparison in EXPERIMENTS.md.

use ceres_core::pipeline::{analyze, AnalyzeOptions, AppRun, Document, WebServer};
use ceres_core::{Difficulty, Mode};
use ceres_dom::DomHandle;
use ceres_interp::{Interp, JsResult, TICKS_PER_MS};

/// Idle pause lengths used by interaction scripts, in virtual milliseconds.
const THINK_SHORT: u64 = 30;
const THINK_LONG: u64 = 400;

/// How the paper rated an application's dominant loop nests.
#[derive(Debug, Clone, Copy)]
pub struct PaperExpectation {
    /// Table 2: is the app compute-intensive (CPU active a large share)?
    pub compute_intensive: bool,
    /// Table 2: is a large part of the computation in loops?
    pub loop_heavy: bool,
    /// Table 3: does the dominant nest touch the DOM/Canvas?
    pub dom_in_top_nest: bool,
    /// Table 3: parallelization difficulty of the dominant nest.
    pub parallelization: Difficulty,
    /// Sec. 4.2: counted among the 5 apps with Amdahl bound > 3×?
    pub amdahl_over_3x: bool,
}

/// One case-study application.
pub struct Workload {
    /// Display name, as in Table 1.
    pub name: &'static str,
    /// Short identifier for files/CLI.
    pub slug: &'static str,
    /// Original URL (Table 1).
    pub url: &'static str,
    /// Trend category (Table 1).
    pub category: &'static str,
    /// One-line description (Table 1).
    pub description: &'static str,
    /// The JavaScript implementation.
    pub source: &'static str,
    /// User-interaction script.
    pub interaction: fn(&mut Interp, &DomHandle) -> JsResult<()>,
    /// Published ratings to compare against.
    pub expected: PaperExpectation,
}

fn idle(interp: &mut Interp, ms: u64) {
    interp.clock.advance_idle(ms * TICKS_PER_MS);
}

fn dispatch_n(
    interp: &mut Interp,
    dom: &DomHandle,
    id: &str,
    ev: &str,
    n: usize,
    props: impl Fn(usize) -> Vec<(&'static str, f64)>,
) -> JsResult<()> {
    for k in 0..n {
        let p = props(k);
        dom.dispatch(interp, id, ev, &p)?;
        // Drain timers the handler scheduled before the next user action.
        interp.run_events(1000)?;
        idle(interp, THINK_SHORT);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Interaction scripts
// ---------------------------------------------------------------------

fn interact_batch(interp: &mut Interp, _dom: &DomHandle) -> JsResult<()> {
    // Load-time compute apps: the user just looks at the result a while.
    idle(interp, THINK_LONG);
    Ok(())
}

fn interact_animation(interp: &mut Interp, _dom: &DomHandle) -> JsResult<()> {
    // Frame chain is already queued via requestAnimationFrame; let it run,
    // then linger.
    interp.run_events(10_000)?;
    idle(interp, THINK_LONG);
    Ok(())
}

fn interact_caman(interp: &mut Interp, dom: &DomHandle) -> JsResult<()> {
    for _ in 0..3 {
        dom.dispatch(interp, "window", "filters", &[])?;
        interp.run_events(1000)?;
        idle(interp, THINK_LONG);
    }
    Ok(())
}

fn interact_harmony(interp: &mut Interp, dom: &DomHandle) -> JsResult<()> {
    // Two strokes of a dozen points each, slow hand (mostly idle time).
    for stroke in 0..2 {
        dispatch_n(interp, dom, "harmony-canvas", "pointermove", 12, |k| {
            vec![
                ("x", 10.0 + 3.0 * k as f64 + 20.0 * stroke as f64),
                ("y", 12.0 + ((k * 7) % 11) as f64),
            ]
        })?;
        dom.dispatch(interp, "harmony-canvas", "pointerup", &[])?;
        idle(interp, THINK_LONG * 2);
    }
    Ok(())
}

fn interact_ace(interp: &mut Interp, dom: &DomHandle) -> JsResult<()> {
    // A typing burst: 20 keystrokes on various lines, slow typist.
    for k in 0..20 {
        dom.dispatch(
            interp,
            "window",
            "keydown",
            &[("line", (k * 5 % 24) as f64)],
        )?;
        interp.run_events(100)?;
        idle(interp, 120);
    }
    dom.dispatch(interp, "window", "report", &[])?;
    idle(interp, THINK_LONG * 3);
    Ok(())
}

fn interact_myscript(interp: &mut Interp, dom: &DomHandle) -> JsResult<()> {
    // Write three characters: short strokes, long pauses (the recognizer
    // round-trip happens server-side in the real app).
    for c in 0..3 {
        dispatch_n(interp, dom, "ink-pad", "pointermove", 5, |k| {
            vec![
                ("x", (c * 10 + k * 2) as f64),
                ("y", (8 + (k % 3) * 3) as f64),
            ]
        })?;
        dom.dispatch(interp, "ink-pad", "pointerup", &[])?;
        idle(interp, THINK_LONG * 2);
    }
    dom.dispatch(interp, "window", "report", &[])?;
    Ok(())
}

fn interact_d3(interp: &mut Interp, dom: &DomHandle) -> JsResult<()> {
    // Drag the globe a few times.
    for k in 0..6 {
        dom.dispatch(
            interp,
            "window",
            "drag",
            &[("dx", 5.0 + k as f64), ("dy", 2.0)],
        )?;
        interp.run_events(100)?;
        idle(interp, THINK_LONG / 2);
    }
    dom.dispatch(interp, "window", "report", &[])?;
    idle(interp, THINK_LONG);
    Ok(())
}

// ---------------------------------------------------------------------
// The registry (Table 1)
// ---------------------------------------------------------------------

/// All 12 workloads, in the paper's Table 1 order.
pub fn all() -> Vec<Workload> {
    use Difficulty::*;
    vec![
        Workload {
            name: "HAAR.js",
            slug: "haar",
            url: "github.com/foo123/HAAR.js",
            category: "User recognition",
            description: "face recognition (Viola-Jones)",
            source: include_str!("js/haar.js"),
            interaction: interact_batch,
            // Note: the paper's HAAR run spent little time in syntactic
            // loops (Table 2: 0.44 s of 8 s); our implementation drives the
            // cascade from loops, so it is loop-heavy here. The Table 3
            // ratings (medium, divergence through tree recursion) carry
            // over. See EXPERIMENTS.md.
            expected: PaperExpectation {
                compute_intensive: true,
                loop_heavy: true,
                dom_in_top_nest: false,
                parallelization: Medium,
                amdahl_over_3x: true,
            },
        },
        Workload {
            name: "Tear-able Cloth",
            slug: "cloth",
            url: "lonely-pixel.com/lab/cloth",
            category: "Games",
            description: "cloth physics simulation (Verlet integration)",
            source: include_str!("js/cloth.js"),
            interaction: interact_animation,
            expected: PaperExpectation {
                compute_intensive: true,
                loop_heavy: true,
                dom_in_top_nest: false,
                parallelization: Medium,
                amdahl_over_3x: true,
            },
        },
        Workload {
            name: "CamanJS",
            slug: "camanjs",
            url: "camanjs.com",
            category: "Audio and Video",
            description: "image manipulation library",
            source: include_str!("js/camanjs.js"),
            interaction: interact_caman,
            expected: PaperExpectation {
                compute_intensive: true,
                loop_heavy: true,
                dom_in_top_nest: false,
                parallelization: Easy,
                amdahl_over_3x: true,
            },
        },
        Workload {
            name: "fluidSim",
            slug: "fluidsim",
            url: "nerget.com/fluidSim",
            category: "Games",
            description: "fluid dynamics simulation (Navier-Stokes)",
            source: include_str!("js/fluidsim.js"),
            interaction: interact_animation,
            expected: PaperExpectation {
                compute_intensive: true,
                loop_heavy: true,
                dom_in_top_nest: false,
                parallelization: Easy,
                amdahl_over_3x: true,
            },
        },
        Workload {
            name: "Harmony",
            slug: "harmony",
            url: "mrdoob.com/projects/harmony",
            category: "Audio and Video",
            description: "drawing application",
            source: include_str!("js/harmony.js"),
            interaction: interact_harmony,
            expected: PaperExpectation {
                compute_intensive: false,
                loop_heavy: false,
                dom_in_top_nest: true,
                parallelization: VeryHard,
                amdahl_over_3x: false,
            },
        },
        Workload {
            name: "Ace",
            slug: "ace",
            url: "ace.c9.io",
            category: "Productivity",
            description: "code editor used by the Cloud9 IDE",
            source: include_str!("js/ace.js"),
            interaction: interact_ace,
            expected: PaperExpectation {
                compute_intensive: false,
                loop_heavy: false,
                dom_in_top_nest: true,
                parallelization: VeryHard,
                amdahl_over_3x: false,
            },
        },
        Workload {
            name: "MyScript",
            slug: "myscript",
            url: "webdemo.visionobjects.com",
            category: "User recognition",
            description: "handwriting recognition application",
            source: include_str!("js/myscript.js"),
            interaction: interact_myscript,
            expected: PaperExpectation {
                compute_intensive: false,
                loop_heavy: false,
                dom_in_top_nest: true,
                parallelization: VeryHard,
                amdahl_over_3x: false,
            },
        },
        Workload {
            name: "Realtime Raytracing",
            slug: "raytracing",
            url: "gist.github.com/jwagner/422755",
            category: "Games",
            description: "real-time raytracing demo",
            source: include_str!("js/raytracing.js"),
            interaction: interact_animation,
            expected: PaperExpectation {
                compute_intensive: true,
                loop_heavy: true,
                dom_in_top_nest: false,
                parallelization: Easy,
                amdahl_over_3x: true,
            },
        },
        Workload {
            name: "Normal Mapping",
            slug: "normalmap",
            url: "29a.ch/experiments",
            category: "Games",
            description: "normal mapping",
            source: include_str!("js/normalmap.js"),
            interaction: interact_animation,
            expected: PaperExpectation {
                compute_intensive: true,
                loop_heavy: true,
                dom_in_top_nest: false,
                parallelization: Easy,
                amdahl_over_3x: true,
            },
        },
        Workload {
            name: "sigma.js",
            slug: "sigmajs",
            url: "sigmajs.org",
            category: "Visualization",
            description: "GEXF rendering",
            source: include_str!("js/sigmajs.js"),
            interaction: interact_animation,
            expected: PaperExpectation {
                compute_intensive: true,
                loop_heavy: true,
                dom_in_top_nest: true,
                parallelization: VeryHard,
                amdahl_over_3x: false,
            },
        },
        Workload {
            name: "processing.js",
            slug: "processingjs",
            url: "processingjs.org",
            category: "Visualization",
            description: "interactive spiral visual effect",
            source: include_str!("js/processingjs.js"),
            interaction: interact_animation,
            expected: PaperExpectation {
                compute_intensive: true,
                loop_heavy: false,
                dom_in_top_nest: false,
                parallelization: Medium,
                amdahl_over_3x: false,
            },
        },
        Workload {
            name: "D3.js",
            slug: "d3js",
            url: "d3js.org",
            category: "Visualization",
            description: "interactive azimuthal projection map",
            source: include_str!("js/d3js.js"),
            interaction: interact_d3,
            expected: PaperExpectation {
                compute_intensive: true,
                loop_heavy: true,
                dom_in_top_nest: true,
                parallelization: Hard,
                amdahl_over_3x: false,
            },
        },
    ]
}

/// Look up a workload by slug.
pub fn by_slug(slug: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.slug == slug)
}

/// Run one workload through the pipeline at the given mode and scale
/// (`scale` multiplies problem sizes via the `SCALE` global; 1 = test size).
pub fn run_workload(w: &Workload, mode: Mode, scale: u32) -> Result<AppRun, ceres_interp::Control> {
    run_workload_budgeted(w, mode, scale, None, None)
}

/// [`run_workload`] under a watchdog: an optional deterministic tick
/// budget and an optional wall-clock cap, both wired into the pipeline's
/// [`AnalyzeOptions`] so a runaway app is cancelled from *inside* the
/// interpreter with a `watchdog:` fatal.
pub fn run_workload_budgeted(
    w: &Workload,
    mode: Mode,
    scale: u32,
    max_ticks: Option<u64>,
    wall_budget: Option<std::time::Duration>,
) -> Result<AppRun, ceres_interp::Control> {
    let mut server = WebServer::new();
    // Serve as an HTML page with the script inline, exercising the proxy's
    // HTML path end to end.
    server.publish("index.html", Document::Html(workload_html(w, scale)));
    let interaction = w.interaction;
    analyze(
        &server,
        "index.html",
        AnalyzeOptions::builder()
            .mode(mode)
            .seed(2015)
            .max_ticks(max_ticks)
            .wall_budget(wall_budget)
            .build(),
        Box::new(interaction),
    )
}

/// The canonical HTML document a workload is served as, at a given scale.
/// This is the *content identity* of a registry app: the daemon's
/// content-addressed cache keys registry requests on the digest of exactly
/// this string (see `ceres_core::cache`).
pub fn workload_html(w: &Workload, scale: u32) -> String {
    format!(
        "<html><body><canvas id=\"main-canvas\"></canvas>\n<script>\nvar SCALE = {scale};\n{}\n</script></body></html>",
        w.source
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table1() {
        let ws = all();
        assert_eq!(ws.len(), 12, "Table 1 lists 12 applications");
        let categories: std::collections::HashSet<_> = ws.iter().map(|w| w.category).collect();
        for c in [
            "Games",
            "Visualization",
            "User recognition",
            "Audio and Video",
            "Productivity",
        ] {
            assert!(categories.contains(c), "missing category {c}");
        }
        // Slugs unique.
        let slugs: std::collections::HashSet<_> = ws.iter().map(|w| w.slug).collect();
        assert_eq!(slugs.len(), 12);
        assert!(by_slug("raytracing").is_some());
        assert!(by_slug("nope").is_none());
    }

    #[test]
    fn all_workloads_parse_in_the_subset() {
        for w in all() {
            ceres_parser::parse_program(w.source)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", w.slug));
        }
    }

    #[test]
    fn all_workloads_run_uninstrumented() {
        for w in all() {
            let run = run_workload(&w, Mode::Lightweight, 1)
                .unwrap_or_else(|e| panic!("{} failed: {e:?}", w.slug));
            assert!(
                !run.console.is_empty(),
                "{} produced no output (did its completion log run?)",
                w.slug
            );
            assert!(run.total_ms > 0.0, "{}", w.slug);
        }
    }
}
