//! Fleet benchmark harness behind `repro bench` — the repo's recorded
//! perf trajectory.
//!
//! The paper's measurement lesson (Sec. 3.4) is that dependence
//! instrumentation dominates cost; the causal-profiling literature adds
//! that perf claims need a *reproducible harness*, not ad-hoc timings.
//! This module is that harness: it runs the full 12-app fleet under each
//! of the three instrumentation modes and records, per mode,
//!
//! * the **wall time** of one sequential fleet pass (best of `reps`,
//!   after a warmup pass — machine-dependent, the number optimizations
//!   move);
//! * the **virtual-clock ticks** summed over the fleet (deterministic —
//!   the number optimizations must *not* move);
//! * the tick-denominated **geometric-mean slowdown** vs the lightweight
//!   baseline (the Sec. 3.4 ledger, per mode);
//! * aggregated per-phase costs from the `obs` spans
//!   (`parse → rewrite → interp → analyze → report`).
//!
//! Reports are versioned JSON (`BENCH_<n>.json`). A run may embed a
//! previous report as its baseline (`repro bench --baseline FILE`), so a
//! single artifact carries the before/after pair and the headline
//! dependence-mode speedup — every PR appends a comparable datapoint.
//! See `docs/PERFORMANCE.md` for the playbook.

use crate::fleet::run_fleet_report;
use ceres_core::fleet::FleetOutcome;
use ceres_core::obs::PHASES;
use ceres_core::Mode;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version of the `BENCH_*.json` layout. Bump on any breaking change and
/// update `docs/PERFORMANCE.md` alongside.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// The three instrumentation modes, in ledger order (lightweight first:
/// it is the slowdown baseline).
const MODES: &[Mode] = &[Mode::Lightweight, Mode::LoopProfile, Mode::Dependence];

/// Aggregated cost of one pipeline phase, summed over the 12 apps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Phase name; one of [`ceres_core::obs::PHASES`].
    pub phase: String,
    /// Virtual-clock ticks the phase consumed, fleet-wide. Deterministic.
    pub ticks: u64,
    /// Wall time the phase consumed in the measured pass, fleet-wide, in
    /// microseconds. Machine-dependent.
    pub wall_us: u64,
}

/// One mode's measurements over the whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeBench {
    /// Mode name (`Debug` rendering: `Lightweight`, `LoopProfile`,
    /// `Dependence`).
    pub mode: String,
    /// Wall time of one sequential fleet pass, best of `reps`, in
    /// milliseconds. Machine-dependent; the optimization target.
    pub wall_ms: f64,
    /// Virtual-clock ticks summed over the 12 apps. Deterministic; must
    /// be invariant under pure perf work.
    pub total_ticks: u64,
    /// Tick-denominated geometric mean of per-app slowdown vs the
    /// lightweight baseline (1.0 for lightweight itself). Deterministic.
    pub geomean_slowdown: f64,
    /// Per-phase aggregates from the measured pass, in [`PHASES`] order.
    pub phases: Vec<PhaseCost>,
}

/// One harness run: all three modes at one scale, under one label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Caller-chosen label (e.g. `pre-intern-baseline`, `current`).
    pub label: String,
    /// Workload problem-size multiplier.
    pub scale: u32,
    /// Timed repetitions per mode (after one untimed warmup).
    pub reps: u32,
    /// Per-mode measurements, in Lightweight / LoopProfile / Dependence order.
    pub modes: Vec<ModeBench>,
}

impl BenchEntry {
    /// The measurements for `mode` (`Debug` name), if present.
    pub fn mode(&self, mode: &str) -> Option<&ModeBench> {
        self.modes.iter().find(|m| m.mode == mode)
    }
}

/// The versioned `BENCH_*.json` document: a baseline-first sequence of
/// entries plus the headline comparison between the newest entry and the
/// first (the recorded baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Entries in chronological order; `entries[0]` is the baseline.
    pub entries: Vec<BenchEntry>,
    /// Dependence-mode wall speedup of the last entry over the first
    /// (`baseline.wall_ms / current.wall_ms`); `null` with one entry.
    pub dep_wall_speedup_vs_baseline: Option<f64>,
}

impl BenchReport {
    /// Wrap a single entry (no baseline to compare against).
    pub fn single(entry: BenchEntry) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            entries: vec![entry],
            dep_wall_speedup_vs_baseline: None,
        }
    }

    /// Append `entry` to a prior report and recompute the headline
    /// dependence-mode wall speedup of `entry` vs the report's first
    /// entry.
    pub fn with_baseline(mut baseline: BenchReport, entry: BenchEntry) -> BenchReport {
        baseline.entries.push(entry);
        baseline.dep_wall_speedup_vs_baseline = dep_speedup(&baseline.entries);
        baseline.schema_version = BENCH_SCHEMA_VERSION;
        baseline
    }

    /// Pretty-printed JSON, trailing newline included (the `BENCH_*.json`
    /// artifact).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("BenchReport serializes");
        s.push('\n');
        s
    }

    /// Parse a previously written report.
    pub fn from_json(json: &str) -> Result<BenchReport, String> {
        let report: BenchReport = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if report.schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench schema version {} != supported {}",
                report.schema_version, BENCH_SCHEMA_VERSION
            ));
        }
        Ok(report)
    }
}

/// Dependence-mode wall speedup of the last entry over the first, when
/// both measured that mode.
fn dep_speedup(entries: &[BenchEntry]) -> Option<f64> {
    let first = entries.first()?.mode("Dependence")?;
    let last = entries.last()?.mode("Dependence")?;
    if first.wall_ms <= 0.0 || last.wall_ms <= 0.0 {
        return None;
    }
    Some(first.wall_ms / last.wall_ms)
}

/// Per-app deterministic tick readings of one fleet outcome, in registry
/// order. Panics if any app failed — a bench over a broken fleet would
/// record garbage.
fn app_ticks(outcome: &FleetOutcome) -> Vec<u64> {
    outcome
        .apps
        .iter()
        .map(|a| {
            a.report
                .as_ref()
                .unwrap_or_else(|| panic!("bench expects a clean fleet, {} failed", a.slug))
                .obs
                .counters
                .interp_ticks
        })
        .collect()
}

/// Sum the per-phase span costs over every app of an outcome, in
/// [`PHASES`] order.
fn phase_costs(outcome: &FleetOutcome) -> Vec<PhaseCost> {
    PHASES
        .iter()
        .map(|phase| {
            let mut ticks = 0;
            let mut wall_us = 0;
            for a in &outcome.apps {
                if let Some(r) = &a.report {
                    for s in &r.obs.spans {
                        if s.phase == *phase {
                            ticks += s.ticks();
                            wall_us += s.wall_us;
                        }
                    }
                }
            }
            PhaseCost {
                phase: phase.to_string(),
                ticks,
                wall_us,
            }
        })
        .collect()
}

/// Geometric mean of element-wise `num[i] / den[i]` ratios.
fn geomean_ratio(num: &[u64], den: &[u64]) -> f64 {
    if num.is_empty() || num.len() != den.len() {
        return 0.0;
    }
    let log_sum: f64 = num
        .iter()
        .zip(den)
        .map(|(n, d)| {
            if *d == 0 {
                0.0
            } else {
                (*n as f64 / *d as f64).max(f64::MIN_POSITIVE).ln()
            }
        })
        .sum();
    (log_sum / num.len() as f64).exp()
}

/// Run the harness: one warmup plus `reps` timed sequential fleet passes
/// per mode, keeping the best wall time and the (deterministic) tick
/// readings. `reps` is clamped to ≥ 1.
pub fn run_bench(label: &str, scale: u32, reps: u32) -> BenchEntry {
    let reps = reps.max(1);
    let mut light_ticks: Vec<u64> = Vec::new();
    let mut modes = Vec::new();
    for &mode in MODES {
        // Warmup: touches lazy statics, file cache, allocator arenas.
        run_fleet_report(mode, scale, 1);
        let mut best_ms = f64::INFINITY;
        let mut best: Option<FleetOutcome> = None;
        for _ in 0..reps {
            let t = Instant::now();
            let outcome = run_fleet_report(mode, scale, 1);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if ms < best_ms {
                best_ms = ms;
                best = Some(outcome);
            }
        }
        let outcome = best.expect("reps >= 1");
        let ticks = app_ticks(&outcome);
        if matches!(mode, Mode::Lightweight) {
            light_ticks = ticks.clone();
        }
        modes.push(ModeBench {
            mode: format!("{mode:?}"),
            wall_ms: best_ms,
            total_ticks: ticks.iter().sum(),
            geomean_slowdown: geomean_ratio(&ticks, &light_ticks),
            phases: phase_costs(&outcome),
        });
    }
    BenchEntry {
        label: label.to_string(),
        scale,
        reps,
        modes,
    }
}

/// Terminal rendering of a report: one block per entry, one row per mode,
/// plus the headline baseline comparison when present.
pub fn render_bench(report: &BenchReport) -> String {
    let mut out = String::new();
    for e in &report.entries {
        out.push_str(&format!(
            "[{}] scale={} reps={}\n{:<14}{:>12}{:>16}{:>12}\n",
            e.label, e.scale, e.reps, "mode", "wall ms", "ticks", "geomean x"
        ));
        for m in &e.modes {
            out.push_str(&format!(
                "{:<14}{:>12.1}{:>16}{:>12.2}\n",
                m.mode, m.wall_ms, m.total_ticks, m.geomean_slowdown
            ));
        }
    }
    if let Some(x) = report.dep_wall_speedup_vs_baseline {
        out.push_str(&format!(
            "dependence-mode wall speedup vs baseline ({} -> {}): {x:.2}x\n",
            report
                .entries
                .first()
                .map(|e| e.label.as_str())
                .unwrap_or("?"),
            report
                .entries
                .last()
                .map(|e| e.label.as_str())
                .unwrap_or("?"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mode_bench(mode: &str, wall_ms: f64, ticks: u64) -> ModeBench {
        ModeBench {
            mode: mode.to_string(),
            wall_ms,
            total_ticks: ticks,
            geomean_slowdown: 1.0,
            phases: Vec::new(),
        }
    }

    fn entry(label: &str, dep_wall: f64) -> BenchEntry {
        BenchEntry {
            label: label.to_string(),
            scale: 1,
            reps: 3,
            modes: vec![
                mode_bench("Lightweight", 10.0, 100),
                mode_bench("LoopProfile", 15.0, 150),
                mode_bench("Dependence", dep_wall, 400),
            ],
        }
    }

    #[test]
    fn baseline_comparison_reports_dependence_wall_speedup() {
        let base = BenchReport::single(entry("before", 30.0));
        let merged = BenchReport::with_baseline(base, entry("after", 20.0));
        assert_eq!(merged.entries.len(), 2);
        let x = merged.dep_wall_speedup_vs_baseline.expect("speedup");
        assert!((x - 1.5).abs() < 1e-9, "{x}");
        let rendered = render_bench(&merged);
        assert!(rendered.contains("before"), "{rendered}");
        assert!(rendered.contains("1.50x"), "{rendered}");
    }

    #[test]
    fn single_entry_has_no_speedup() {
        let r = BenchReport::single(entry("only", 30.0));
        assert_eq!(r.dep_wall_speedup_vs_baseline, None);
        assert_eq!(r.schema_version, BENCH_SCHEMA_VERSION);
    }

    #[test]
    fn report_round_trips_through_json() {
        let base = BenchReport::single(entry("before", 30.0));
        let merged = BenchReport::with_baseline(base, entry("after", 20.0));
        let back = BenchReport::from_json(&merged.to_json()).expect("parses");
        assert_eq!(merged, back);
    }

    #[test]
    fn schema_version_is_checked_on_parse() {
        let mut r = BenchReport::single(entry("x", 1.0));
        r.schema_version = 999;
        let json = serde_json::to_string(&r).unwrap();
        assert!(BenchReport::from_json(&json).is_err());
    }

    #[test]
    fn geomean_ratio_matches_hand_computation() {
        // ratios 2.0 and 8.0 → geomean 4.0
        let x = geomean_ratio(&[20, 80], &[10, 10]);
        assert!((x - 4.0).abs() < 1e-12, "{x}");
        assert_eq!(geomean_ratio(&[], &[]), 0.0);
        // zero denominators are treated as ratio 1 rather than poisoning
        // the mean.
        let y = geomean_ratio(&[5, 40], &[0, 10]);
        assert!((y - 2.0).abs() < 1e-12, "{y}");
    }

    #[test]
    fn harness_measures_all_modes_deterministically() {
        // Tick fields must be reproducible run over run; wall time is not
        // asserted (machine noise). reps=1 keeps the test quick.
        let a = run_bench("a", 1, 1);
        let b = run_bench("b", 1, 1);
        assert_eq!(a.modes.len(), 3);
        for (ma, mb) in a.modes.iter().zip(&b.modes) {
            assert_eq!(ma.mode, mb.mode);
            assert_eq!(ma.total_ticks, mb.total_ticks);
            assert!((ma.geomean_slowdown - mb.geomean_slowdown).abs() < 1e-12);
            let ticks_a: Vec<_> = ma
                .phases
                .iter()
                .map(|p| (p.phase.clone(), p.ticks))
                .collect();
            let ticks_b: Vec<_> = mb
                .phases
                .iter()
                .map(|p| (p.phase.clone(), p.ticks))
                .collect();
            assert_eq!(ticks_a, ticks_b);
        }
        // The Sec. 3.4 ordering holds on the geomean.
        let dep = a.mode("Dependence").unwrap().geomean_slowdown;
        let lp = a.mode("LoopProfile").unwrap().geomean_slowdown;
        let lw = a.mode("Lightweight").unwrap().geomean_slowdown;
        assert!((lw - 1.0).abs() < 1e-12);
        assert!(dep > lp && lp >= 1.0, "dep {dep} loop {lp}");
    }
}
