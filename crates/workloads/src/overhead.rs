//! Instrumentation-overhead ledger (paper Sec. 3.4).
//!
//! The paper reports that dependence instrumentation slows applications
//! down far more than loop profiling, which in turn costs more than the
//! lightweight call-tracking mode. This module reproduces that ledger on
//! the virtual clock: each workload runs once per mode, and the slowdown
//! is the ratio of final virtual-clock readings. Because every hook
//! charges a fixed tick price (see `ceres_instrument::hooks`), the ratios
//! are exactly reproducible — no wall-clock noise.
//!
//! Rendered by `repro overhead`.

use crate::registry::{all, run_workload};
use ceres_core::Mode;

/// Per-app overhead measurements: final virtual-clock readings under each
/// of the three instrumentation modes, in ticks.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Display name (Table 1 "Name").
    pub app: String,
    /// Short identifier for files/CLI.
    pub slug: String,
    /// Ticks under [`Mode::Lightweight`] (the baseline).
    pub light_ticks: u64,
    /// Ticks under [`Mode::LoopProfile`].
    pub loop_ticks: u64,
    /// Ticks under [`Mode::Dependence`].
    pub dep_ticks: u64,
}

impl OverheadRow {
    /// Loop-profiling slowdown relative to lightweight (×).
    pub fn loop_slowdown(&self) -> f64 {
        ratio(self.loop_ticks, self.light_ticks)
    }

    /// Dependence-instrumentation slowdown relative to lightweight (×).
    pub fn dep_slowdown(&self) -> f64 {
        ratio(self.dep_ticks, self.light_ticks)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Run every registered workload under all three modes and collect the
/// per-app tick readings. Errors in one app skip its row rather than
/// aborting the ledger (mirroring the fleet's partial-success stance).
pub fn overhead_ledger(scale: u32) -> Vec<OverheadRow> {
    all()
        .iter()
        .filter_map(|w| {
            let ticks = |mode: Mode| -> Option<u64> {
                run_workload(w, mode, scale)
                    .ok()
                    .map(|run| run.obs.counters.interp_ticks)
            };
            Some(OverheadRow {
                app: w.name.to_string(),
                slug: w.slug.to_string(),
                light_ticks: ticks(Mode::Lightweight)?,
                loop_ticks: ticks(Mode::LoopProfile)?,
                dep_ticks: ticks(Mode::Dependence)?,
            })
        })
        .collect()
}

/// Sec. 3.4 table: per-app ticks under each mode and the slowdown factors
/// relative to the lightweight baseline, with a geometric-mean summary
/// row. Entirely tick-denominated, so the output is deterministic.
pub fn render_overhead(rows: &[OverheadRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22}{:>12}{:>12}{:>12}{:>9}{:>9}\n",
        "Name", "light", "loop-prof", "depend", "loop x", "dep x"
    ));
    let mut loop_log_sum = 0.0;
    let mut dep_log_sum = 0.0;
    for r in rows {
        out.push_str(&format!(
            "{:<22}{:>12}{:>12}{:>12}{:>9.2}{:>9.2}\n",
            r.app,
            r.light_ticks,
            r.loop_ticks,
            r.dep_ticks,
            r.loop_slowdown(),
            r.dep_slowdown(),
        ));
        loop_log_sum += r.loop_slowdown().max(f64::MIN_POSITIVE).ln();
        dep_log_sum += r.dep_slowdown().max(f64::MIN_POSITIVE).ln();
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        out.push_str(&format!(
            "{:<22}{:>12}{:>12}{:>12}{:>9.2}{:>9.2}\n",
            "geomean",
            "",
            "",
            "",
            (loop_log_sum / n).exp(),
            (dep_log_sum / n).exp(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdowns_are_ratios_over_the_lightweight_baseline() {
        let r = OverheadRow {
            app: "X".to_string(),
            slug: "x".to_string(),
            light_ticks: 100,
            loop_ticks: 150,
            dep_ticks: 400,
        };
        assert!((r.loop_slowdown() - 1.5).abs() < 1e-12);
        assert!((r.dep_slowdown() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let r = OverheadRow {
            app: "X".to_string(),
            slug: "x".to_string(),
            light_ticks: 0,
            loop_ticks: 5,
            dep_ticks: 9,
        };
        assert_eq!(r.loop_slowdown(), 0.0);
        assert_eq!(r.dep_slowdown(), 0.0);
    }

    #[test]
    fn ledger_reproduces_the_paper_overhead_ordering() {
        // Sec. 3.4: dependence instrumentation is by far the most
        // expensive mode; loop profiling costs more than lightweight.
        let rows = overhead_ledger(1);
        assert_eq!(rows.len(), 12, "every app must produce a row");
        for r in &rows {
            assert!(
                r.dep_ticks > r.loop_ticks && r.loop_ticks >= r.light_ticks,
                "{}: expected dep > loop >= light, got {} / {} / {}",
                r.slug,
                r.dep_ticks,
                r.loop_ticks,
                r.light_ticks
            );
        }
        // The aggregate gap is large: dependence's overhead *above the
        // baseline* should dwarf loop-profiling's on the geometric mean.
        let n = rows.len() as f64;
        let geo = |f: &dyn Fn(&OverheadRow) -> f64| {
            (rows.iter().map(|r| f(r).ln()).sum::<f64>() / n).exp()
        };
        let loop_x = geo(&|r| r.loop_slowdown());
        let dep_x = geo(&|r| r.dep_slowdown());
        assert!(
            dep_x - 1.0 > 5.0 * (loop_x - 1.0),
            "dependence geomean {dep_x:.2}x vs loop-profiling {loop_x:.2}x"
        );
    }

    #[test]
    fn ledger_is_deterministic() {
        let a = overhead_ledger(1);
        let b = overhead_ledger(1);
        assert_eq!(a, b, "tick readings must not vary across runs");
        assert_eq!(render_overhead(&a), render_overhead(&b));
    }

    #[test]
    fn rendering_includes_every_app_and_a_geomean() {
        let rows = vec![
            OverheadRow {
                app: "A".to_string(),
                slug: "a".to_string(),
                light_ticks: 10,
                loop_ticks: 20,
                dep_ticks: 80,
            },
            OverheadRow {
                app: "B".to_string(),
                slug: "b".to_string(),
                light_ticks: 10,
                loop_ticks: 10,
                dep_ticks: 40,
            },
        ];
        let table = render_overhead(&rows);
        assert!(table.contains("A"), "{table}");
        assert!(table.contains("geomean"), "{table}");
        // geomean of 2.0 and 1.0 is sqrt(2) ≈ 1.41; of 8 and 4 is ~5.66.
        assert!(table.contains("1.41"), "{table}");
        assert!(table.contains("5.66"), "{table}");
    }
}
