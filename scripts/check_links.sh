#!/usr/bin/env bash
# Offline markdown link checker: every *relative* link and image target in
# the repo's documentation must exist in the tree. External http(s) links
# and pure anchors are skipped (CI has no business depending on the
# network being up).
set -euo pipefail
cd "$(dirname "$0")/.."

files=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md CHANGES.md PAPER.md PAPERS.md docs/*.md)

# Guard against the glob silently matching nothing after a docs/ reshuffle.
for must in docs/ARCHITECTURE.md docs/METRICS.md docs/PARALLELIZE.md \
            docs/OPERATIONS.md docs/SERVING.md; do
  if [ ! -f "$must" ]; then
    echo "MISSING: $must (expected by the documentation map)"
    exit 1
  fi
done

# The serving docs must cross-link both directions: an operator landing
# on any one of README, OPERATIONS, or SERVING can reach the others.
require_link() {
  if ! grep -qF "$2" "$1"; then
    echo "MISSING CROSS-LINK: $1 must link to $2"
    exit 1
  fi
}
require_link README.md "docs/OPERATIONS.md"
require_link README.md "docs/SERVING.md"
require_link DESIGN.md "docs/OPERATIONS.md"
require_link docs/OPERATIONS.md "SERVING.md"
require_link docs/OPERATIONS.md "../README.md"
require_link docs/SERVING.md "OPERATIONS.md"
require_link docs/METRICS.md "OPERATIONS.md"

fail=0
for f in "${files[@]}"; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  # Inline links/images: [text](target) — strip titles and anchors.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | \#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN: $f -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$f" | sed -E 's/^\]\(//; s/\)$//; s/ "[^"]*"$//')
done

if [ "$fail" -ne 0 ]; then
  echo "link check failed"
  exit 1
fi
echo "link check ok: ${#files[@]} files scanned"
