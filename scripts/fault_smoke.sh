#!/usr/bin/env bash
# Fault-injection resilience smoke: run the fleet with seeded injected
# panics and assert graceful degradation — partial success exit code, every
# app accounted for in the JSON, failures named per app. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release
cargo build --release --bins

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== fleet under injected faults (panic:0.3, seed 7) =="
set +e
"$BIN/repro" fleet --inject panic:0.3 --inject-seed 7 --workers 4 \
    --json "$tmp/fleet_faults.json" > "$tmp/fleet_faults.out" 2>&1
code=$?
set -e
if [ "$code" -ne 3 ]; then
    echo "FAIL: expected partial-success exit code 3, got $code" >&2
    tail -30 "$tmp/fleet_faults.out" >&2
    exit 1
fi

# The report must account for all 12 apps: some analyzed, some panicked,
# each failure carrying its slug and status.
python3 - "$tmp/fleet_faults.json" <<'EOF'
import json, sys
o = json.load(open(sys.argv[1]))
apps = o["apps"]
assert len(apps) == 12, f"expected 12 app slots, got {len(apps)}"
ok = [a for a in apps if a["status"] == "Ok"]
panicked = [a for a in apps if isinstance(a["status"], dict) and "Panicked" in a["status"]]
assert ok, "no app survived - injection should leave survivors"
assert panicked, "no app panicked - injection did not fire"
assert len(ok) + len(panicked) == 12, f"unexpected statuses: {[a['status'] for a in apps]}"
for a in ok:
    assert a["report"] is not None, f"{a['slug']}: Ok without a report"
for a in panicked:
    assert a["report"] is None, f"{a['slug']}: Panicked with a report"
    assert a["slug"] in a["status"]["Panicked"]["message"], \
        f"panic message must name the app: {a['status']}"
print(f"OK: {len(ok)} analyzed, {len(panicked)} panicked, all named")
EOF

grep -q "per-app status" "$tmp/fleet_faults.out" || {
    echo "FAIL: degraded run printed no per-app status section" >&2
    exit 1
}
grep -q "panicked" "$tmp/fleet_faults.out" || {
    echo "FAIL: status table does not show the panicked apps" >&2
    exit 1
}

# Reproducibility: the same seed must produce the same degradation.
set +e
"$BIN/repro" fleet --inject panic:0.3 --inject-seed 7 --workers 2 \
    --json "$tmp/fleet_faults2.json" > /dev/null 2>&1
set -e
python3 - "$tmp/fleet_faults.json" "$tmp/fleet_faults2.json" <<'EOF'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
sa = [(x["slug"], json.dumps(x["status"], sort_keys=True)) for x in a["apps"]]
sb = [(x["slug"], json.dumps(x["status"], sort_keys=True)) for x in b["apps"]]
assert sa == sb, "statuses differ across runs with the same seed"
print("OK: statuses identical across worker counts")
EOF

echo "fault smoke OK"
