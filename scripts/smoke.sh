#!/usr/bin/env bash
# CLI smoke test: exercise the release binaries end to end and hold the
# Fig. 6 N-body output to its checked-in golden. Run from anywhere; exits
# non-zero on any drift.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release
cargo build --release --bins

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== repro all =="
"$BIN/repro" all > "$tmp/repro_all.out"
# Every section header must have rendered.
for section in "Figure 1" "Figure 6" "Table 2" "Table 3" "Amdahl"; do
    grep -q "$section" "$tmp/repro_all.out" || {
        echo "FAIL: 'repro all' output is missing '$section'" >&2
        exit 1
    }
done

echo "== jsceres on examples/js =="
for js in examples/js/*.js; do
    "$BIN/jsceres" "$js" --mode dep > "$tmp/jsceres.out"
    grep -q -- "-- timing --" "$tmp/jsceres.out" || {
        echo "FAIL: jsceres $js printed no timing block" >&2
        exit 1
    }
done

echo "== repro fig6 vs golden =="
"$BIN/repro" fig6 > "$tmp/fig6.out"
diff -u tests/golden/fig6_nbody.txt "$tmp/fig6.out" || {
    echo "FAIL: 'repro fig6' drifted from tests/golden/fig6_nbody.txt" >&2
    echo "(if the change is intentional, refresh the golden with:" >&2
    echo "  cargo run --release -p ceres-bench --bin repro -- fig6 > tests/golden/fig6_nbody.txt)" >&2
    exit 1
}
# The paper's headline N-body characterization must appear verbatim.
grep -qF "while(line 44) ok ok -> for(line 22) ok dependence" "$tmp/fig6.out" || {
    echo "FAIL: N-body 'ok ok -> ok dependence' characterization missing" >&2
    exit 1
}

echo "== fleet analyzer (parallel vs sequential) =="
"$BIN/repro" fleet --workers 4 --json "$tmp/fleet_par.json" > /dev/null
"$BIN/repro" fleet --sequential --json "$tmp/fleet_seq.json" > /dev/null
for f in fleet_par fleet_seq; do
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$tmp/$f.json" || {
        echo "FAIL: $f.json is not valid JSON" >&2
        exit 1
    }
done
"$BIN/jsceres" analyze-all --mode light --workers 2 > "$tmp/analyze_all.out"
grep -q "Table 2" "$tmp/analyze_all.out" || {
    echo "FAIL: 'jsceres analyze-all' printed no Table 2" >&2
    exit 1
}

echo "smoke OK"
