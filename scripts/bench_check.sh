#!/usr/bin/env bash
# Benchmark gates. Two modes:
#
#   bench_check.sh overhead   (default)
#       Run `repro bench` against the committed baseline (BENCH_0007.json)
#       and fail if the dependence-mode overhead geomean regresses by more
#       than 10%. The geomean is virtual-clock-denominated, so the gate is
#       deterministic and safe on throttled CI runners; wall times are
#       recorded in the artifact for humans but never gated on.
#
#   bench_check.sh fleet
#       Fleet parallel-speedup gate (nightly CI): run the fleet analyzer
#       sequentially and with 4 workers, write BENCH_fleet.json, and fail
#       if the 4-worker speedup falls below 1.5x. Only enforced when the
#       machine has enough real cores to spread across.
#
#   bench_check.sh vm-equivalence
#       Backend-equivalence gate: run the sequential fleet twice — once on
#       the tree-walking interpreter (CERES_INTERP_BACKEND=tree) and once
#       on the default bytecode VM — and fail unless the analysis reports
#       are byte-for-byte identical after dropping the two fields that are
#       allowed to differ: wall-clock timings (nondeterministic) and the
#       VM-only `interp.compile` phase span.
#
#   bench_check.sh stats-schema
#       Serving stats-schema gate: start jsceresd, fetch `{"op":"stats"}`,
#       and fail if the flattened key set of the payload (or the
#       `stats_schema` number itself) drifts from the committed golden
#       (tests/golden/serve_stats_keys.txt). Adding or removing a stats
#       field without bumping SERVE_STATS_SCHEMA — and regenerating the
#       golden with CERES_REGEN_GOLDENS=1 — is exactly the drift this
#       gate exists to catch.
#
#   bench_check.sh parallel-equivalence
#       Fork-join equivalence gate: run `repro parallel-bench` over all 12
#       apps and fail unless (a) every app either parallelized with
#       byte-identical output or was explicitly refused — no third state;
#       (b) at least PAR_MIN_APPS (default 5) apps parallelized; (c) of
#       the apps the paper bounds above 3x, at least PAR_MIN_WITHIN
#       (default 5) have what-if predictions within the documented error
#       bound of the measured speedup (docs/PARALLELIZE.md). All gated
#       quantities are virtual-clock-denominated and deterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=${1:-overhead}

case "$MODE" in
overhead)
    BASELINE=${BENCH_BASELINE:-BENCH_0007.json}
    OUT=${BENCH_OUT:-BENCH_ci.json}
    MAX_REGRESSION=${BENCH_MAX_REGRESSION:-1.10}

    cargo build --release --bin repro

    if [ ! -f "$BASELINE" ]; then
        echo "note: no recorded baseline at $BASELINE — running the bench ungated."
        echo "      Record one first (then commit it) with:"
        echo "      target/release/repro bench --json $BASELINE --label baseline"
        target/release/repro bench --json "$OUT" --label ci
        exit 0
    fi

    target/release/repro bench --json "$OUT" --baseline "$BASELINE" --label ci

    python3 - "$OUT" "$MAX_REGRESSION" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
limit = float(sys.argv[2])
entries = report["entries"]
if len(entries) < 2:
    sys.exit("FAIL: bench report has no baseline entry to compare against")

def dep_geomean(entry):
    for m in entry["modes"]:
        if m["mode"] == "Dependence":
            return m["geomean_slowdown"]
    sys.exit(f"FAIL: entry {entry['label']!r} has no Dependence mode")

base, cur = entries[0], entries[-1]
b, c = dep_geomean(base), dep_geomean(cur)
ratio = c / b
print(f"dependence overhead geomean: baseline[{base['label']}]={b:.4f}x "
      f"current[{cur['label']}]={c:.4f}x (ratio {ratio:.3f})")
if ratio > limit:
    sys.exit(f"FAIL: overhead geomean regressed {ratio:.3f}x > allowed {limit}x")
print(f"OK: within the {limit}x regression budget")
EOF
    ;;

fleet)
    WORKERS=${FLEET_BENCH_WORKERS:-4}
    OUT=${FLEET_BENCH_OUT:-BENCH_fleet.json}
    MIN_SPEEDUP=${FLEET_BENCH_MIN_SPEEDUP:-1.5}

    cargo build --release --bin repro
    target/release/repro fleet-bench --workers "$WORKERS" --json "$OUT"
    cat "$OUT"

    cores=$(nproc)
    if [ "$cores" -lt "$WORKERS" ]; then
        echo "note: only $cores core(s) available for $WORKERS workers — recording numbers, skipping the ${MIN_SPEEDUP}x gate"
        exit 0
    fi

    python3 - "$OUT" "$MIN_SPEEDUP" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
need = float(sys.argv[2])
got = report["speedup"]
if got < need:
    sys.exit(f"FAIL: fleet speedup {got:.2f}x < required {need}x "
             f"(seq {report['seq_ms']:.0f} ms, par {report['par_ms']:.0f} ms, "
             f"{report['workers']} workers)")
print(f"OK: fleet speedup {got:.2f}x >= {need}x")
EOF
    ;;

vm-equivalence)
    OUT_DIR=$(mktemp -d)
    trap 'rm -rf "$OUT_DIR"' EXIT

    cargo build --release --bin repro
    echo "== fleet on the bytecode VM (default backend) =="
    target/release/repro fleet --sequential --json "$OUT_DIR/vm.json" > /dev/null
    echo "== fleet on the tree-walker (CERES_INTERP_BACKEND=tree) =="
    CERES_INTERP_BACKEND=tree \
        target/release/repro fleet --sequential --json "$OUT_DIR/tree.json" > /dev/null

    python3 - "$OUT_DIR/vm.json" "$OUT_DIR/tree.json" <<'EOF'
import json, sys

def normalize(o):
    """Drop wall-clock fields and the VM-only interp.compile span; every
    other byte of the report must match across backends."""
    if isinstance(o, dict):
        return {k: normalize(v) for k, v in o.items() if "wall" not in k}
    if isinstance(o, list):
        return [normalize(x) for x in o
                if not (isinstance(x, dict) and x.get("phase") == "interp.compile")]
    return o

vm, tree = (normalize(json.load(open(p))) for p in sys.argv[1:3])
a = json.dumps(vm, indent=1, sort_keys=True)
b = json.dumps(tree, indent=1, sort_keys=True)
if a != b:
    import difflib
    diff = list(difflib.unified_diff(
        b.splitlines(), a.splitlines(), "tree", "vm", lineterm=""))
    print("\n".join(diff[:80]), file=sys.stderr)
    sys.exit("FAIL: VM and tree-walker fleet reports diverge "
             f"({len(diff)} diff lines, first 80 above)")
print(f"OK: VM and tree-walker reports identical ({len(a.splitlines())} "
      "normalized lines; only wall timings and the interp.compile span differ)")
EOF
    ;;

parallel-equivalence)
    WORKERS=${PAR_BENCH_WORKERS:-4}
    OUT=${PAR_BENCH_OUT:-BENCH_parallel.json}
    MIN_APPS=${PAR_MIN_APPS:-5}
    MIN_WITHIN=${PAR_MIN_WITHIN:-5}

    cargo build --release --bin repro
    target/release/repro parallel-bench --workers "$WORKERS" --json "$OUT"

    python3 - "$OUT" "$MIN_APPS" "$MIN_WITHIN" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
min_apps, min_within = int(sys.argv[2]), int(sys.argv[3])
bad = [r for r in report["rows"]
       if not (r["outcome"] == "parallelized" or r["outcome"].startswith("refused:"))]
if bad:
    for r in bad:
        print(f"FAIL: {r['slug']}: unexpected outcome {r['outcome']!r}", file=sys.stderr)
    sys.exit("FAIL: an app neither parallelized byte-identically nor was refused")
par = [r for r in report["rows"] if r["equivalent"] is True]
print(f"{len(par)} of {len(report['rows'])} apps parallelized byte-identically "
      f"on {report['workers']} workers: {', '.join(r['slug'] for r in par)}")
if len(par) < min_apps:
    sys.exit(f"FAIL: only {len(par)} apps parallelized < required {min_apps}")
over = [r for r in report["rows"] if r["paper_over_3x"]]
within = [r for r in over if r["within_bound"] is True]
print(f"{len(within)} of the paper's {len(over)} >3x apps predicted within "
      f"the {report['error_bound']:.0%} error bound: "
      f"{', '.join(r['slug'] for r in within)}")
if len(within) < min_within:
    sys.exit(f"FAIL: only {len(within)} >3x apps within the error bound "
             f"< required {min_within}")
print("OK: fork-join equivalence + prediction gates hold")
EOF
    ;;

stats-schema)
    GOLDEN=tests/golden/serve_stats_keys.txt
    TMP=$(mktemp -d)
    trap 'rm -rf "$TMP"; [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true' EXIT

    cargo build --release --bin jsceresd
    target/release/jsceresd --addr 127.0.0.1:0 --in-process --workers 1 \
        > "$TMP/out" 2> "$TMP/err" &
    daemon_pid=$!
    for _ in $(seq 1 50); do
        grep -q "^listening on " "$TMP/out" 2>/dev/null && break
        kill -0 "$daemon_pid" 2>/dev/null || {
            echo "FAIL: daemon died before binding" >&2
            cat "$TMP/err" >&2
            exit 1
        }
        sleep 0.1
    done
    addr=$(sed -n 's/^listening on //p' "$TMP/out" | head -1)
    [ -n "$addr" ] || { echo "FAIL: no ready line" >&2; exit 1; }

    python3 - "$addr" "$GOLDEN" <<'EOF'
import json, os, socket, sys

addr, golden = sys.argv[1], sys.argv[2]
host, port = addr.rsplit(":", 1)

def rpc(line):
    with socket.create_connection((host, int(port)), timeout=120) as s:
        s.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)

stats = rpc('{"op":"stats"}')
assert rpc('{"op":"shutdown"}')["ok"]

def flatten(obj, prefix=""):
    """Dotted key paths; lists contribute their first element as `[]`."""
    keys = set()
    if isinstance(obj, dict):
        for k, v in obj.items():
            path = f"{prefix}.{k}" if prefix else k
            keys.add(path)
            keys |= flatten(v, path)
    elif isinstance(obj, list) and obj:
        keys |= flatten(obj[0], prefix + "[]")
    return keys

lines = [f"stats_schema={stats['stats_schema']}"] + sorted(flatten(stats))
got = "\n".join(lines) + "\n"
if os.environ.get("CERES_REGEN_GOLDENS"):
    open(golden, "w").write(got)
    print(f"regenerated {golden} ({len(lines) - 1} keys, "
          f"stats_schema {stats['stats_schema']})")
    sys.exit(0)
want = open(golden).read()
if got != want:
    import difflib
    diff = difflib.unified_diff(want.splitlines(), got.splitlines(),
                                "golden", "live", lineterm="")
    print("\n".join(diff), file=sys.stderr)
    sys.exit("FAIL: the stats payload drifted from the committed golden. "
             "If the change is intentional, bump SERVE_STATS_SCHEMA in "
             "crates/core/src/serve.rs and regenerate with "
             "CERES_REGEN_GOLDENS=1 scripts/bench_check.sh stats-schema")
print(f"OK: stats_schema {stats['stats_schema']} with {len(lines) - 1} "
      "payload keys, matching the committed golden")
EOF
    code=0
    wait "$daemon_pid" || code=$?
    daemon_pid=
    [ "$code" -eq 0 ] || { echo "FAIL: daemon exited $code" >&2; exit 1; }
    ;;

*)
    echo "usage: bench_check.sh [overhead|fleet|vm-equivalence|parallel-equivalence|stats-schema]" >&2
    exit 2
    ;;
esac
