#!/usr/bin/env bash
# Fleet speedup gate (manual / nightly CI): run the fleet analyzer
# sequentially and with 4 workers, write BENCH_fleet.json, and fail if the
# 4-worker speedup falls below 1.5x.
#
# The gate only makes sense with real cores to spread across: on a 1-2
# core machine (small containers, throttled runners) the parallel run
# cannot win, so the script records the numbers but skips the threshold.
set -euo pipefail
cd "$(dirname "$0")/.."

WORKERS=${FLEET_BENCH_WORKERS:-4}
OUT=${FLEET_BENCH_OUT:-BENCH_fleet.json}
MIN_SPEEDUP=${FLEET_BENCH_MIN_SPEEDUP:-1.5}

cargo build --release --bin repro
target/release/repro fleet-bench --workers "$WORKERS" --json "$OUT"
cat "$OUT"

cores=$(nproc)
if [ "$cores" -lt "$WORKERS" ]; then
    echo "note: only $cores core(s) available for $WORKERS workers — recording numbers, skipping the ${MIN_SPEEDUP}x gate"
    exit 0
fi

python3 - "$OUT" "$MIN_SPEEDUP" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
need = float(sys.argv[2])
got = report["speedup"]
if got < need:
    sys.exit(f"FAIL: fleet speedup {got:.2f}x < required {need}x "
             f"(seq {report['seq_ms']:.0f} ms, par {report['par_ms']:.0f} ms, "
             f"{report['workers']} workers)")
print(f"OK: fleet speedup {got:.2f}x >= {need}x")
EOF
