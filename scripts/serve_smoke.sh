#!/usr/bin/env bash
# jsceresd serving smoke, multi-process edition: start the daemon with 3
# worker processes and persistence dirs, hit it with concurrent clients
# (registry app, inline source, repeats, one fault-injected), assert the
# content-addressed cache actually hit, crash one worker mid-run (both an
# injected abort and a raw kill -9) and require the supervisor to restart
# it with every non-killed job succeeding, drive the schema-2 streaming
# protocol with concurrent clients (plus a kill -9 mid-stream drill that
# must still end every stream in a terminal frame), then shut down
# cleanly and restart to prove the persisted cache serves a warm hit with
# zero new interpreter ticks. Run from anywhere; needs only python3 and
# the release binaries. The operator-facing story is docs/OPERATIONS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release
cargo build --release --bins

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true' EXIT

start_daemon() { # out-file err-file
    "$BIN/jsceresd" --addr 127.0.0.1:0 --workers 3 \
        --cache-dir "$tmp/cache" --spill-dir "$tmp/spill" \
        > "$1" 2> "$2" &
    daemon_pid=$!
    for _ in $(seq 1 50); do
        grep -q "^listening on " "$1" 2>/dev/null && break
        kill -0 "$daemon_pid" 2>/dev/null || {
            echo "FAIL: daemon died before binding" >&2
            cat "$2" >&2
            exit 1
        }
        sleep 0.1
    done
    addr=$(sed -n 's/^listening on //p' "$1" | head -1)
    [ -n "$addr" ] || { echo "FAIL: no ready line" >&2; exit 1; }
}

echo "== jsceresd serve smoke (cold start, 3 worker processes) =="
start_daemon "$tmp/daemon.out" "$tmp/daemon.err"
echo "daemon up at $addr (pid $daemon_pid)"

# Phase 1 — cache behavior under concurrency, plus the supervised-retry
# fault drill (same checks as the single-process era: the wire surface
# must not have drifted).
python3 - "$addr" <<'EOF'
import json, socket, sys, threading

addr = sys.argv[1]
host, port = addr.rsplit(":", 1)

def rpc(line):
    with socket.create_connection((host, int(port)), timeout=120) as s:
        s.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)

# Warm the cache serially first so the repeats below must hit.
cold = rpc('{"id":"warm","app":"haar","mode":"light"}')
assert cold["ok"] and not cold["cached"], cold

requests = [
    ('{"id":"r1","app":"haar","mode":"light"}', True),
    ('{"id":"r2","app":"haar","mode":"light"}', True),
    ('{"id":"r3","source":"var s = 0; for (var i = 0; i < 7; i++) { s += i; }","mode":"dep"}', None),
    ('{"id":"r4","app":"haar","mode":"light","inject":"error"}', False),
]
results = [None] * len(requests)
def worker(i, line):
    results[i] = rpc(line)
threads = [threading.Thread(target=worker, args=(i, line))
           for i, (line, _) in enumerate(requests)]
for t in threads: t.start()
for t in threads: t.join()

for (line, want_cached), r in zip(requests, results):
    assert r["ok"], f"{line} -> {r}"
    if want_cached is not None:
        assert r["cached"] == want_cached, f"{line} -> {r}"

# The injected request must have gone through the supervisor's retry
# path (transient error on attempt 1), never the cache.
injected = results[3]
assert injected["attempts"] == 2, f"fault not supervised: {injected}"

stats = rpc('{"op":"stats"}')
assert stats["stats_schema"] == 3, stats
assert stats["backend"] == "process", stats
c = stats["counters"]
assert c["cache_hits"] > 0, f"no cache hits: {stats}"
assert c["jobs_failed"] == 0, f"unexpected failures: {stats}"
assert c["requests"] >= 5, stats
print(f"OK phase 1: {c['requests']} requests, {c['cache_hits']} cache hits, "
      f"{c['jobs_ok']} jobs ok, injected request supervised in "
      f"{injected['attempts']} attempts")
EOF

# Phase 2 — crash a worker process mid-run, twice over: an injected
# abort racing three real jobs, then a raw kill -9 of a live worker.
# The supervisor must report the restarts and every non-killed job must
# succeed.
workers_before=$(pgrep -P "$daemon_pid" | head -3 | tr '\n' ' ')
echo "worker pids: $workers_before"
victim=$(pgrep -P "$daemon_pid" | head -1)
python3 - "$addr" <<'EOF'
import json, socket, sys, threading

addr = sys.argv[1]
host, port = addr.rsplit(":", 1)

def rpc(line):
    with socket.create_connection((host, int(port)), timeout=120) as s:
        s.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)

# An injected crash aborts its worker process mid-job while three real
# jobs run on the other workers.
jobs = [
    '{"id":"j1","source":"var a = 0; for (var i = 0; i < 40; i++) { a += i; }","mode":"dep"}',
    '{"id":"j2","source":"var b = 0; for (var i = 0; i < 41; i++) { b += i; }","mode":"dep"}',
    '{"id":"j3","source":"var c = 0; for (var i = 0; i < 42; i++) { c += i; }","mode":"dep"}',
]
results = [None] * len(jobs)
def worker(i, line):
    results[i] = rpc(line)
threads = [threading.Thread(target=worker, args=(i, line))
           for i, line in enumerate(jobs)]
for t in threads: t.start()
crash = rpc('{"id":"boom","source":"var x = 1;","inject":"crash"}')
for t in threads: t.join()

assert not crash["ok"] and crash["status"] == "worker-crashed", crash
for line, r in zip(jobs, results):
    assert r["ok"], f"non-killed job must survive the crash: {line} -> {r}"

stats = rpc('{"op":"stats"}')
c = stats["counters"]
assert c["worker_restarts"] >= 1, f"restart not reported: {stats}"
assert c["jobs_failed"] == 1, f"only the crashed job may fail: {stats}"
print(f"OK phase 2a: injected crash -> {c['worker_restarts']} worker "
      f"restart(s), {c['jobs_ok']} jobs ok, {c['jobs_failed']} failed")
EOF

if [ -n "${victim:-}" ]; then
    kill -9 "$victim" 2>/dev/null || true
    echo "killed worker pid $victim"
    python3 - "$addr" <<'EOF'
import json, socket, sys, threading

addr = sys.argv[1]
host, port = addr.rsplit(":", 1)

def rpc(line):
    with socket.create_connection((host, int(port)), timeout=120) as s:
        s.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)

# Enough jobs that every worker slot (including the killed one) gets
# work: the dead worker is detected on dispatch, restarted, and the job
# retried on the fresh process — so every client still succeeds.
jobs = ['{"id":"k%d","source":"var k%d = 0; for (var i = 0; i < %d; i++) { k%d += i; }","mode":"dep"}'
        % (i, i, 50 + i, i) for i in range(6)]
results = [None] * len(jobs)
def worker(i, line):
    results[i] = rpc(line)
threads = [threading.Thread(target=worker, args=(i, line))
           for i, line in enumerate(jobs)]
for t in threads: t.start()
for t in threads: t.join()
for line, r in zip(jobs, results):
    assert r["ok"], f"job must survive a kill -9'd worker: {line} -> {r}"

stats = rpc('{"op":"stats"}')
c = stats["counters"]
assert c["worker_restarts"] >= 2, f"kill -9 restart not reported: {stats}"
assert c["jobs_failed"] == 1, f"a kill during idle must cost no jobs: {stats}"
print(f"OK phase 2b: kill -9 -> {c['worker_restarts']} total restart(s), "
      f"all {len(jobs)} jobs ok")
EOF
fi

# Phase 3 — the schema-2 streaming protocol: three concurrent streaming
# clients must each see a clean frame sequence (accepted → phase frames →
# partial → result) with no cross-client leakage, then a kill -9 of every
# worker mid-stream must still end the victim's stream in a terminal
# frame (the job retries on a fresh worker and succeeds).
stream_victims=$(pgrep -P "$daemon_pid" | tr '\n' ' ')
echo "streaming drill; current worker pids: $stream_victims"
python3 - "$addr" $stream_victims <<'EOF'
import json, os, signal, socket, sys, threading, time

addr = sys.argv[1]
victims = [int(p) for p in sys.argv[2:]]
host, port = addr.rsplit(":", 1)

def stream(line, on_frame=None):
    """Send one streaming request; collect frames until the terminal."""
    frames = []
    with socket.create_connection((host, int(port)), timeout=120) as s:
        s.sendall(line.encode() + b"\n")
        buf = b""
        while True:
            nl = buf.find(b"\n")
            if nl < 0:
                chunk = s.recv(65536)
                if not chunk:
                    return frames
                buf += chunk
                continue
            frame = json.loads(buf[:nl])
            buf = buf[nl + 1:]
            frames.append(frame)
            if on_frame:
                on_frame(frame)
            if frame["type"] in ("result", "error"):
                return frames

def rpc(line):
    with socket.create_connection((host, int(port)), timeout=120) as s:
        s.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)

def check_stream(frames, job_id, want_ok=True):
    assert frames, f"{job_id}: empty stream"
    for i, f in enumerate(frames):
        assert f["schema"] == 2, f
        assert f["id"] == job_id, f"cross-client frame leakage: {f}"
        assert f["seq"] == i + 1, f"gap in seq: {f}"
    assert frames[0]["type"] == "accepted", frames[0]
    assert all(f["type"] not in ("result", "error") for f in frames[:-1])
    if want_ok:
        assert frames[-1]["type"] == "result" and frames[-1]["ok"], frames[-1]

# 3a — concurrent streaming clients over the shared worker pool.
jobs = ['{"id":"s%d","stream":true,"source":"var v%d = 0; for (var i = 0; i < %d; i++) { v%d += i; }","mode":"dep"}'
        % (i, i, 200000 + i, i) for i in range(3)]
streams = [None] * len(jobs)
threads = [threading.Thread(target=lambda i=i, l=l: streams.__setitem__(i, stream(l)))
           for i, l in enumerate(jobs)]
for t in threads: t.start()
for t in threads: t.join()
for i, frames in enumerate(streams):
    check_stream(frames, f"s{i}")
    phases = [f["phase"] for f in frames if f["type"] == "phase"]
    assert phases[:2] == ["parse", "rewrite"], phases
    assert "interp" in phases and "analyze" in phases, phases
    assert any(f["type"] == "partial" for f in frames), frames
stats = rpc('{"op":"stats"}')
c = stats["counters"]
assert c["streams"] >= 3, stats
assert c["frames_streamed"] >= 3 * 6, stats
print(f"OK phase 3a: 3 concurrent streams, {c['frames_streamed']} frames streamed")

# 3b — kill -9 every worker while a heavy streaming job is mid-interp.
# The supervisor restarts the pool and retries the job on a fresh
# worker: the client's stream must still end in a terminal frame, with
# no failed jobs beyond the phase-2 injected crash.
rewrite_seen = threading.Event()
def on_frame(f):
    if f["type"] == "phase" and f.get("phase") == "rewrite":
        rewrite_seen.set()
heavy = ('{"id":"victim","stream":true,"source":'
         '"var w = 0; for (var i = 0; i < 12000000; i++) { w += i % 5; }","mode":"dep"}')
out = [None]
t = threading.Thread(target=lambda: out.__setitem__(0, stream(heavy, on_frame)))
t.start()
assert rewrite_seen.wait(timeout=60), "no rewrite frame before the drill"
time.sleep(0.3)  # let the exec stage pick the job up
for pid in victims:
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
t.join(timeout=120)
assert not t.is_alive(), "stream did not terminate after the worker kill"
frames = out[0]
check_stream(frames, "victim")
stats = rpc('{"op":"stats"}')
c = stats["counters"]
assert c["worker_restarts"] >= 3, f"mid-stream kill not restarted: {stats}"
assert c["jobs_failed"] == 1, f"the killed stream must retry, not fail: {stats}"
print(f"OK phase 3b: kill -9 mid-stream -> terminal {frames[-1]['type']!r} "
      f"after {len(frames)} frames, {c['worker_restarts']} total restarts")
EOF

python3 - "$addr" <<'EOF'
import json, socket, sys
addr = sys.argv[1]
host, port = addr.rsplit(":", 1)
with socket.create_connection((host, int(port)), timeout=120) as s:
    s.sendall(b'{"op":"shutdown"}\n')
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = s.recv(65536)
        if not chunk:
            break
        buf += chunk
assert json.loads(buf)["ok"]
EOF

# Clean drain despite the crashes: exit 0, a drained summary that
# reports the worker restarts.
code=0
wait "$daemon_pid" || code=$?
daemon_pid=
if [ "$code" -ne 0 ]; then
    echo "FAIL: daemon exited $code after shutdown" >&2
    cat "$tmp/daemon.err" >&2
    exit 1
fi
grep -q "^drained:" "$tmp/daemon.err" || {
    echo "FAIL: no drained summary" >&2
    cat "$tmp/daemon.err" >&2
    exit 1
}
grep -qE "drained:.* [1-9][0-9]* worker restarts" "$tmp/daemon.err" || {
    echo "FAIL: drained summary must report the worker restarts" >&2
    cat "$tmp/daemon.err" >&2
    exit 1
}
sed -n 's/^drained/daemon: drained/p' "$tmp/daemon.err"

# Phase 4 — warm start: a fresh daemon on the same --cache-dir must
# serve the phase-1 entry as a cache hit without a single interpreter
# tick.
echo "== warm start from persisted cache =="
start_daemon "$tmp/daemon2.out" "$tmp/daemon2.err"
echo "daemon up at $addr (pid $daemon_pid)"
python3 - "$addr" <<'EOF'
import json, socket, sys

addr = sys.argv[1]
host, port = addr.rsplit(":", 1)

def rpc(line):
    with socket.create_connection((host, int(port)), timeout=120) as s:
        s.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)

warm = rpc('{"id":"restart","app":"haar","mode":"light"}')
assert warm["ok"] and warm["cached"], f"warm start must hit the persisted cache: {warm}"

stats = rpc('{"op":"stats"}')
c = stats["counters"]
assert c["interp_ticks"] == 0, f"warm-start hit must cost zero ticks: {stats}"
assert stats["cache"]["loaded"] > 0, f"no entries loaded from disk: {stats}"
print(f"OK phase 4: warm hit from {stats['cache']['loaded']} persisted "
      f"entries, 0 new interpreter ticks")

bye = rpc('{"op":"shutdown"}')
assert bye["ok"], bye
EOF

code=0
wait "$daemon_pid" || code=$?
daemon_pid=
if [ "$code" -ne 0 ]; then
    echo "FAIL: restarted daemon exited $code" >&2
    cat "$tmp/daemon2.err" >&2
    exit 1
fi

echo "serve smoke OK"
