#!/usr/bin/env bash
# jsceresd serving smoke: start the daemon, hit it with concurrent
# clients (registry app, inline source, repeats, one fault-injected),
# assert the content-addressed cache actually hit, then shut down and
# require a clean drain (exit 0). Run from anywhere; needs only python3
# and the release binaries.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release
cargo build --release --bins

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true' EXIT

echo "== jsceresd serve smoke =="
"$BIN/jsceresd" --addr 127.0.0.1:0 --workers 2 \
    > "$tmp/daemon.out" 2> "$tmp/daemon.err" &
daemon_pid=$!

# Wait for the ready line (the daemon prints it once the socket is bound).
for _ in $(seq 1 50); do
    grep -q "^listening on " "$tmp/daemon.out" 2>/dev/null && break
    kill -0 "$daemon_pid" 2>/dev/null || {
        echo "FAIL: daemon died before binding" >&2
        cat "$tmp/daemon.err" >&2
        exit 1
    }
    sleep 0.1
done
addr=$(sed -n 's/^listening on //p' "$tmp/daemon.out" | head -1)
[ -n "$addr" ] || { echo "FAIL: no ready line" >&2; exit 1; }
echo "daemon up at $addr (pid $daemon_pid)"

# Concurrent clients: a registry app twice (second must hit the cache),
# inline source twice, and one fault-injected request that must be
# supervised (retried) rather than cached.
python3 - "$addr" "$tmp" <<'EOF'
import json, socket, sys, threading

addr, tmp = sys.argv[1], sys.argv[2]
host, port = addr.rsplit(":", 1)

def rpc(line):
    with socket.create_connection((host, int(port)), timeout=120) as s:
        s.sendall(line.encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)

# Warm the cache serially first so the repeats below must hit.
app = '{"id":"warm","app":"haar","mode":"light"}'
cold = rpc(app)
assert cold["ok"] and not cold["cached"], cold

requests = [
    ('{"id":"r1","app":"haar","mode":"light"}', True),
    ('{"id":"r2","app":"haar","mode":"light"}', True),
    ('{"id":"r3","source":"var s = 0; for (var i = 0; i < 7; i++) { s += i; }","mode":"dep"}', None),
    ('{"id":"r4","app":"haar","mode":"light","inject":"error"}', False),
]
results = [None] * len(requests)
def worker(i, line):
    results[i] = rpc(line)
threads = [threading.Thread(target=worker, args=(i, line))
           for i, (line, _) in enumerate(requests)]
for t in threads: t.start()
for t in threads: t.join()

for (line, want_cached), r in zip(requests, results):
    assert r["ok"], f"{line} -> {r}"
    if want_cached is not None:
        assert r["cached"] == want_cached, f"{line} -> {r}"

# The injected request must have gone through the supervisor's retry
# path (transient error on attempt 1), never the cache.
injected = results[3]
assert injected["attempts"] == 2, f"fault not supervised: {injected}"

stats = rpc('{"op":"stats"}')
c = stats["counters"]
assert c["cache_hits"] > 0, f"no cache hits: {stats}"
assert c["jobs_failed"] == 0, f"unexpected failures: {stats}"
assert c["requests"] >= 5, stats
print(f"OK: {c['requests']} requests, {c['cache_hits']} cache hits, "
      f"{c['jobs_ok']} jobs ok, injected request supervised in "
      f"{injected['attempts']} attempts")

bye = rpc('{"op":"shutdown"}')
assert bye["ok"], bye
EOF

# Clean drain: exit 0 and a drained summary on stderr.
code=0
wait "$daemon_pid" || code=$?
daemon_pid=
if [ "$code" -ne 0 ]; then
    echo "FAIL: daemon exited $code after shutdown" >&2
    cat "$tmp/daemon.err" >&2
    exit 1
fi
grep -q "^drained:" "$tmp/daemon.err" || {
    echo "FAIL: no drained summary" >&2
    cat "$tmp/daemon.err" >&2
    exit 1
}
sed -n 's/^/daemon: /p' "$tmp/daemon.err"

echo "serve smoke OK"
